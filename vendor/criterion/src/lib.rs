//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this stub keeps the
//! workspace's benches compiling (and runnable as coarse smoke timers)
//! without the real statistics machinery. `cargo bench` runs each
//! `bench_function` body a handful of times and prints a mean wall-time —
//! useful as a sanity check, not a rigorous measurement.

use std::time::Instant;

/// Re-export so benches written against `criterion::black_box` also work.
pub use std::hint::black_box;

/// The benchmark driver handle passed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { iterations: 3 }
    }
}

/// A named collection of benchmarks; mirrors criterion's builder methods.
#[derive(Debug)]
pub struct BenchmarkGroup {
    iterations: u32,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the stub runs a fixed small number of
    /// iterations regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` over a few iterations and prints the mean.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed_ns: 0 };
        let start = Instant::now();
        for _ in 0..self.iterations {
            f(&mut bencher);
        }
        let total = start.elapsed();
        println!(
            "  {id}: {:.3} ms/iter (stub, {} iters)",
            total.as_secs_f64() * 1e3 / f64::from(self.iterations),
            self.iterations
        );
        self
    }

    /// No-op; present for API compatibility.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs the measured body.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the measured body once per outer iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Declares a bench group entry point; mirrors criterion's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
