//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this stub reproduces the
//! subset of proptest this workspace uses: the [`strategy::Strategy`] trait
//! with `prop_map`/`prop_flat_map`/`boxed`, range and tuple and collection
//! strategies, `Just`, `prop::bool::ANY`, string-regex strategies (loosely:
//! arbitrary printable strings), the `proptest!`/`prop_assert!`/
//! `prop_assert_eq!`/`prop_oneof!` macros, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! sampled from a deterministic per-test RNG and failures are **not
//! shrunk** — the failing input is printed as-is. Determinism means a
//! failure always reproduces with plain `cargo test`.

pub mod test_runner {
    /// FNV-1a hash of a string; used to give each property its own stream.
    #[must_use]
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Deterministic splitmix64 generator driving all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for one test case.
        #[must_use]
        pub fn for_case(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x517C_C1B7_2722_0A95,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Per-property configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples the strategy `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len());
            self.0[idx].sample(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),* $(,)?) => {
            $(impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $ty)
                }
            })*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),* $(,)?) => {
            $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            })*
        };
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    /// A `Vec` of strategies samples each element, yielding a `Vec` of
    /// values (mirrors real proptest).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    /// String-regex strategies, approximated: samples an arbitrary printable
    /// ASCII string (plus occasional newlines and tabs) whose length is
    /// drawn from the `{m,n}` repetition bound if one appears at the end of
    /// the pattern (defaults to `0..64`). The regex *content* is ignored —
    /// close enough for never-panics fuzzing, which is the only use here.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_repeat_bound(self).unwrap_or((0, 64));
            let len = if max > min {
                min + rng.below(max - min + 1)
            } else {
                min
            };
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII, with some structure-relevant
                    // characters mixed in to stress the lexer.
                    match rng.below(20) {
                        0 => '\n',
                        1 => '\t',
                        2 => '=',
                        3 => '[',
                        4 => ']',
                        5 => '\\',
                        _ => char::from(32 + rng.below(95) as u8),
                    }
                })
                .collect()
        }
    }

    fn parse_repeat_bound(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let open = body.rfind('{')?;
        let mut parts = body[open + 1..].splitn(2, ',');
        let min = parts.next()?.trim().parse().ok()?;
        let max = parts.next()?.trim().parse().ok()?;
        Some((min, max))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Generates a `Vec` of values from `element`, with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let fn_seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                        fn_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)*
                    let dbg_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg,)*
                    );
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!("property {} failed on case {case}: {msg}\n  inputs: {dbg_inputs}",
                               stringify!($name));
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` inside `proptest!` bodies; reports the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Uniform choice between strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        for _ in 0..200 {
            let x = (5_u32..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let f = (0.5_f64..2.5).sample(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn collection_vec_honours_size() {
        let mut rng = crate::test_runner::TestRng::for_case(4);
        for _ in 0..100 {
            let v = crate::collection::vec(0_u32..3, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0_u32..3, 7_usize).sample(&mut rng);
        assert_eq!(fixed.len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_up(x in 1_u32..100, flip in prop::bool::ANY) {
            prop_assert!(x >= 1);
            prop_assert_eq!(u32::from(flip) * 2, if flip { 2 } else { 0 });
        }

        #[test]
        fn oneof_and_maps_compose(v in prop_oneof![
            (1_u32..10).prop_map(|x| x * 2),
            (50_u32..60).prop_map(|x| x + 1),
        ]) {
            prop_assert!((2..20).contains(&v) || (51..61).contains(&v));
        }
    }
}
