//! Offline stand-in for `serde_derive`.
//!
//! Emits `Serialize`/`Deserialize` impls that compile against the offline
//! `serde` stub. The derive accepts (and ignores) `#[serde(...)]` helper
//! attributes so annotated types parse unchanged. Only non-generic types are
//! supported, which covers everything in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive is applied to: the identifier
/// following the `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                for next in iter.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde stub derive: input is not a struct or enum");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, _serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 ::core::result::Result::Err(<S::Error as ::serde::ser::Error>::custom(\n\
                     \"serde offline stub: no data format available\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde stub derive: generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"serde offline stub: no data format available\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde stub derive: generated impl parses")
}
