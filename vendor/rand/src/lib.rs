//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over primitive `Range` types — the surface the
//! simulation engine uses. The generator is xoshiro256++ seeded via
//! splitmix64, which matches the statistical quality the simulator needs
//! (it cross-checks against analytic CTMC results to ~1% tolerances).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    /// The standard RNG: xoshiro256++ (the real `StdRng` is a different
    /// algorithm; only determinism-per-seed is promised, not the stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_seed_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed into the state vector.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_seed_u64(seed)
        }
    }
}

/// Ranges that can be sampled uniformly; mirrors `rand::distributions`'
/// `SampleRange` for the primitive `Range` types this workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),* $(,)?) => {
        $(impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo with a 64-bit draw: bias is negligible for the
                // small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        })*
    };
}

int_sample_range!(u8, u16, u32, usize, i32, i64);

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + rng.next_u64() % span
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0_u32..1000), b.gen_range(0_u32..1000));
        }
    }

    #[test]
    fn f64_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25_f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0_usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0_f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
