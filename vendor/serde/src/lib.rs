//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `serde` cannot be fetched from a registry. This stub reproduces the
//! small API surface the workspace relies on — the four core traits, the
//! `ser::Error`/`de::Error` helper traits, and the `Serialize`/`Deserialize`
//! derive macros — so that annotated types compile unchanged. No data format
//! ships with the workspace, so no serializer ever runs: every stubbed
//! implementation reports an "offline stub" error if actually invoked.
//!
//! Swap the workspace dependency back to registry `serde` when a network is
//! available; nothing else needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization-side error support.
pub mod ser {
    /// The error trait serializers expose; mirrors `serde::ser::Error`.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side error support.
pub mod de {
    /// The error trait deserializers expose; mirrors `serde::de::Error`.
    pub trait Error: Sized {
        /// Builds an error from a display-able message.
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

/// A data structure that can be serialized (stub: always errors).
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    ///
    /// # Errors
    ///
    /// The stub always returns an error: no data format is available offline.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization format; mirrors the associated types of
/// `serde::Serializer` that generic code names (`S::Ok`, `S::Error`).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type produced on failure.
    type Error: ser::Error;
}

/// A data structure that can be deserialized (stub: always errors).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    ///
    /// # Errors
    ///
    /// The stub always returns an error: no data format is available offline.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserialization format; mirrors the associated `Error` type of
/// `serde::Deserializer` that generic code names (`D::Error`).
pub trait Deserializer<'de>: Sized {
    /// Error type produced on failure.
    type Error: de::Error;
}

const STUB_MSG: &str = "serde offline stub: no data format available";

macro_rules! stub_serialize {
    ($($ty:ty),* $(,)?) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
                Err(<S::Error as ser::Error>::custom(STUB_MSG))
            }
        })*
    };
}

stub_serialize!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String, str);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom(STUB_MSG))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom(STUB_MSG))
    }
}

macro_rules! stub_tuple {
    ($(($($name:ident),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
                    Err(<S::Error as ser::Error>::custom(STUB_MSG))
                }
            }
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<De: Deserializer<'de>>(_deserializer: De) -> Result<Self, De::Error> {
                    Err(<De::Error as de::Error>::custom(STUB_MSG))
                }
            }
        )*
    };
}

stub_tuple!((A, B), (A, B, C), (A, B, C, Dd));

macro_rules! stub_deserialize {
    ($($ty:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
                Err(<D::Error as de::Error>::custom(STUB_MSG))
            }
        })*
    };
}

stub_deserialize!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(STUB_MSG))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(STUB_MSG))
    }
}
