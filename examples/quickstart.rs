//! Quickstart: design a small two-machine service from scratch.
//!
//! Builds a minimal infrastructure model programmatically (one machine
//! type, one maintenance contract, one resource type), a one-tier service,
//! and asks Aved for the minimum-cost design at several availability
//! requirements.
//!
//! Run with: `cargo run --release -p aved --example quickstart`

use aved::model::{
    ComponentType, DurationSpec, EffectValue, FailureMode, FailureScope, Infrastructure, Mechanism,
    NActiveSpec, ParamRange, Parameter, PerfRef, ResourceComponent, ResourceOption, ResourceType,
    Service, Sizing, Tier,
};
use aved::perf::{Catalog, PerfFunction};
use aved::units::{Duration, Money};
use aved::{Aved, ServiceRequirement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Infrastructure: one server type with two failure modes. ---------
    let infrastructure = Infrastructure::new()
        .with_component(
            ComponentType::new("server")
                .with_costs(Money::from_dollars(1800.0), Money::from_dollars(2000.0))
                .with_failure_mode(FailureMode::new(
                    "hard",
                    Duration::from_days(500.0),
                    DurationSpec::FromMechanism("support".into()),
                    Duration::from_mins(1.0),
                ))
                .with_failure_mode(FailureMode::new(
                    "crash",
                    Duration::from_days(45.0),
                    Duration::ZERO, // fixed by restart; startup time applies
                    Duration::ZERO,
                )),
        )
        .with_component(
            ComponentType::new("app").with_failure_mode(FailureMode::new(
                "soft",
                Duration::from_days(30.0),
                Duration::ZERO,
                Duration::ZERO,
            )),
        )
        .with_mechanism(
            Mechanism::new("support")
                .with_param(Parameter::new(
                    "level",
                    ParamRange::Levels(vec!["basic".into(), "premium".into()]),
                ))
                .with_cost_table(
                    "level",
                    vec![Money::from_dollars(250.0), Money::from_dollars(900.0)],
                )
                .with_mttr_effect(EffectValue::Table {
                    param: "level".into(),
                    values: vec![Duration::from_hours(24.0), Duration::from_hours(4.0)],
                }),
        )
        .with_resource(
            ResourceType::new("node", Duration::from_secs(20.0))
                .with_component(ResourceComponent::new(
                    "server",
                    None,
                    Duration::from_mins(1.0),
                ))
                .with_component(ResourceComponent::new(
                    "app",
                    Some("server".into()),
                    Duration::from_secs(40.0),
                )),
        );
    infrastructure.validate()?;

    // --- Service: one web-style tier, 150 requests/s per node. -----------
    let service =
        Service::new("demo").with_tier(Tier::new("frontend").with_option(ResourceOption::new(
            "node",
            Sizing::Dynamic,
            FailureScope::Resource,
            NActiveSpec::Arithmetic {
                min: 1,
                max: 100,
                step: 1,
            },
            PerfRef::Named("node_perf".into()),
        )));
    let mut catalog = Catalog::new();
    catalog.insert_perf("node_perf", PerfFunction::linear(150.0));

    // --- Design at a range of downtime budgets. ---------------------------
    let aved = Aved::new(infrastructure).with_catalog(catalog);
    println!("load = 400 req/s; sweeping the annual downtime budget\n");
    println!(
        "{:>14} | {:>8} | {:>7} | {:>7} | {:>8} | {:>12}",
        "budget (min/y)", "actives", "spares", "level", "cost ($)", "downtime (m)"
    );
    for budget_mins in [5000.0, 500.0, 50.0, 5.0] {
        let requirement = ServiceRequirement::enterprise(400.0, Duration::from_mins(budget_mins));
        match aved.design(&service, &requirement)? {
            Some(report) => {
                let tier = &report.design().tiers()[0];
                let level = tier
                    .setting("support", "level")
                    .map_or_else(|| "-".to_owned(), ToString::to_string);
                println!(
                    "{:>14} | {:>8} | {:>7} | {:>7} | {:>8.0} | {:>12.2}",
                    budget_mins,
                    tier.n_active(),
                    tier.n_spare(),
                    level,
                    report.cost().dollars(),
                    report.annual_downtime().unwrap().minutes(),
                );
            }
            None => println!("{budget_mins:>14} | no feasible design in the search bounds"),
        }
    }
    Ok(())
}
