//! The paper's scientific-application example (§5.2): optimal design as a
//! function of the job execution-time requirement (the data behind Fig. 7).
//!
//! For each requirement the engine selects the resource type (cheap
//! machineA nodes vs the 16-way machineB), the node count, the spare
//! count, the checkpoint interval and the checkpoint storage location.
//!
//! Run with: `cargo run --release -p aved --example scientific_job`

use aved::avail::DecompositionEngine;
use aved::model::ParamValue;
use aved::scenario;
use aved::search::{search_job_tier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::scientific()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);

    // Fig. 7 fixes the maintenance contract to bronze.
    let options = SearchOptions {
        max_extra_active: 2,
        max_spares: 2,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));

    println!("jobsize = 10000; bronze maintenance (as in the paper's Fig. 7)\n");
    println!(
        "{:>10} | {:>8} | {:>6} | {:>6} | {:>12} | {:>8} | {:>10} | {:>12}",
        "req (h)",
        "resource",
        "nodes",
        "spares",
        "interval",
        "storage",
        "cost ($/y)",
        "expected (h)"
    );
    for req_hours in [2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0] {
        let outcome = search_job_tier(
            &ctx,
            "computation",
            Duration::from_hours(req_hours),
            &options,
        )?;
        match outcome.best() {
            Some(best) => {
                let td = best.design();
                let interval = td
                    .setting("checkpoint", "checkpoint_interval")
                    .map_or_else(|| "-".to_owned(), ToString::to_string);
                let storage = td
                    .setting("checkpoint", "storage_location")
                    .map_or_else(|| "-".to_owned(), ToString::to_string);
                println!(
                    "{:>10} | {:>8} | {:>6} | {:>6} | {:>12} | {:>8} | {:>10.0} | {:>12.1}",
                    req_hours,
                    td.resource().as_str(),
                    td.n_active(),
                    td.n_spare(),
                    interval,
                    storage,
                    best.cost().dollars(),
                    best.expected_job_time().unwrap().hours(),
                );
            }
            None => println!("{req_hours:>10} | infeasible within the search bounds"),
        }
    }
    Ok(())
}
