//! The network extension (the paper's §7 future work): compose a designed
//! service with the shared LAN infrastructure it runs on, and see how much
//! network redundancy the availability budget actually requires.
//!
//! The tiers' own availability comes from the design engine; the switches
//! are shared series elements modeled with `SharedSubsystem`. The example
//! also shows the mission-time view: expected downtime during the first
//! month of operation and the mean time to the first outage.
//!
//! Run with: `cargo run --release -p aved --example network_aware`

use aved::avail::{
    combine_series, derive_tier_model, CtmcEngine, SharedSubsystem, TierAvailability,
};
use aved::model::{FailureScope, Sizing};
use aved::scenario;
use aved::search::{search_service, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;
use aved::DecompositionEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::ecommerce()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions {
        max_extra_active: 2,
        max_spares: 1,
        ..SearchOptions::default()
    };

    // Design the compute side for a 200-minute service budget.
    let budget = Duration::from_mins(200.0);
    let design = search_service(&ctx, 800.0, budget, &options)?
        .ok_or("the compute budget should be satisfiable")?;
    println!("compute design ({} min/yr budget):", budget.minutes());
    for tier in design.tiers() {
        println!("  {}", tier.design());
    }
    println!(
        "  compute-only downtime: {:.2} min/yr at {}/yr\n",
        design.annual_downtime().minutes(),
        design.cost()
    );

    // Now include the network: switches with 2-year MTBF, 8-hour swap.
    let tiers: Vec<TierAvailability> = design.tiers().iter().map(|t| *t.availability()).collect();
    println!("adding the shared LAN (switch MTBF 2 years, 8 h replacement):");
    println!(
        "  {:<22} {:>16} {:>18}",
        "topology", "LAN (min/yr)", "service (min/yr)"
    );
    for (label, n, k) in [("single switch", 1, 1), ("duplexed switches", 2, 1)] {
        let lan = SharedSubsystem::new("lan", n, k)
            .with_failure(Duration::from_days(730.0), Duration::from_hours(8.0))
            .evaluate()?;
        let mut all = tiers.clone();
        all.push(lan);
        let total = combine_series(&all);
        println!(
            "  {:<22} {:>16.2} {:>18.2}{}",
            label,
            lan.annual_downtime().minutes(),
            total.annual_downtime().minutes(),
            if total.annual_downtime() <= budget {
                "  (within budget)"
            } else {
                "  (BLOWS the budget)"
            },
        );
    }

    // Mission-time view of the application tier: early-life behaviour.
    let app = design
        .tiers()
        .iter()
        .find(|t| t.design().tier().as_str() == "application")
        .expect("application tier present");
    let option = service
        .tier("application")
        .and_then(|t| t.option_for(app.design().resource().as_str()))
        .expect("designed option exists");
    let model = derive_tier_model(
        &infrastructure,
        app.design(),
        Sizing::Dynamic,
        FailureScope::Resource,
        app.min_for_perf(),
    )?;
    let _ = option;
    let ctmc = CtmcEngine::default();
    let month = Duration::from_hours(30.0 * 24.0);
    let early = ctmc.mission_downtime(&model, month, 48)?;
    // Steady-state figure from the same exact engine, so the comparison
    // isolates the early-life effect rather than engine differences.
    use aved::avail::AvailabilityEngine as _;
    let steady = ctmc.evaluate(&model)?.unavailability() * month.hours();
    let mttf = ctmc.mean_time_to_first_outage(&model)?;
    println!("\napplication tier, first month of operation:");
    println!(
        "  expected downtime: {:.2} min (steady-state pro-rata would be {:.2} min)",
        early.minutes(),
        steady * 60.0
    );
    println!("  mean time to first outage: {:.1} days", mttf.days());
    Ok(())
}
