//! The paper's utility-computing vision (§1, §5.1 closing remark): "in a
//! utility computing environment, where the infrastructure can be easily
//! reconfigured, an automated design engine such as Aved could dynamically
//! re-evaluate and change designs as conditions change."
//!
//! This example simulates a day of fluctuating load on the application
//! tier and re-runs the design engine at each step, showing when the
//! optimal design family changes — resources scale with load, and the
//! availability family itself shifts at the crossovers Fig. 6 predicts.
//! It also demonstrates the sensitivity analysis: what happens to the
//! chosen design if the real failure rates are 4x worse than modeled.
//!
//! Run with: `cargo run --release -p aved --example utility_redesign`

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{mtbf_sensitivity, search_tier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::ecommerce()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions::default();
    let budget = Duration::from_mins(100.0);

    // A daily load profile: overnight trough, morning ramp, midday peak.
    let profile: [(u32, f64); 8] = [
        (0, 400.0),
        (3, 300.0),
        (6, 700.0),
        (9, 1800.0),
        (12, 3200.0),
        (15, 2600.0),
        (18, 1500.0),
        (21, 700.0),
    ];

    println!(
        "application tier, downtime budget {} min/yr\n",
        budget.minutes()
    );
    println!(
        "{:>5} {:>7} | {:>9} {:>8} {:>8} {:>8} | {:>10} {:>12}",
        "hour", "load", "resource", "contract", "actives", "spares", "cost ($/y)", "downtime (m)"
    );
    let mut previous: Option<aved::model::Design> = None;
    for (hour, load) in profile {
        let out = search_tier(&ctx, "application", load, budget, &options)?;
        let best = out
            .best()
            .ok_or("requirement should be satisfiable at all profile points")?;
        let td = best.design();
        let contract = td
            .setting("maintenanceA", "level")
            .map_or_else(|| "-".to_owned(), ToString::to_string);
        println!(
            "{hour:>5} {load:>7} | {:>9} {:>8} {:>8} {:>8} | {:>10.0} {:>12.2}",
            td.resource().as_str(),
            contract,
            td.n_active(),
            td.n_spare(),
            best.cost().dollars(),
            best.annual_downtime().minutes(),
        );
        // Reconfiguration actions relative to the previous hour's design —
        // what the utility controller would actually execute.
        let current = aved::model::Design::new(vec![td.clone()]);
        if let Some(prev) = &previous {
            for change in prev.diff(&current) {
                println!("{:>13} reconfigure: {change}", "");
            }
        }
        previous = Some(current);
    }

    // Sensitivity: would the midday design survive 4x-worse failure rates?
    println!("\nsensitivity of the midday (load 3200) design to MTBF estimation error:");
    let rows = mtbf_sensitivity(
        &ctx,
        "application",
        3200.0,
        budget,
        &options,
        &[0.25, 0.5, 1.0, 2.0, 4.0],
    )?;
    println!(
        "{:>11} | {:>10} | {:>13} | same design?",
        "MTBF scale", "cost ($/y)", "downtime (m)"
    );
    for row in rows {
        match (row.cost, row.annual_downtime) {
            (Some(cost), Some(dt)) => println!(
                "{:>11} | {:>10.0} | {:>13.2} | {}",
                row.mtbf_scale,
                cost.dollars(),
                dt.minutes(),
                if row.same_design_as_baseline {
                    "yes"
                } else {
                    "no"
                },
            ),
            _ => println!("{:>11} | infeasible", row.mtbf_scale),
        }
    }
    Ok(())
}
