//! Working with the specification language: parse a custom infrastructure
//! and service written in the paper's attribute-value syntax, validate it,
//! print it back out, and run a design search against it.
//!
//! Run with: `cargo run --release -p aved --example custom_infrastructure`

use aved::perf::{Catalog, PerfFunction};
use aved::units::Duration;
use aved::{Aved, ServiceRequirement};

const INFRASTRUCTURE: &str = "\
\\\\ A two-component edge cache node with a replaceable disk tray.
component=cachebox cost([inactive,active])=[900 1050]
  failure=hard mtbf=400d mttr=<fieldsvc> detect_time=90s
  failure=wedge mtbf=50d mttr=0 detect_time=30s
component=cached cost=0
  failure=soft mtbf=20d mttr=0 detect_time=10s
mechanism=fieldsvc
  param=level range=[nextday,sameday]
  cost(level)=[120 340]
  mttr(level)=[30h 9h]
resource=edge reconfig_time=45s
  component=cachebox depend=null startup=70s
  component=cached depend=cachebox startup=20s
";

const SERVICE: &str = "\
application=edgecache
  tier=cache
    resource=edge sizing=dynamic failurescope=resource
      nActive=[1-64,+1] performance(nActive)=edge_perf
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infrastructure = aved::spec::parse_infrastructure(INFRASTRUCTURE)?;
    let service = aved::spec::parse_service(SERVICE)?;
    println!(
        "parsed infrastructure with {} components, {} mechanisms, {} resources",
        infrastructure.components().count(),
        infrastructure.mechanisms().count(),
        infrastructure.resources().count(),
    );

    // Round-trip: write the model back out in the same syntax.
    println!(
        "\n--- canonical form ---\n{}",
        aved::spec::write_infrastructure(&infrastructure)
    );

    let mut catalog = Catalog::new();
    catalog.insert_perf("edge_perf", PerfFunction::saturating(900.0, 0.01));

    let aved = Aved::new(infrastructure).with_catalog(catalog);
    let requirement = ServiceRequirement::enterprise(5000.0, Duration::from_mins(60.0));
    match aved.design(&service, &requirement)? {
        Some(report) => {
            let tier = &report.design().tiers()[0];
            println!(
                "optimal: {} x{} (+{} spares), {} -> {} min/yr downtime at {}/yr",
                tier.resource(),
                tier.n_active(),
                tier.n_spare(),
                tier.setting("fieldsvc", "level")
                    .map_or_else(|| "-".to_owned(), ToString::to_string),
                format_args!("{:.2}", report.annual_downtime().unwrap().minutes()),
                report.cost(),
            );
        }
        None => println!("no design meets the requirement within the search bounds"),
    }
    Ok(())
}
