//! The paper's application-tier example (§5.1): optimal design families
//! across load and availability requirements, and the cost of availability.
//!
//! Prints a compact version of the data behind the paper's Fig. 6 (which
//! design family is optimal where) and Fig. 8 (the extra annual cost of
//! availability as the downtime requirement tightens).
//!
//! Run with: `cargo run --release -p aved --example ecommerce_tradeoff`

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Money;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::ecommerce()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions::default();

    println!("== Cost/downtime frontier of the application tier (Fig. 6 data) ==\n");
    for load in [400.0, 1000.0, 1600.0, 3200.0] {
        println!("load = {load} units:");
        println!(
            "  {:<10} {:>9} {:>8} {:>8} {:>10} {:>14}",
            "resource", "contract", "n_extra", "n_spare", "cost ($/y)", "downtime (m/y)"
        );
        let frontier = tier_pareto_frontier(&ctx, "application", load, &options)?;
        for e in frontier
            .iter()
            .filter(|e| e.annual_downtime().minutes() >= 0.1)
        {
            let td = e.design();
            let level = td
                .setting("maintenanceA", "level")
                .or_else(|| td.setting("maintenanceB", "level"))
                .map_or_else(|| "-".to_owned(), ToString::to_string);
            println!(
                "  {:<10} {:>9} {:>8} {:>8} {:>10.0} {:>14.2}",
                td.resource().as_str(),
                level,
                e.n_extra(),
                td.n_spare(),
                e.cost().dollars(),
                e.annual_downtime().minutes(),
            );
        }
        println!();
    }

    println!("== Extra annual cost of availability (Fig. 8 data) ==\n");
    println!(
        "{:>6} | {:>12} | {:>12} | {:>12} | {:>12}",
        "load", "10000 m/y", "100 m/y", "10 m/y", "1 m/y"
    );
    for load in [400.0, 800.0, 1600.0, 3200.0] {
        let frontier = tier_pareto_frontier(&ctx, "application", load, &options)?;
        let baseline: Money = frontier
            .first()
            .map(aved::search::EvaluatedDesign::cost)
            .unwrap_or(Money::ZERO);
        let cost_at = |budget_mins: f64| -> String {
            frontier
                .iter()
                .find(|e| e.annual_downtime().minutes() <= budget_mins)
                .map_or_else(
                    || "infeasible".to_owned(),
                    |e| format!("{:.0}", (e.cost() - baseline).dollars()),
                )
        };
        println!(
            "{:>6} | {:>12} | {:>12} | {:>12} | {:>12}",
            load,
            cost_at(10_000.0),
            cost_at(100.0),
            cost_at(10.0),
            cost_at(1.0),
        );
    }
    println!("\n(entries are the additional $/year over the minimum-cost design for the load)");
    Ok(())
}
