//! Validation of the multi-tier greedy refinement against brute force:
//! on truncated per-tier frontiers, the greedy marginal-cost composition
//! must find a design whose cost matches the exhaustive optimum over all
//! frontier combinations.

use aved_avail::DecompositionEngine;
use aved_search::{
    search_service, tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions,
};
use aved_units::Duration;

fn fixture() -> (
    aved_model::Infrastructure,
    aved_model::Service,
    aved_perf::Catalog,
) {
    let infra =
        aved_spec::parse_infrastructure(include_str!("../../../data/infrastructure.aved")).unwrap();
    let svc = aved_spec::parse_service(include_str!("../../../data/ecommerce.aved")).unwrap();
    (infra, svc, aved_perf::paper::catalog())
}

/// Exhaustively composes one design per tier from the frontiers and finds
/// the cheapest combination meeting the budget (series composition).
fn brute_force_cost(
    ctx: &EvalContext<'_>,
    load: f64,
    budget: Duration,
    options: &SearchOptions,
) -> Option<f64> {
    let mut frontiers = Vec::new();
    for tier in ctx.service().tiers() {
        let f = tier_pareto_frontier(ctx, tier.name().as_str(), load, options).unwrap();
        if f.is_empty() {
            return None;
        }
        frontiers.push(f);
    }
    let mut best: Option<f64> = None;
    let sizes: Vec<usize> = frontiers.iter().map(Vec::len).collect();
    let total: usize = sizes.iter().product();
    for mut idx in 0..total {
        let mut cost = 0.0;
        let mut availability = 1.0;
        for (f, &size) in frontiers.iter().zip(&sizes) {
            let choice = &f[idx % size];
            idx /= size;
            cost += choice.cost().dollars();
            availability *= choice.availability().availability();
        }
        let downtime_mins = (1.0 - availability) * aved_units::MINUTES_PER_YEAR;
        if downtime_mins <= budget.minutes() && best.is_none_or(|b| cost < b) {
            best = Some(cost);
        }
    }
    best
}

#[test]
fn greedy_matches_brute_force_on_small_frontiers() {
    let (infra, svc, catalog) = fixture();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infra, &svc, &catalog, &engine);
    // Small frontier bounds keep the cross product tractable.
    let options = SearchOptions {
        max_extra_active: 1,
        max_spares: 1,
        ..SearchOptions::default()
    };
    for budget_mins in [8000.0, 2000.0, 600.0] {
        let budget = Duration::from_mins(budget_mins);
        let greedy = search_service(&ctx, 400.0, budget, &options).unwrap();
        let brute = brute_force_cost(&ctx, 400.0, budget, &options);
        match (greedy, brute) {
            (Some(g), Some(b)) => {
                // Greedy marginal-cost refinement on monotone frontiers can
                // in principle stop at a slightly costlier point; require
                // it to be within 5% of the true optimum and assert the
                // budget is respected.
                assert!(
                    g.cost().dollars() <= b * 1.05 + 1e-6,
                    "budget {budget_mins}: greedy {} vs brute {b}",
                    g.cost().dollars()
                );
                assert!(g.annual_downtime() <= budget);
            }
            (None, None) => {}
            (g, b) => panic!("budget {budget_mins}: greedy {g:?} vs brute {b:?}"),
        }
    }
}

#[test]
fn greedy_is_exact_when_one_tier_dominates() {
    // With the database tier fixed (single option, nActive=[1]) and a very
    // tight budget, the upgrade path is essentially one-dimensional and
    // greedy must be exactly optimal.
    let (infra, svc, catalog) = fixture();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infra, &svc, &catalog, &engine);
    let options = SearchOptions {
        max_extra_active: 1,
        max_spares: 1,
        ..SearchOptions::default()
    };
    let budget = Duration::from_mins(300.0);
    let greedy = search_service(&ctx, 400.0, budget, &options)
        .unwrap()
        .expect("feasible");
    let brute = brute_force_cost(&ctx, 400.0, budget, &options).expect("feasible");
    assert!(
        (greedy.cost().dollars() - brute).abs() < 1e-6,
        "greedy {} vs brute {brute}",
        greedy.cost().dollars()
    );
}
