//! A killed sweep, resumed from its journal, must select the same winner
//! — to the bit — as a sweep that was never interrupted.
//!
//! On the paper's Fig. 6 (e-commerce application tier) and Fig. 7
//! (scientific job tier) fixtures: a sweep is cancelled mid-run (a
//! wrapped engine trips the [`CancelToken`] after a fixed number of
//! evaluations, simulating SIGINT at a deterministic point), its journal
//! is reloaded, and the resumed search must reproduce the uninterrupted
//! reference winner at one worker and at eight. A second scenario
//! truncates the journal mid-record, as a hard kill (`kill -9`) during a
//! write would, and resumes from the mangled file.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use aved_avail::{
    AvailError, AvailabilityEngine, CancelToken, DecompositionEngine, TierAvailability, TierModel,
};
use aved_model::{Infrastructure, ParamValue, Service};
use aved_perf::Catalog;
use aved_search::{
    search_job_tier, search_tier, EvalContext, EvaluatedDesign, JournalReplay, SearchOptions,
    SweepJournal,
};
use aved_units::Duration;

const JOB_COUNTS: [usize; 2] = [1, 8];

struct Fixture {
    infrastructure: Infrastructure,
    service: Service,
    catalog: Catalog,
}

fn fig6_fixture() -> Fixture {
    Fixture {
        infrastructure: aved_spec::parse_infrastructure(include_str!(
            "../../../data/infrastructure.aved"
        ))
        .unwrap(),
        service: aved_spec::parse_service(include_str!("../../../data/ecommerce.aved")).unwrap(),
        catalog: aved_perf::paper::catalog(),
    }
}

fn fig7_fixture() -> Fixture {
    Fixture {
        infrastructure: aved_spec::parse_infrastructure(include_str!(
            "../../../data/infrastructure.aved"
        ))
        .unwrap(),
        service: aved_spec::parse_service(include_str!("../../../data/scientific.aved")).unwrap(),
        catalog: aved_perf::paper::catalog(),
    }
}

fn enterprise_opts() -> SearchOptions {
    SearchOptions {
        max_extra_active: 3,
        max_spares: 2,
        ..SearchOptions::default()
    }
}

fn job_opts() -> SearchOptions {
    SearchOptions {
        max_extra_active: 2,
        max_spares: 1,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()))
}

fn temp_journal(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("aved-resume-{tag}-{}.jsonl", std::process::id()));
    path
}

/// Bit-level equality of every metric a design carries.
fn assert_bit_identical(a: &EvaluatedDesign, b: &EvaluatedDesign, label: &str) {
    assert_eq!(a.design(), b.design(), "{label}: design");
    assert_eq!(
        a.cost().dollars().to_bits(),
        b.cost().dollars().to_bits(),
        "{label}: cost"
    );
    assert_eq!(
        a.availability().unavailability().to_bits(),
        b.availability().unavailability().to_bits(),
        "{label}: unavailability"
    );
    match (a.expected_job_time(), b.expected_job_time()) {
        (Some(x), Some(y)) => assert_eq!(
            x.seconds().to_bits(),
            y.seconds().to_bits(),
            "{label}: job time"
        ),
        (x, y) => assert_eq!(x, y, "{label}: job time presence"),
    }
}

/// Delegates to the decomposition engine, tripping `token` after `quota`
/// evaluations: a SIGINT arriving at a deterministic moment mid-sweep.
struct CancelAfter {
    inner: DecompositionEngine,
    remaining: AtomicUsize,
    token: CancelToken,
}

impl CancelAfter {
    fn new(quota: usize, token: CancelToken) -> CancelAfter {
        CancelAfter {
            inner: DecompositionEngine::default(),
            remaining: AtomicUsize::new(quota),
            token,
        }
    }
}

impl AvailabilityEngine for CancelAfter {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        let spent = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            })
            .unwrap();
        if spent == 0 {
            self.token.cancel();
        }
        self.inner.evaluate(model)
    }
}

#[test]
fn fig6_killed_sweep_resumes_to_the_reference_winner() {
    let fx = fig6_fixture();
    let load = 1000.0;
    let budget = Duration::from_mins(100.0);

    let reference_engine = DecompositionEngine::default();
    let ctx = EvalContext::new(
        &fx.infrastructure,
        &fx.service,
        &fx.catalog,
        &reference_engine,
    );
    let reference = search_tier(&ctx, "application", load, budget, &enterprise_opts()).unwrap();
    let reference_best = reference.best().expect("feasible");

    // Killed run: the engine trips the cancel token after 5 evaluations,
    // early enough that cost-dominance pruning cannot finish the sweep
    // before the cancellation is felt.
    let path = temp_journal("fig6-killed");
    {
        let token = CancelToken::new();
        let engine = CancelAfter::new(5, token.clone());
        let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
        let journal = Arc::new(SweepJournal::create(&path).unwrap());
        let opts = enterprise_opts()
            .with_cancel(token)
            .with_journal(journal.clone());
        let killed = search_tier(&ctx, "application", load, budget, &opts).unwrap();
        assert!(
            killed.health().interrupted,
            "the cancellation must be felt: {}",
            killed.health()
        );
        journal.flush().unwrap();
    }

    // Resume at one worker and at eight; both must land on the reference.
    let replay = Arc::new(JournalReplay::load(&path).unwrap());
    assert!(
        !replay.is_empty(),
        "the killed sweep journaled its progress"
    );
    for jobs in JOB_COUNTS {
        let opts = enterprise_opts()
            .with_jobs(jobs)
            .with_resume(replay.clone());
        let resumed = search_tier(&ctx, "application", load, budget, &opts).unwrap();
        let best = resumed.best().expect("feasible after resume");
        assert_bit_identical(reference_best, best, &format!("fig6 resume jobs={jobs}"));
        assert!(
            resumed.health().journal_replayed > 0,
            "jobs={jobs}: resume must replay, not re-solve: {}",
            resumed.health()
        );
        assert!(
            !resumed.health().interrupted,
            "jobs={jobs}: runs to the end"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn fig7_killed_job_sweep_resumes_to_the_reference_winner() {
    let fx = fig7_fixture();
    let deadline = Duration::from_hours(200.0);

    let reference_engine = DecompositionEngine::default();
    let ctx = EvalContext::new(
        &fx.infrastructure,
        &fx.service,
        &fx.catalog,
        &reference_engine,
    );
    let reference = search_job_tier(&ctx, "computation", deadline, &job_opts()).unwrap();
    let reference_best = reference.best().expect("feasible");

    let path = temp_journal("fig7-killed");
    {
        let token = CancelToken::new();
        let engine = CancelAfter::new(10, token.clone());
        let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
        let journal = Arc::new(SweepJournal::create(&path).unwrap());
        let opts = job_opts().with_cancel(token).with_journal(journal.clone());
        let killed = search_job_tier(&ctx, "computation", deadline, &opts).unwrap();
        assert!(killed.health().interrupted, "{}", killed.health());
        journal.flush().unwrap();
    }

    let replay = Arc::new(JournalReplay::load(&path).unwrap());
    assert!(!replay.is_empty());
    for jobs in JOB_COUNTS {
        let opts = job_opts().with_jobs(jobs).with_resume(replay.clone());
        let resumed = search_job_tier(&ctx, "computation", deadline, &opts).unwrap();
        let best = resumed.best().expect("feasible after resume");
        assert_bit_identical(reference_best, best, &format!("fig7 resume jobs={jobs}"));
        assert!(
            resumed.health().journal_replayed > 0,
            "jobs={jobs}: {}",
            resumed.health()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_truncated_mid_record_still_resumes_to_the_reference_winner() {
    // A `kill -9` can cut the journal mid-write. The loader drops the
    // torn tail record; the resumed sweep re-evaluates that candidate and
    // still lands on the reference winner.
    let fx = fig6_fixture();
    let load = 1000.0;
    let budget = Duration::from_mins(100.0);
    let engine = DecompositionEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);

    let reference = search_tier(&ctx, "application", load, budget, &enterprise_opts()).unwrap();
    let reference_best = reference.best().expect("feasible");

    let path = temp_journal("fig6-torn");
    {
        let journal = Arc::new(SweepJournal::create(&path).unwrap());
        search_tier(
            &ctx,
            "application",
            load,
            budget,
            &enterprise_opts().with_journal(journal.clone()),
        )
        .unwrap();
        journal.flush().unwrap();
    }

    // Tear the file: keep half the records, cut the last one in two.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 4, "need enough records to tear");
    let keep = lines.len() / 2;
    let mut torn = lines[..keep].join("\n");
    torn.push('\n');
    torn.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&path, &torn).unwrap();

    let replay = Arc::new(JournalReplay::load(&path).unwrap());
    assert!(!replay.is_empty(), "the intact prefix must survive");
    for jobs in JOB_COUNTS {
        let opts = enterprise_opts()
            .with_jobs(jobs)
            .with_resume(replay.clone());
        let resumed = search_tier(&ctx, "application", load, budget, &opts).unwrap();
        assert_bit_identical(
            reference_best,
            resumed.best().expect("feasible"),
            &format!("fig6 torn-journal resume jobs={jobs}"),
        );
    }
    std::fs::remove_file(&path).ok();
}
