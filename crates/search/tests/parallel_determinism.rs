//! Parallel searches must be bit-identical to serial ones.
//!
//! Every entry point is exercised on the paper's Fig. 6 (e-commerce
//! application tier) and Fig. 7 (scientific job tier) fixtures at worker
//! counts 1, 2 and 8 and compared against the serial (default) run:
//! same winner, same cost, same frontier, point for point — including
//! under injected engine faults that force candidates to be skipped, and
//! with dominance pruning toggled off.

use aved_avail::{DecompositionEngine, FaultInjectingEngine, InjectedFault};
use aved_model::{Infrastructure, ParamValue, Service};
use aved_perf::Catalog;
use aved_search::{
    job_frontier, search_job_tier, search_tier, tier_pareto_frontier, CachingEngine, EvalContext,
    EvaluatedDesign, SearchOptions,
};
use aved_units::Duration;

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

struct Fixture {
    infrastructure: Infrastructure,
    service: Service,
    catalog: Catalog,
}

fn fig6_fixture() -> Fixture {
    Fixture {
        infrastructure: aved_spec::parse_infrastructure(include_str!(
            "../../../data/infrastructure.aved"
        ))
        .unwrap(),
        service: aved_spec::parse_service(include_str!("../../../data/ecommerce.aved")).unwrap(),
        catalog: aved_perf::paper::catalog(),
    }
}

fn fig7_fixture() -> Fixture {
    Fixture {
        infrastructure: aved_spec::parse_infrastructure(include_str!(
            "../../../data/infrastructure.aved"
        ))
        .unwrap(),
        service: aved_spec::parse_service(include_str!("../../../data/scientific.aved")).unwrap(),
        catalog: aved_perf::paper::catalog(),
    }
}

fn enterprise_opts() -> SearchOptions {
    SearchOptions {
        max_extra_active: 3,
        max_spares: 2,
        ..SearchOptions::default()
    }
}

fn job_opts() -> SearchOptions {
    SearchOptions {
        max_extra_active: 2,
        max_spares: 1,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()))
}

/// Frontier equality must be point-for-point: same designs, same costs,
/// same quality, same order.
fn assert_same_frontier(serial: &[EvaluatedDesign], parallel: &[EvaluatedDesign], label: &str) {
    assert_eq!(serial.len(), parallel.len(), "{label}: frontier size");
    for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(s.design(), p.design(), "{label}: frontier point {i}");
        assert_eq!(s.cost(), p.cost(), "{label}: frontier point {i} cost");
        assert_eq!(
            s.annual_downtime(),
            p.annual_downtime(),
            "{label}: frontier point {i} downtime"
        );
        assert_eq!(
            s.expected_job_time(),
            p.expected_job_time(),
            "{label}: frontier point {i} job time"
        );
    }
}

#[test]
fn fig6_search_is_identical_at_any_worker_count() {
    let fx = fig6_fixture();
    let engine = DecompositionEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let budget = Duration::from_mins(100.0);
    let serial = search_tier(&ctx, "application", 1000.0, budget, &enterprise_opts()).unwrap();
    let s = serial.best().expect("feasible");
    for jobs in JOB_COUNTS {
        let out = search_tier(
            &ctx,
            "application",
            1000.0,
            budget,
            &enterprise_opts().with_jobs(jobs),
        )
        .unwrap();
        let p = out.best().expect("feasible at jobs={jobs}");
        assert_eq!(s.design(), p.design(), "jobs={jobs}");
        assert_eq!(s.cost(), p.cost(), "jobs={jobs}");
        assert_eq!(s.annual_downtime(), p.annual_downtime(), "jobs={jobs}");
    }
}

#[test]
fn fig6_frontier_is_identical_at_any_worker_count() {
    let fx = fig6_fixture();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let serial = tier_pareto_frontier(&ctx, "application", 800.0, &enterprise_opts()).unwrap();
    assert!(serial.len() >= 3);
    for jobs in JOB_COUNTS {
        let parallel = tier_pareto_frontier(
            &ctx,
            "application",
            800.0,
            &enterprise_opts().with_jobs(jobs),
        )
        .unwrap();
        assert_same_frontier(&serial, &parallel, &format!("fig6 jobs={jobs}"));
    }
}

#[test]
fn fig7_search_is_identical_at_any_worker_count() {
    let fx = fig7_fixture();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let deadline = Duration::from_hours(200.0);
    let serial = search_job_tier(&ctx, "computation", deadline, &job_opts()).unwrap();
    let s = serial.best().expect("feasible");
    for jobs in JOB_COUNTS {
        let out =
            search_job_tier(&ctx, "computation", deadline, &job_opts().with_jobs(jobs)).unwrap();
        let p = out.best().expect("feasible at jobs={jobs}");
        assert_eq!(s.design(), p.design(), "jobs={jobs}");
        assert_eq!(s.cost(), p.cost(), "jobs={jobs}");
        assert_eq!(s.expected_job_time(), p.expected_job_time(), "jobs={jobs}");
    }
}

#[test]
fn fig7_frontier_is_identical_at_any_worker_count() {
    let fx = fig7_fixture();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let totals = [1, 2, 4, 8, 16, 32, 64];
    let serial = job_frontier(&ctx, "computation", &totals, &job_opts()).unwrap();
    assert!(serial.len() >= 3);
    for jobs in JOB_COUNTS {
        let parallel =
            job_frontier(&ctx, "computation", &totals, &job_opts().with_jobs(jobs)).unwrap();
        assert_same_frontier(&serial, &parallel, &format!("fig7 jobs={jobs}"));
    }
}

#[test]
fn faulty_engine_skips_the_same_candidates_at_any_worker_count() {
    // Model-keyed fault injection (the fault follows the model, not the
    // call schedule) kills every spare-carrying evaluation; the skips and
    // the winner must be identical no matter how evaluations interleave.
    //
    // Pruning is off: which *dominated* candidates get evaluated (and so
    // can fail and be skipped) legitimately varies with worker scheduling,
    // so exact skip-count equality is only promised for exhaustive runs.
    // Winner equality holds either way — see the pruning-toggle test.
    let fx = fig6_fixture();
    let inner = DecompositionEngine::default();
    let faulty = FaultInjectingEngine::new(&inner)
        .with_fault_when(|m| m.s() >= 1, InjectedFault::NonConvergence);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &faulty);
    let budget = Duration::from_mins(100.0);
    let opts = enterprise_opts().without_pruning();
    let serial = search_tier(&ctx, "application", 1000.0, budget, &opts).unwrap();
    let s = serial.best().expect("feasible despite skips");
    assert!(
        serial.health().candidates_skipped() > 0,
        "the fault must actually bite"
    );
    for jobs in JOB_COUNTS {
        let out = search_tier(
            &ctx,
            "application",
            1000.0,
            budget,
            &opts.clone().with_jobs(jobs),
        )
        .unwrap();
        let p = out.best().expect("feasible at jobs={jobs}");
        assert_eq!(s.design(), p.design(), "jobs={jobs}");
        assert_eq!(s.cost(), p.cost(), "jobs={jobs}");
        assert_eq!(
            serial.health().candidates_skipped(),
            out.health().candidates_skipped(),
            "jobs={jobs}: model-keyed faults hit the same candidates"
        );
    }
}

#[test]
fn faulty_engine_frontier_is_identical_at_any_worker_count() {
    let fx = fig7_fixture();
    let inner = DecompositionEngine::default();
    let faulty =
        FaultInjectingEngine::new(&inner).with_fault_when(|m| m.s() == 1, InjectedFault::NanResult);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &faulty);
    let totals = [1, 2, 4, 8, 16];
    let serial = job_frontier(&ctx, "computation", &totals, &job_opts()).unwrap();
    assert!(!serial.is_empty());
    for jobs in JOB_COUNTS {
        let parallel =
            job_frontier(&ctx, "computation", &totals, &job_opts().with_jobs(jobs)).unwrap();
        assert_same_frontier(&serial, &parallel, &format!("faulty fig7 jobs={jobs}"));
    }
}

#[test]
fn pruning_toggle_is_invisible_in_the_result_at_any_worker_count() {
    let fx = fig7_fixture();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let deadline = Duration::from_hours(100.0);
    let exhaustive =
        search_job_tier(&ctx, "computation", deadline, &job_opts().without_pruning()).unwrap();
    let e = exhaustive.best().expect("feasible");
    assert_eq!(exhaustive.health().candidates_pruned, 0);
    for jobs in JOB_COUNTS {
        let pruned =
            search_job_tier(&ctx, "computation", deadline, &job_opts().with_jobs(jobs)).unwrap();
        let p = pruned.best().expect("feasible at jobs={jobs}");
        assert_eq!(e.design(), p.design(), "jobs={jobs}");
        assert_eq!(e.cost(), p.cost(), "jobs={jobs}");
        assert_eq!(e.expected_job_time(), p.expected_job_time(), "jobs={jobs}");
    }
}
