//! Warm-started searches must be bit-identical to cold ones.
//!
//! The warm-start pipeline (locality-ordered shards, steady-state reuse,
//! in-place chain rebuilds) is a pure performance optimization: on the
//! paper's Fig. 6 (e-commerce application tier) and Fig. 7 (scientific
//! job tier) fixtures, the selected minimum-cost design and every reported
//! metric must be identical — to the bit, not to a tolerance — with warm
//! starts on or off, at one worker and at many, and with the exact
//! [`CtmcEngine`] as well as the fast decomposition engine.

use aved_avail::{CtmcEngine, DecompositionEngine};
use aved_model::{Infrastructure, ParamValue, Service};
use aved_perf::Catalog;
use aved_search::{
    job_frontier, search_job_tier, search_tier, tier_pareto_frontier, EvalContext, EvaluatedDesign,
    SearchOptions,
};
use aved_units::Duration;

const JOB_COUNTS: [usize; 2] = [1, 8];

struct Fixture {
    infrastructure: Infrastructure,
    service: Service,
    catalog: Catalog,
}

fn fig6_fixture() -> Fixture {
    Fixture {
        infrastructure: aved_spec::parse_infrastructure(include_str!(
            "../../../data/infrastructure.aved"
        ))
        .unwrap(),
        service: aved_spec::parse_service(include_str!("../../../data/ecommerce.aved")).unwrap(),
        catalog: aved_perf::paper::catalog(),
    }
}

fn fig7_fixture() -> Fixture {
    Fixture {
        infrastructure: aved_spec::parse_infrastructure(include_str!(
            "../../../data/infrastructure.aved"
        ))
        .unwrap(),
        service: aved_spec::parse_service(include_str!("../../../data/scientific.aved")).unwrap(),
        catalog: aved_perf::paper::catalog(),
    }
}

fn enterprise_opts() -> SearchOptions {
    SearchOptions {
        max_extra_active: 3,
        max_spares: 2,
        ..SearchOptions::default()
    }
}

fn job_opts() -> SearchOptions {
    SearchOptions {
        max_extra_active: 2,
        max_spares: 1,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()))
}

/// Bit-level equality of every metric a design carries.
fn assert_bit_identical(a: &EvaluatedDesign, b: &EvaluatedDesign, label: &str) {
    assert_eq!(a.design(), b.design(), "{label}: design");
    assert_eq!(
        a.cost().dollars().to_bits(),
        b.cost().dollars().to_bits(),
        "{label}: cost"
    );
    assert_eq!(
        a.availability().unavailability().to_bits(),
        b.availability().unavailability().to_bits(),
        "{label}: unavailability"
    );
    assert_eq!(
        a.availability()
            .down_event_rate()
            .per_hour_value()
            .to_bits(),
        b.availability()
            .down_event_rate()
            .per_hour_value()
            .to_bits(),
        "{label}: down-event rate"
    );
    match (a.expected_job_time(), b.expected_job_time()) {
        (Some(x), Some(y)) => assert_eq!(
            x.seconds().to_bits(),
            y.seconds().to_bits(),
            "{label}: job time"
        ),
        (x, y) => assert_eq!(x, y, "{label}: job time presence"),
    }
}

#[test]
fn fig6_search_is_identical_warm_or_cold_at_any_worker_count() {
    let fx = fig6_fixture();
    let engine = DecompositionEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let budget = Duration::from_mins(100.0);
    let cold = search_tier(
        &ctx,
        "application",
        1000.0,
        budget,
        &enterprise_opts().without_warm_start(),
    )
    .unwrap();
    let c = cold.best().expect("feasible");
    for jobs in JOB_COUNTS {
        let warm = search_tier(
            &ctx,
            "application",
            1000.0,
            budget,
            &enterprise_opts().with_jobs(jobs),
        )
        .unwrap();
        let w = warm.best().expect("feasible");
        assert_bit_identical(c, w, &format!("fig6 warm jobs={jobs}"));
        assert!(warm.health().warm_solves > 0, "warm path must be exercised");
    }
}

#[test]
fn fig6_search_is_identical_under_the_exact_ctmc_engine() {
    // The exact joint-chain engine takes the deepest warm-start path
    // (repatched multi-class chains, cached down-state masks); the answer
    // must still not move by a bit.
    let fx = fig6_fixture();
    let engine = CtmcEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let budget = Duration::from_mins(100.0);
    let opts = SearchOptions {
        max_extra_active: 2,
        max_spares: 1,
        ..SearchOptions::default()
    };
    let cold = search_tier(
        &ctx,
        "application",
        1000.0,
        budget,
        &opts.clone().without_warm_start(),
    )
    .unwrap();
    let warm = search_tier(&ctx, "application", 1000.0, budget, &opts).unwrap();
    assert_bit_identical(
        cold.best().expect("feasible"),
        warm.best().expect("feasible"),
        "fig6 exact engine",
    );
}

#[test]
fn fig6_frontier_is_identical_warm_or_cold() {
    let fx = fig6_fixture();
    let engine = DecompositionEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let cold = tier_pareto_frontier(
        &ctx,
        "application",
        800.0,
        &enterprise_opts().without_warm_start(),
    )
    .unwrap();
    assert!(cold.len() >= 3);
    for jobs in JOB_COUNTS {
        let warm = tier_pareto_frontier(
            &ctx,
            "application",
            800.0,
            &enterprise_opts().with_jobs(jobs),
        )
        .unwrap();
        assert_eq!(cold.len(), warm.len(), "jobs={jobs}: frontier size");
        for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
            assert_bit_identical(c, w, &format!("fig6 frontier point {i} jobs={jobs}"));
        }
    }
}

#[test]
fn fig7_search_is_identical_warm_or_cold_at_any_worker_count() {
    let fx = fig7_fixture();
    let engine = DecompositionEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let deadline = Duration::from_hours(200.0);
    let cold = search_job_tier(
        &ctx,
        "computation",
        deadline,
        &job_opts().without_warm_start(),
    )
    .unwrap();
    let c = cold.best().expect("feasible");
    for jobs in JOB_COUNTS {
        let warm =
            search_job_tier(&ctx, "computation", deadline, &job_opts().with_jobs(jobs)).unwrap();
        let w = warm.best().expect("feasible");
        assert_bit_identical(c, w, &format!("fig7 warm jobs={jobs}"));
    }
}

#[test]
fn fig7_frontier_is_identical_warm_or_cold() {
    let fx = fig7_fixture();
    let engine = DecompositionEngine::default();
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let totals = [1, 2, 4, 8, 16, 32, 64];
    let cold = job_frontier(
        &ctx,
        "computation",
        &totals,
        &job_opts().without_warm_start(),
    )
    .unwrap();
    assert!(cold.len() >= 3);
    for jobs in JOB_COUNTS {
        let warm = job_frontier(&ctx, "computation", &totals, &job_opts().with_jobs(jobs)).unwrap();
        assert_eq!(cold.len(), warm.len(), "jobs={jobs}: frontier size");
        for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
            assert_bit_identical(c, w, &format!("fig7 frontier point {i} jobs={jobs}"));
        }
    }
}
