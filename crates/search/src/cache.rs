//! Memoizing wrapper around an availability engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use aved_avail::{
    AvailError, AvailabilityEngine, EvalHealth, EvalSession, TierAvailability, TierModel,
};

/// Number of independently-locked shards. Power of two so the shard index
/// is a mask of the key hash; 16 is plenty for the worker counts a search
/// realistically runs (contention is per-shard, and distinct models spread
/// uniformly under FNV).
const SHARDS: usize = 16;

/// An [`AvailabilityEngine`] decorator that memoizes results by model.
///
/// Large parts of the design space share an availability model: checkpoint
/// parameters change the loss window and the performance overhead but not
/// the failure/repair dynamics, so the thousands of checkpoint-interval
/// candidates the Fig.-7 search enumerates map to a handful of distinct
/// tier models. Wrapping the engine in a cache turns those re-evaluations
/// into hash lookups.
///
/// The cache is sharded and lock-based, so one instance can be shared by
/// every worker of a parallel search: keys are the structural
/// [`TierModel::structural_hash`] (canonical `f64` bit patterns — no
/// float-to-string formatting on the hot path, no collisions between
/// distinct values that render alike), each shard is an independent
/// `RwLock`, and the hit/miss counters are atomics. Two workers racing on
/// the same cold model may both evaluate it (the result is identical and
/// the insert idempotent); a miss is counted per inner evaluation so the
/// counters stay truthful about work done.
///
/// # Examples
///
/// ```
/// use aved_avail::{AvailabilityEngine, CtmcEngine, FailureClass, TierModel};
/// use aved_search::CachingEngine;
/// use aved_units::Duration;
///
/// let inner = CtmcEngine::default();
/// let engine = CachingEngine::new(&inner);
/// let model = TierModel::new(1, 1, 0).with_class(FailureClass::new(
///     "hw",
///     Duration::from_hours(1000.0).rate(),
///     Duration::from_hours(10.0),
///     Duration::ZERO,
///     false,
/// ));
/// let first = engine.evaluate(&model)?;
/// let second = engine.evaluate(&model)?; // served from cache
/// assert_eq!(first, second);
/// assert_eq!(engine.hits(), 1);
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
pub struct CachingEngine<'a> {
    inner: &'a dyn AvailabilityEngine,
    // Buckets hold (model, result) pairs: the structural hash picks the
    // bucket, full model equality guards against the (astronomically
    // unlikely, but silently-wrong-results-bad) 64-bit collision.
    #[allow(clippy::type_complexity)]
    shards: [RwLock<HashMap<u64, Vec<(TierModel, (TierAvailability, EvalHealth))>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> CachingEngine<'a> {
    /// Wraps an engine.
    #[must_use]
    pub fn new(inner: &'a dyn AvailabilityEngine) -> CachingEngine<'a> {
        CachingEngine {
            inner,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (inner evaluations) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl AvailabilityEngine for CachingEngine<'_> {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        self.evaluate_with_health(model).map(|(r, _)| r)
    }

    fn evaluate_with_health(
        &self,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        // Health is cached alongside the result so fallback accounting
        // reflects what the solve would have cost, hit or miss.
        let key = model.structural_hash();
        let shard = &self.shards[(key as usize) & (SHARDS - 1)];
        if let Some(bucket) = shard.read().expect("cache shard poisoned").get(&key) {
            if let Some((_, cached)) = bucket.iter().find(|(m, _)| m == model) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(*cached);
            }
        }
        let result = self.inner.evaluate_with_health(model)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = shard.write().expect("cache shard poisoned");
        let bucket = shard.entry(key).or_default();
        if !bucket.iter().any(|(m, _)| m == model) {
            bucket.push((model.clone(), result));
        }
        Ok(result)
    }

    fn evaluate_with_session(
        &self,
        model: &TierModel,
        session: &mut EvalSession,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        // Identical to the sessionless path, except a miss hands the
        // caller's session down to the inner engine so the solve itself can
        // warm-start. Hits bypass the session entirely (no solve happens).
        let key = model.structural_hash();
        let shard = &self.shards[(key as usize) & (SHARDS - 1)];
        if let Some(bucket) = shard.read().expect("cache shard poisoned").get(&key) {
            if let Some((_, cached)) = bucket.iter().find(|(m, _)| m == model) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(*cached);
            }
        }
        let result = self.inner.evaluate_with_session(model, session)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = shard.write().expect("cache shard poisoned");
        let bucket = shard.entry(key).or_default();
        if !bucket.iter().any(|(m, _)| m == model) {
            bucket.push((model.clone(), result));
        }
        Ok(result)
    }
}

impl std::fmt::Debug for CachingEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingEngine")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_avail::{CtmcEngine, FailureClass};
    use aved_units::Duration;

    fn model(n: u32) -> TierModel {
        TierModel::new(n, 1, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(100.0).rate(),
            Duration::from_hours(1.0),
            Duration::ZERO,
            false,
        ))
    }

    #[test]
    fn caches_by_model_identity() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let a = engine.evaluate(&model(2)).unwrap();
        let b = engine.evaluate(&model(2)).unwrap();
        let c = engine.evaluate(&model(3)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.unavailability(), c.unavailability());
        assert_eq!(engine.hits(), 1);
        assert_eq!(engine.misses(), 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let bad = TierModel::new(1, 1, 0); // no classes
        assert!(engine.evaluate(&bad).is_err());
        assert_eq!(engine.misses(), 0);
    }

    #[test]
    fn float_keys_use_bit_patterns_not_formatting() {
        // Regression for the formatted-string key: two MTTRs one ULP apart
        // can render identically ("trailing zeros" truncated) yet are
        // different models; conversely -0.0 and 0.0 render differently yet
        // are the same model. Structural keys get both right.
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let with_mttr = |hours: f64| {
            TierModel::new(1, 1, 0).with_class(FailureClass::new(
                "hw",
                Duration::from_hours(100.0).rate(),
                Duration::from_hours(hours),
                Duration::ZERO,
                false,
            ))
        };
        let a = with_mttr(1.0);
        let b = with_mttr(f64::from_bits(1.0_f64.to_bits() + 1));
        assert_ne!(a, b, "one ULP apart is a different model");
        let _ = engine.evaluate(&a).unwrap();
        let _ = engine.evaluate(&b).unwrap();
        assert_eq!(engine.misses(), 2, "distinct models must not collide");
        assert_eq!(engine.hits(), 0);
    }

    #[test]
    fn negative_zero_hits_the_positive_zero_entry() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let with_failover = |secs: f64| {
            TierModel::new(2, 2, 1).with_class(FailureClass::new(
                "hw",
                Duration::from_hours(100.0).rate(),
                Duration::from_hours(1.0),
                Duration::from_secs(secs),
                false,
            ))
        };
        let pos = with_failover(0.0);
        let neg = with_failover(-0.0);
        assert_eq!(pos, neg, "numerically the same model");
        let a = engine.evaluate(&pos).unwrap();
        let b = engine.evaluate(&neg).unwrap();
        assert_eq!(a, b);
        assert_eq!(engine.misses(), 1);
        assert_eq!(engine.hits(), 1, "-0.0 must reuse the 0.0 entry");
    }

    #[test]
    fn session_path_caches_and_bypasses_the_session_on_hits() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let mut session = EvalSession::new();
        let a = engine
            .evaluate_with_session(&model(2), &mut session)
            .unwrap();
        assert_eq!(session.stats().solves, 1, "a miss solves via the session");
        let b = engine
            .evaluate_with_session(&model(2), &mut session)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(session.stats().solves, 1, "a hit does not solve at all");
        assert_eq!(engine.hits(), 1);
        assert_eq!(engine.misses(), 1);
    }

    #[test]
    fn concurrent_lookups_share_one_cache() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let models: Vec<TierModel> = (1..=4).map(model).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for m in &models {
                        let _ = engine.evaluate(m).unwrap();
                    }
                });
            }
        });
        // 16 evaluations of 4 distinct models: at least one evaluation per
        // model is a miss; racing threads may double-compute a cold model,
        // but hits + misses always equals total calls.
        assert_eq!(engine.hits() + engine.misses(), 16);
        assert!(engine.misses() >= 4);
        assert!(engine.hits() >= 16 - 2 * 4, "most lookups should hit");
    }
}
