//! Memoizing wrapper around an availability engine.

use std::cell::RefCell;
use std::collections::HashMap;

use aved_avail::{AvailError, AvailabilityEngine, EvalHealth, TierAvailability, TierModel};

/// An [`AvailabilityEngine`] decorator that memoizes results by model.
///
/// Large parts of the design space share an availability model: checkpoint
/// parameters change the loss window and the performance overhead but not
/// the failure/repair dynamics, so the thousands of checkpoint-interval
/// candidates the Fig.-7 search enumerates map to a handful of distinct
/// tier models. Wrapping the engine in a cache turns those re-evaluations
/// into hash lookups.
///
/// # Examples
///
/// ```
/// use aved_avail::{AvailabilityEngine, CtmcEngine, FailureClass, TierModel};
/// use aved_search::CachingEngine;
/// use aved_units::Duration;
///
/// let inner = CtmcEngine::default();
/// let engine = CachingEngine::new(&inner);
/// let model = TierModel::new(1, 1, 0).with_class(FailureClass::new(
///     "hw",
///     Duration::from_hours(1000.0).rate(),
///     Duration::from_hours(10.0),
///     Duration::ZERO,
///     false,
/// ));
/// let first = engine.evaluate(&model)?;
/// let second = engine.evaluate(&model)?; // served from cache
/// assert_eq!(first, second);
/// assert_eq!(engine.hits(), 1);
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
pub struct CachingEngine<'a> {
    inner: &'a dyn AvailabilityEngine,
    cache: RefCell<HashMap<String, (TierAvailability, EvalHealth)>>,
    hits: RefCell<u64>,
    misses: RefCell<u64>,
}

impl<'a> CachingEngine<'a> {
    /// Wraps an engine.
    #[must_use]
    pub fn new(inner: &'a dyn AvailabilityEngine) -> CachingEngine<'a> {
        CachingEngine {
            inner,
            cache: RefCell::new(HashMap::new()),
            hits: RefCell::new(0),
            misses: RefCell::new(0),
        }
    }

    /// Number of cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        *self.hits.borrow()
    }

    /// Number of cache misses (inner evaluations) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        *self.misses.borrow()
    }
}

impl AvailabilityEngine for CachingEngine<'_> {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        self.evaluate_with_health(model).map(|(r, _)| r)
    }

    fn evaluate_with_health(
        &self,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        // The Debug rendering is a complete, deterministic serialization of
        // the model (all fields derive Debug), making it a sound cache key.
        // Health is cached alongside the result so fallback accounting
        // reflects what the solve would have cost, hit or miss.
        let key = format!("{model:?}");
        if let Some(hit) = self.cache.borrow().get(&key) {
            *self.hits.borrow_mut() += 1;
            return Ok(*hit);
        }
        let result = self.inner.evaluate_with_health(model)?;
        *self.misses.borrow_mut() += 1;
        self.cache.borrow_mut().insert(key, result);
        Ok(result)
    }
}

impl std::fmt::Debug for CachingEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingEngine")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_avail::{CtmcEngine, FailureClass};
    use aved_units::Duration;

    fn model(n: u32) -> TierModel {
        TierModel::new(n, 1, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(100.0).rate(),
            Duration::from_hours(1.0),
            Duration::ZERO,
            false,
        ))
    }

    #[test]
    fn caches_by_model_identity() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let a = engine.evaluate(&model(2)).unwrap();
        let b = engine.evaluate(&model(2)).unwrap();
        let c = engine.evaluate(&model(3)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.unavailability(), c.unavailability());
        assert_eq!(engine.hits(), 1);
        assert_eq!(engine.misses(), 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let inner = CtmcEngine::default();
        let engine = CachingEngine::new(&inner);
        let bad = TierModel::new(1, 1, 0); // no classes
        assert!(engine.evaluate(&bad).is_err());
        assert_eq!(engine.misses(), 0);
    }
}
