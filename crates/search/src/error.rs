//! Search-level errors.

use std::error::Error;
use std::fmt;

/// Error produced during design-space search.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SearchError {
    /// The service model has no tier with the requested name.
    UnknownTier {
        /// The missing tier name.
        tier: String,
    },
    /// The requirement kind does not match the service kind (e.g. a job
    /// requirement for an enterprise service).
    RequirementMismatch {
        /// Explanation.
        detail: String,
    },
    /// A symbolic performance reference could not be resolved.
    Catalog(aved_perf::CatalogError),
    /// Availability evaluation failed.
    Avail(aved_avail::AvailError),
    /// The design-space model is inconsistent.
    Model(aved_model::ModelError),
    /// An evaluation produced a NaN or infinite metric — a silently-wrong
    /// engine result that must never reach a frontier comparison.
    NonFiniteEvaluation {
        /// Which metric was non-finite, and its value.
        detail: String,
    },
}

impl SearchError {
    /// `true` when the error condemns only the candidate being evaluated
    /// (an engine failure or a non-finite result) rather than the whole
    /// search (an unknown tier, an unresolvable reference, an inconsistent
    /// model — which would fail every candidate identically).
    ///
    /// Non-strict searches skip candidates with candidate-scoped errors
    /// and record them in their `SearchHealth` report.
    #[must_use]
    pub fn is_candidate_scoped(&self) -> bool {
        matches!(
            self,
            SearchError::Avail(_) | SearchError::NonFiniteEvaluation { .. }
        )
    }

    /// `true` when the error reports a cooperative cancellation (a
    /// [`CancelToken`](aved_avail::CancelToken) fired mid-evaluation).
    /// Cancellation condemns nothing: the search stops cleanly with its
    /// best-so-far result instead of recording a skipped candidate.
    #[must_use]
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            SearchError::Avail(aved_avail::AvailError::Markov(
                aved_markov::MarkovError::Cancelled { .. }
            ))
        )
    }

    /// `true` when the error reports a per-candidate resource budget
    /// running out (deadline, sweep cap, state cap — see
    /// [`SolveBudget`](aved_avail::SolveBudget)). Candidate-scoped: the
    /// candidate is skipped and counted, the sweep continues.
    #[must_use]
    pub fn is_budget_exhaustion(&self) -> bool {
        matches!(
            self,
            SearchError::Avail(aved_avail::AvailError::Markov(
                aved_markov::MarkovError::BudgetExhausted { .. }
            ))
        )
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::UnknownTier { tier } => write!(f, "service has no tier named {tier}"),
            SearchError::RequirementMismatch { detail } => {
                write!(f, "requirement mismatch: {detail}")
            }
            SearchError::Catalog(e) => write!(f, "catalog error: {e}"),
            SearchError::Avail(e) => write!(f, "availability error: {e}"),
            SearchError::Model(e) => write!(f, "model error: {e}"),
            SearchError::NonFiniteEvaluation { detail } => {
                write!(f, "evaluation produced a non-finite metric: {detail}")
            }
        }
    }
}

impl Error for SearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SearchError::Catalog(e) => Some(e),
            SearchError::Avail(e) => Some(e),
            SearchError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aved_perf::CatalogError> for SearchError {
    fn from(e: aved_perf::CatalogError) -> SearchError {
        SearchError::Catalog(e)
    }
}

impl From<aved_avail::AvailError> for SearchError {
    fn from(e: aved_avail::AvailError) -> SearchError {
        SearchError::Avail(e)
    }
}

impl From<aved_model::ModelError> for SearchError {
    fn from(e: aved_model::ModelError) -> SearchError {
        SearchError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(SearchError::UnknownTier { tier: "db".into() }
            .to_string()
            .contains("db"));
        let e: SearchError = aved_avail::AvailError::InvalidModel { detail: "x".into() }.into();
        assert!(Error::source(&e).is_some());
        let e: SearchError = aved_model::ModelError::Invalid { detail: "y".into() }.into();
        assert!(Error::source(&e).is_some());
        let e = SearchError::NonFiniteEvaluation {
            detail: "cost = NaN".into(),
        };
        assert!(e.to_string().contains("non-finite"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn candidate_scoped_errors_are_engine_and_nonfinite_failures() {
        let engine: SearchError =
            aved_avail::AvailError::InvalidModel { detail: "x".into() }.into();
        assert!(engine.is_candidate_scoped());
        assert!(SearchError::NonFiniteEvaluation { detail: "x".into() }.is_candidate_scoped());
        assert!(!SearchError::UnknownTier { tier: "db".into() }.is_candidate_scoped());
        let model: SearchError = aved_model::ModelError::Invalid { detail: "y".into() }.into();
        assert!(!model.is_candidate_scoped());
    }
}
