//! Sensitivity analysis: how robust is the selected design to errors in
//! the failure-rate inputs?
//!
//! The paper concedes that its software failure rates "were estimated
//! based on the authors' intuition, since this data was not readily
//! available", and its future work proposes refining models from online
//! monitoring. This module quantifies the exposure: it re-runs the design
//! search under scaled MTBFs and reports whether — and how — the optimal
//! design changes.

use aved_model::{ComponentType, FailureMode, Infrastructure};
use aved_units::{Duration, Money};

use crate::{search_tier, EvalContext, SearchError, SearchOptions};

/// The outcome of one perturbed design run.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// The factor every MTBF was multiplied by (0.5 = twice the failures).
    pub mtbf_scale: f64,
    /// The optimal design's cost under the perturbation (`None` when the
    /// requirement became infeasible).
    pub cost: Option<Money>,
    /// The optimal design's expected downtime under the perturbation.
    pub annual_downtime: Option<Duration>,
    /// Whether the selected design (resource, counts, settings) is
    /// identical to the baseline's.
    pub same_design_as_baseline: bool,
}

/// Returns a copy of the infrastructure with every failure mode's MTBF
/// multiplied by `factor` (components' other attributes, mechanisms and
/// resources are unchanged).
///
/// # Panics
///
/// Panics if `factor` is not positive.
#[must_use]
pub fn scale_mtbfs(infrastructure: &Infrastructure, factor: f64) -> Infrastructure {
    assert!(factor > 0.0, "MTBF scale factor must be positive");
    let mut out = Infrastructure::new();
    for mech in infrastructure.mechanisms() {
        out = out.with_mechanism(mech.clone());
    }
    for resource in infrastructure.resources() {
        out = out.with_resource(resource.clone());
    }
    for component in infrastructure.components() {
        let mut rebuilt = ComponentType::new(component.name().clone())
            .with_costs(component.cost_inactive(), component.cost_active());
        if let Some(max) = component.max_instances() {
            rebuilt = rebuilt.with_max_instances(max);
        }
        if let Some(lw) = component.loss_window() {
            rebuilt = rebuilt.with_loss_window(lw.clone());
        }
        for mode in component.failure_modes() {
            // Literal MTBFs scale; mechanism-delegated ones are left to the
            // mechanism's own tables.
            let mtbf = match mode.mtbf_spec() {
                aved_model::DurationSpec::Fixed(d) => aved_model::DurationSpec::Fixed(*d * factor),
                delegated @ aved_model::DurationSpec::FromMechanism(_) => delegated.clone(),
            };
            rebuilt = rebuilt.with_failure_mode(FailureMode::new(
                mode.name(),
                mtbf,
                mode.repair().clone(),
                mode.detect_time(),
            ));
        }
        out = out.with_component(rebuilt);
    }
    out
}

/// Runs the tier search at each MTBF scale and compares against the
/// unscaled baseline.
///
/// The rows come back in the order of `scales`; a scale of exactly `1.0`
/// reproduces the baseline. The context's engine and catalog are reused;
/// only the infrastructure is perturbed. Each inner search parallelizes
/// per [`SearchOptions::jobs`] — nothing extra to configure here.
///
/// # Errors
///
/// Returns [`SearchError`] for model or evaluation failures (infeasibility
/// under a perturbation is reported in the row, not as an error).
pub fn mtbf_sensitivity(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    load: f64,
    max_downtime: Duration,
    options: &SearchOptions,
    scales: &[f64],
) -> Result<Vec<SensitivityRow>, SearchError> {
    let baseline = search_tier(ctx, tier_name, load, max_downtime, options)?;
    let baseline_design = baseline.best().map(|e| e.design().clone());

    let mut rows = Vec::with_capacity(scales.len());
    for &scale in scales {
        let perturbed = scale_mtbfs(ctx.infrastructure(), scale);
        let pctx = EvalContext::new(&perturbed, ctx.service(), ctx.catalog(), ctx.engine());
        let outcome = search_tier(&pctx, tier_name, load, max_downtime, options)?;
        let same = match (&baseline_design, outcome.best()) {
            (Some(b), Some(e)) => e.design() == b,
            (None, None) => true,
            _ => false,
        };
        rows.push(SensitivityRow {
            mtbf_scale: scale,
            cost: outcome.best().map(crate::EvaluatedDesign::cost),
            annual_downtime: outcome.best().map(crate::EvaluatedDesign::annual_downtime),
            same_design_as_baseline: same,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::app_tier_fixture;
    use crate::CachingEngine;
    use aved_avail::DecompositionEngine;

    fn opts() -> SearchOptions {
        SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn scaling_mtbfs_rescales_failure_modes_only() {
        let fx = app_tier_fixture();
        let scaled = scale_mtbfs(&fx.infrastructure, 2.0);
        let orig = fx.infrastructure.component("machineA").unwrap();
        let new = scaled.component("machineA").unwrap();
        for (o, n) in orig.failure_modes().iter().zip(new.failure_modes()) {
            assert_eq!(n.mtbf().unwrap(), o.mtbf().unwrap() * 2.0);
            assert_eq!(n.detect_time(), o.detect_time());
            assert_eq!(n.repair(), o.repair());
        }
        assert_eq!(new.cost_active(), orig.cost_active());
        assert_eq!(
            scaled.mechanisms().count(),
            fx.infrastructure.mechanisms().count()
        );
        assert_eq!(
            scaled.resources().count(),
            fx.infrastructure.resources().count()
        );
        scaled.validate().unwrap();
    }

    #[test]
    fn unit_scale_reproduces_baseline() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let rows = mtbf_sensitivity(
            &ctx,
            "application",
            800.0,
            Duration::from_mins(500.0),
            &opts(),
            &[1.0],
        )
        .unwrap();
        assert!(rows[0].same_design_as_baseline);
    }

    #[test]
    fn worse_mtbfs_never_reduce_cost() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let rows = mtbf_sensitivity(
            &ctx,
            "application",
            800.0,
            Duration::from_mins(200.0),
            &opts(),
            &[0.25, 1.0, 4.0],
        )
        .unwrap();
        let cost = |i: usize| rows[i].cost.expect("feasible").dollars();
        assert!(cost(0) >= cost(1), "more failures should not be cheaper");
        assert!(cost(2) <= cost(1), "fewer failures should not be dearer");
        // And the perturbed optima still meet the requirement.
        for row in &rows {
            assert!(row.annual_downtime.unwrap() <= Duration::from_mins(200.0));
        }
    }

    #[test]
    fn large_perturbations_change_the_design() {
        // Quadrupled failure rates under a tight budget force a different
        // (more redundant or better-maintained) design family.
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let rows = mtbf_sensitivity(
            &ctx,
            "application",
            800.0,
            Duration::from_mins(100.0),
            &opts(),
            &[0.25],
        )
        .unwrap();
        assert!(!rows[0].same_design_as_baseline);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let fx = app_tier_fixture();
        let _ = scale_mtbfs(&fx.infrastructure, 0.0);
    }
}
