//! The per-tier search algorithm of paper §4.1.
//!
//! Each resource-count level is evaluated as a batch: candidates are
//! enumerated serially (cheap) and kept in **enumeration order** — which
//! is parameter-locality order: neighboring candidates differ in one knob
//! (one more spare, the next maintenance level). The batch fans out across
//! [`SearchOptions::jobs`] scoped threads in contiguous shards, so each
//! worker's warm-started [`aved_avail::EvalSession`] sees a chain of
//! near-identical models and reuses chain structure and steady-state
//! vectors from one candidate to the next. Results are folded back **in
//! candidate order** to select the winner — so the selected design is
//! identical at any worker count and with warm starts on or off. A shared
//! [`BestCost`] cell lets workers skip candidates that already cost
//! strictly more than a known-feasible design (dominance pruning; see
//! [`crate::parallel`](crate::parallel_map) for why neither changes the
//! result).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use aved_avail::{EvalSession, SolveBudget};
use aved_units::Duration;

use crate::evaluate::{evaluate_enterprise_design_in, evaluate_job_design_in};
use crate::health::isolate_candidate;
use crate::journal::{enterprise_key, job_key};
use crate::parallel::{effective_jobs, parallel_map_with, BestCost};
use crate::{
    enumerate_tier_candidates, EvalContext, EvaluatedDesign, SearchError, SearchHealth,
    SearchOptions,
};

/// Builds one evaluation session per worker, each governed by `budget`.
/// When warm starts are disabled the sessions still exist (the executor
/// needs per-worker states) but every candidate gets a throwaway session,
/// so nothing is carried between solves.
fn worker_sessions(jobs: usize, budget: &SolveBudget) -> Vec<EvalSession> {
    (0..jobs.max(1))
        .map(|_| EvalSession::new().with_budget(budget.clone()))
        .collect()
}

/// What happened to one candidate of a level batch, in the worker.
///
/// The fold over these (in candidate order) makes every search decision;
/// workers only evaluate and classify.
enum CandidateOutcome {
    /// Skipped without evaluation: a known-feasible design is strictly
    /// cheaper, so this candidate cannot win.
    Pruned,
    /// Skipped because a worker already hit a fatal error; the fold will
    /// surface that error, so this candidate's fate is irrelevant.
    Aborted,
    /// Skipped without evaluation because the search is stopping — the
    /// whole-search deadline passed or the cancellation token fired. The
    /// post-batch check turns this into a clean best-so-far stop.
    Interrupted,
    /// Not evaluated: the resume journal already holds this candidate's
    /// recorded outcome, restored bit-for-bit.
    Replayed(Result<Option<EvaluatedDesign>, SearchError>),
    /// Evaluated (successfully or not); the fold applies the isolation
    /// policy and the win/tie rules.
    Evaluated(Result<Option<EvaluatedDesign>, SearchError>),
}

/// Publishes a worker-side result's consequences before the merge fold
/// sees it: feasible costs go to the shared pruning cell (replayed results
/// included, so pruning warms up during a resume exactly as it would
/// live), and fatal — or strict-mode — failures raise the abort flag.
/// Cancellations never abort: the post-batch check converts them into a
/// clean best-so-far interruption instead of an error.
fn classify_result(
    result: &Result<Option<EvaluatedDesign>, SearchError>,
    feasible: impl Fn(&EvaluatedDesign) -> bool,
    options: &SearchOptions,
    best_cost: &BestCost,
    abort: &AtomicBool,
) {
    match result {
        Ok(Some(e)) if feasible(e) => best_cost.offer(e.cost()),
        Err(e) if e.is_cancellation() => {}
        Err(e) if options.strict || !e.is_candidate_scoped() => {
            abort.store(true, Ordering::Relaxed);
        }
        _ => {}
    }
}

/// Counters describing how much work a search did — the basis of the
/// pruning-effectiveness ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Candidates whose cost was computed.
    pub cost_evaluations: usize,
    /// Candidates whose availability (or completion time) was evaluated.
    pub quality_evaluations: usize,
    /// Candidates rejected on cost alone after a feasible design was known
    /// ("subsequent designs are evaluated for cost first ... and higher
    /// cost designs are rejected without evaluating their availability").
    pub pruned_by_cost: usize,
    /// Resource-count levels explored across all options.
    pub totals_explored: usize,
}

/// The outcome of a tier search.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// A minimum-cost feasible design was found.
    Found {
        /// The winning design and its evaluation.
        best: EvaluatedDesign,
        /// Work counters.
        stats: SearchStats,
        /// Degraded-mode report: skips, fallbacks, worst residual.
        health: SearchHealth,
    },
    /// No design in the (bounded) space satisfies the requirement.
    Infeasible {
        /// Work counters.
        stats: SearchStats,
        /// Degraded-mode report: skips, fallbacks, worst residual.
        health: SearchHealth,
    },
}

impl SearchOutcome {
    /// The winning design, if any.
    #[must_use]
    pub fn best(&self) -> Option<&EvaluatedDesign> {
        match self {
            SearchOutcome::Found { best, .. } => Some(best),
            SearchOutcome::Infeasible { .. } => None,
        }
    }

    /// The work counters.
    #[must_use]
    pub fn stats(&self) -> &SearchStats {
        match self {
            SearchOutcome::Found { stats, .. } | SearchOutcome::Infeasible { stats, .. } => stats,
        }
    }

    /// The degraded-mode report: candidates skipped after evaluation
    /// failures, solver fallbacks taken, worst accepted residual, wall
    /// time. A trustworthy result has [`SearchHealth::is_degraded`] false.
    #[must_use]
    pub fn health(&self) -> &SearchHealth {
        match self {
            SearchOutcome::Found { health, .. } | SearchOutcome::Infeasible { health, .. } => {
                health
            }
        }
    }
}

/// How many consecutive resource-count levels may fail to improve quality
/// before an unsatisfied search concludes infeasibility.
const DEGRADE_PATIENCE: usize = 2;

/// Searches one enterprise-service tier for the minimum-cost design meeting
/// a throughput (`load`) and annual-downtime requirement, per §4.1:
///
/// 1. every resource option of the tier is searched;
/// 2. for an option, the resource count starts at the minimum meeting the
///    load with no failures and grows;
/// 3. at each count, all active/spare splits, spare modes and mechanism
///    settings are candidates;
/// 4. once any feasible design is known, candidates are screened by cost
///    first and discarded without availability evaluation if they cannot
///    win;
/// 5. an option's count stops growing when even the cheapest candidate at
///    the current count costs more than the best design found, or when
///    downtime keeps degrading with added resources while nothing is
///    feasible.
///
/// Evaluation failures are isolated to the failing candidate: the
/// candidate is skipped, the skip is recorded in the outcome's
/// [`SearchHealth`], and the search continues — unless
/// [`SearchOptions::strict`] is set, in which case the first failure
/// aborts the search.
///
/// Candidate evaluations run on [`SearchOptions::jobs`] worker threads;
/// the selected design is identical at any worker count.
///
/// # Errors
///
/// Returns [`SearchError`] for unknown tiers, or for evaluation failures
/// in strict mode.
pub fn search_tier(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    load: f64,
    max_downtime: Duration,
    options: &SearchOptions,
) -> Result<SearchOutcome, SearchError> {
    let started = Instant::now();
    let tier = ctx.tier(tier_name)?;
    let deadline = options.deadline_from(started);
    let budget = options.eval_budget(deadline);
    let jobs = effective_jobs(options.jobs);
    let mut stats = SearchStats::default();
    let mut health = SearchHealth {
        jobs,
        ..SearchHealth::default()
    };
    let mut best: Option<EvaluatedDesign> = None;
    // The cheapest feasible cost any worker has proven, across the whole
    // search; mirrors `best.cost()` but is shared lock-free with workers.
    let best_cost = BestCost::new();
    // One warm-start session per worker, reused across every level batch of
    // every option: chain shapes recur between levels (same n/m/s splits
    // with different rates), so the sessions keep paying off search-wide.
    let mut sessions = worker_sessions(jobs, &budget);

    'options: for option in tier.options() {
        let perf = ctx.catalog().resolve_perf(option.performance())?;
        let Some(min_perf) = perf.min_active_for(load) else {
            continue; // this option can never meet the load
        };
        let Some(start_active) = option.n_active().next_at_or_above(min_perf.max(1)) else {
            continue;
        };
        let max_total = start_active + options.max_extra_active + options.max_spares;

        let mut best_quality_prev: Option<Duration> = None;
        let mut degrading = 0_usize;
        for n_total in start_active..=max_total {
            let enumerating = Instant::now();
            let candidates = enumerate_tier_candidates(
                ctx.infrastructure(),
                tier.name(),
                option,
                n_total,
                start_active,
                options,
            );
            if candidates.is_empty() {
                health.enumeration_time += enumerating.elapsed();
                continue;
            }
            stats.totals_explored += 1;

            // Cost is cheap: compute it for every candidate up front. The
            // batch stays in enumeration (parameter-locality) order — the
            // win rule below compares cost explicitly, so a cost sort would
            // only destroy the locality the warm-start sessions feed on.
            let costed: Vec<(aved_units::Money, &aved_model::TierDesign)> = candidates
                .iter()
                .map(|td| {
                    stats.cost_evaluations += 1;
                    aved_model::tier_design_cost(ctx.infrastructure(), td).map(|c| (c.total(), td))
                })
                .collect::<Result<_, _>>()?;
            health.enumeration_time += enumerating.elapsed();

            // Termination: every candidate at this count (and, since cost
            // grows with the count, at later counts) costs more than the
            // incumbent.
            if let Some(b) = &best {
                let cheapest = costed.iter().map(|(c, _)| *c).min_by(|a, b| a.total_cmp(b));
                if cheapest.is_some_and(|c| c > b.cost()) {
                    break;
                }
            }

            // Fan the level out in contiguous shards: workers prune against
            // the shared cell (strictly more expensive candidates cannot
            // win; equal cost still competes on downtime), evaluate the
            // rest through their warm session, and publish feasible costs
            // so other workers prune harder.
            let solving = Instant::now();
            let abort = AtomicBool::new(false);
            let outcomes =
                parallel_map_with(jobs, &mut sessions, &costed, |session, _, &(cost, td)| {
                    if abort.load(Ordering::Relaxed) {
                        return CandidateOutcome::Aborted;
                    }
                    if options.stop_requested(deadline) {
                        return CandidateOutcome::Interrupted;
                    }
                    if options.prune && best_cost.beats(cost) {
                        return CandidateOutcome::Pruned;
                    }
                    if let Some(replay) = &options.resume {
                        if let Some(entry) = replay.lookup(&enterprise_key(tier_name, load, td)) {
                            let result = entry.clone().into_result(td);
                            let ok = |e: &EvaluatedDesign| e.annual_downtime() <= max_downtime;
                            classify_result(&result, ok, options, &best_cost, &abort);
                            return CandidateOutcome::Replayed(result);
                        }
                    }
                    let mut cold = EvalSession::new().with_budget(budget.clone());
                    let session = if options.warm_start {
                        session
                    } else {
                        &mut cold
                    };
                    let result = evaluate_enterprise_design_in(ctx, option, td, load, session);
                    let ok = |e: &EvaluatedDesign| e.annual_downtime() <= max_downtime;
                    classify_result(&result, ok, options, &best_cost, &abort);
                    CandidateOutcome::Evaluated(result)
                });
            health.solve_time += solving.elapsed();

            // Deterministic merge: every decision happens here, folding
            // outcomes in candidate (enumeration) order.
            let merging = Instant::now();
            let mut best_quality_here: Option<Duration> = None;
            for ((_, td), outcome) in costed.iter().zip(outcomes) {
                let (result, replayed) = match outcome {
                    CandidateOutcome::Aborted | CandidateOutcome::Interrupted => continue,
                    CandidateOutcome::Pruned => {
                        stats.pruned_by_cost += 1;
                        health.candidates_pruned += 1;
                        continue;
                    }
                    CandidateOutcome::Replayed(result) => (result, true),
                    CandidateOutcome::Evaluated(result) => (result, false),
                };
                // A cancellation is not a candidate outcome: the post-batch
                // check below turns it into a clean interruption, and it is
                // never journaled (re-evaluate it on resume).
                if matches!(&result, Err(e) if e.is_cancellation()) {
                    continue;
                }
                if replayed {
                    health.journal_replayed += 1;
                }
                if matches!(&result, Err(e) if e.is_budget_exhaustion()) {
                    health.budget_exhausted += 1;
                }
                if let Some(journal) = &options.journal {
                    journal.record(&enterprise_key(tier_name, load, td), &result);
                }
                let Some(evaluated) = isolate_candidate(result, options.strict, &mut health, td)?
                else {
                    continue;
                };
                stats.quality_evaluations += 1;
                let downtime = evaluated.annual_downtime();
                if best_quality_here.is_none_or(|q| downtime < q) {
                    best_quality_here = Some(downtime);
                }
                let wins = downtime <= max_downtime
                    && best.as_ref().is_none_or(|b| {
                        evaluated.cost() < b.cost()
                            || (evaluated.cost() == b.cost() && downtime < b.annual_downtime())
                    });
                if wins {
                    best = Some(evaluated);
                }
            }

            // Interruption stops the whole search at this batch boundary
            // with its best-so-far result; partial batch data must not feed
            // the degradation heuristic below.
            if options.stop_requested(deadline) {
                health.merge_time += merging.elapsed();
                health.interrupted = true;
                break 'options;
            }

            // Infeasibility detection: adding resources no longer improves
            // the best achievable downtime. (Pruning cannot distort this:
            // while `best` is none nothing feasible has been offered, so
            // nothing has been pruned and the quality fold is exhaustive.)
            if best.is_none() {
                match (best_quality_prev, best_quality_here) {
                    (Some(prev), Some(here)) if here >= prev => degrading += 1,
                    (_, Some(_)) => degrading = 0,
                    _ => {}
                }
                if degrading >= DEGRADE_PATIENCE {
                    health.merge_time += merging.elapsed();
                    break;
                }
            }
            if let Some(q) = best_quality_here {
                best_quality_prev = Some(q);
            }
            health.merge_time += merging.elapsed();
        }
    }

    for session in &sessions {
        health.absorb_session(session.stats());
    }
    health.wall_time = started.elapsed();
    Ok(match best {
        Some(best) => SearchOutcome::Found {
            best,
            stats,
            health,
        },
        None => SearchOutcome::Infeasible { stats, health },
    })
}

/// Searches a finite-job tier for the minimum-cost design whose expected
/// completion time meets `max_execution_time`. Same structure as
/// [`search_tier`] with completion time as the quality metric; the count
/// starts at the smallest node count whose failure-free time meets the
/// requirement (no point below it) and grows from there.
///
/// # Errors
///
/// Returns [`SearchError`] for unknown tiers, services without a job size,
/// or evaluation failures.
pub fn search_job_tier(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    max_execution_time: Duration,
    options: &SearchOptions,
) -> Result<SearchOutcome, SearchError> {
    let started = Instant::now();
    let tier = ctx.tier(tier_name)?;
    let job_size = ctx
        .service()
        .job_size()
        .ok_or_else(|| SearchError::RequirementMismatch {
            detail: "service declares no jobsize".into(),
        })?;
    let deadline = options.deadline_from(started);
    let budget = options.eval_budget(deadline);
    let jobs = effective_jobs(options.jobs);
    let mut stats = SearchStats::default();
    let mut health = SearchHealth {
        jobs,
        ..SearchHealth::default()
    };
    let mut best: Option<EvaluatedDesign> = None;
    let best_cost = BestCost::new();
    let mut sessions = worker_sessions(jobs, &budget);

    'options: for option in tier.options() {
        let perf = ctx.catalog().resolve_perf(option.performance())?;
        // Failure-free lower bound on throughput demand: finishing a job of
        // `job_size` within T requires throughput >= job_size / T.
        let needed_throughput = job_size / max_execution_time.hours();
        let Some(min_nodes) = perf.min_active_for(needed_throughput) else {
            continue;
        };
        let Some(start_active) = option.n_active().next_at_or_above(min_nodes.max(1)) else {
            continue;
        };
        // Unlike the enterprise search, job designs often need resources
        // well beyond the failure-free minimum: checkpoint overhead and
        // re-execution inflate the wall-clock time, and only more (or
        // faster) nodes claw it back. Growth is therefore bounded only by
        // the option's own nActive ceiling (plus spares); the cost and
        // degradation rules below terminate the scan long before that in
        // practice.
        let max_total = option
            .n_active()
            .max_value()
            .unwrap_or(start_active)
            .saturating_add(options.max_spares);

        let mut best_quality_prev: Option<Duration> = None;
        let mut degrading = 0_usize;
        for n_total in start_active..=max_total {
            let enumerating = Instant::now();
            let candidates = enumerate_tier_candidates(
                ctx.infrastructure(),
                tier.name(),
                option,
                n_total,
                start_active,
                options,
            );
            if candidates.is_empty() {
                health.enumeration_time += enumerating.elapsed();
                continue;
            }
            stats.totals_explored += 1;
            // Enumeration (locality) order, as in `search_tier`.
            let costed: Vec<(aved_units::Money, &aved_model::TierDesign)> = candidates
                .iter()
                .map(|td| {
                    stats.cost_evaluations += 1;
                    aved_model::tier_design_cost(ctx.infrastructure(), td).map(|c| (c.total(), td))
                })
                .collect::<Result<_, _>>()?;
            health.enumeration_time += enumerating.elapsed();

            if let Some(b) = &best {
                let cheapest = costed.iter().map(|(c, _)| *c).min_by(|a, b| a.total_cmp(b));
                if cheapest.is_some_and(|c| c > b.cost()) {
                    break;
                }
            }

            // Equal-cost candidates still compete on completion time:
            // checkpoint settings are free, and Fig. 7 reports the
            // quality-optimal interval within the winning configuration —
            // which is why the cell prunes only *strictly* more expensive
            // candidates.
            let solving = Instant::now();
            let abort = AtomicBool::new(false);
            let outcomes =
                parallel_map_with(jobs, &mut sessions, &costed, |session, _, &(cost, td)| {
                    if abort.load(Ordering::Relaxed) {
                        return CandidateOutcome::Aborted;
                    }
                    if options.stop_requested(deadline) {
                        return CandidateOutcome::Interrupted;
                    }
                    if options.prune && best_cost.beats(cost) {
                        return CandidateOutcome::Pruned;
                    }
                    let ok = |e: &EvaluatedDesign| {
                        e.expected_job_time()
                            .is_some_and(|t| t <= max_execution_time)
                    };
                    if let Some(replay) = &options.resume {
                        if let Some(entry) = replay.lookup(&job_key(tier_name, td)) {
                            let result = entry.clone().into_result(td);
                            classify_result(&result, ok, options, &best_cost, &abort);
                            return CandidateOutcome::Replayed(result);
                        }
                    }
                    let mut cold = EvalSession::new().with_budget(budget.clone());
                    let session = if options.warm_start {
                        session
                    } else {
                        &mut cold
                    };
                    let result = evaluate_job_design_in(ctx, option, td, session);
                    classify_result(&result, ok, options, &best_cost, &abort);
                    CandidateOutcome::Evaluated(result)
                });
            health.solve_time += solving.elapsed();

            let merging = Instant::now();
            let mut best_quality_here: Option<Duration> = None;
            for ((_, td), outcome) in costed.iter().zip(outcomes) {
                let (result, replayed) = match outcome {
                    CandidateOutcome::Aborted | CandidateOutcome::Interrupted => continue,
                    CandidateOutcome::Pruned => {
                        stats.pruned_by_cost += 1;
                        health.candidates_pruned += 1;
                        continue;
                    }
                    CandidateOutcome::Replayed(result) => (result, true),
                    CandidateOutcome::Evaluated(result) => (result, false),
                };
                if matches!(&result, Err(e) if e.is_cancellation()) {
                    continue;
                }
                if replayed {
                    health.journal_replayed += 1;
                }
                if matches!(&result, Err(e) if e.is_budget_exhaustion()) {
                    health.budget_exhausted += 1;
                }
                if let Some(journal) = &options.journal {
                    journal.record(&job_key(tier_name, td), &result);
                }
                let Some(evaluated) = isolate_candidate(result, options.strict, &mut health, td)?
                else {
                    continue;
                };
                stats.quality_evaluations += 1;
                let Some(time) = evaluated.expected_job_time() else {
                    return Err(SearchError::RequirementMismatch {
                        detail: "job evaluation yielded no completion time".into(),
                    });
                };
                if best_quality_here.is_none_or(|q| time < q) {
                    best_quality_here = Some(time);
                }
                let wins = time <= max_execution_time
                    && best.as_ref().is_none_or(|b| {
                        evaluated.cost() < b.cost()
                            || (evaluated.cost() == b.cost()
                                && b.expected_job_time().is_none_or(|bt| time < bt))
                    });
                if wins {
                    best = Some(evaluated);
                }
            }

            if options.stop_requested(deadline) {
                health.merge_time += merging.elapsed();
                health.interrupted = true;
                break 'options;
            }

            if best.is_none() {
                // Degradation includes "no meaningful progress": near a
                // performance asymptote the completion time improves by
                // vanishing amounts per added node while cost keeps
                // climbing, so sub-0.1% steps also count down the patience.
                match (best_quality_prev, best_quality_here) {
                    (Some(prev), Some(here)) if here >= prev * 0.999 => degrading += 1,
                    (_, Some(_)) => degrading = 0,
                    _ => {}
                }
                if degrading >= DEGRADE_PATIENCE {
                    health.merge_time += merging.elapsed();
                    break;
                }
            }
            if let Some(q) = best_quality_here {
                best_quality_prev = Some(q);
            }
            health.merge_time += merging.elapsed();
        }
    }

    for session in &sessions {
        health.absorb_session(session.stats());
    }
    health.wall_time = started.elapsed();
    Ok(match best {
        Some(best) => SearchOutcome::Found {
            best,
            stats,
            health,
        },
        None => SearchOutcome::Infeasible { stats, health },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{app_tier_fixture, job_fixture};
    use crate::{evaluate_enterprise_design, CachingEngine};
    use aved_avail::DecompositionEngine;
    use aved_model::ParamValue;
    use aved_units::Duration;

    fn opts() -> SearchOptions {
        SearchOptions {
            max_extra_active: 3,
            max_spares: 2,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn loose_requirement_picks_cheapest_family() {
        // Huge downtime budget: the minimum design (bronze, no redundancy,
        // machineA-based) must win — the paper's family 1.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &opts(),
        )
        .unwrap();
        let best = out.best().expect("feasible");
        assert_eq!(best.design().resource().as_str(), "rC");
        assert_eq!(best.design().n_active(), 2);
        assert_eq!(best.design().n_spare(), 0);
        assert_eq!(
            best.design().setting("maintenanceA", "level"),
            Some(&ParamValue::Level("bronze".into()))
        );
    }

    #[test]
    fn tight_requirement_buys_redundancy_or_contract() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let loose = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &opts(),
        )
        .unwrap();
        let tight = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(50.0),
            &opts(),
        )
        .unwrap();
        let (loose, tight) = (loose.best().unwrap(), tight.best().unwrap());
        assert!(tight.cost() > loose.cost());
        assert!(tight.annual_downtime() <= Duration::from_mins(50.0));
        // It buys either an upgraded contract, extra actives or a spare.
        let upgraded = tight.design().setting("maintenanceA", "level")
            != Some(&ParamValue::Level("bronze".into()));
        let redundant = tight.design().n_total() > loose.design().n_total();
        assert!(upgraded || redundant);
    }

    #[test]
    fn impossible_requirement_is_infeasible() {
        // With redundancy forbidden, every design keeps thousands of
        // minutes of annual downtime; a 0.001-minute budget is unreachable.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let no_redundancy = SearchOptions {
            max_extra_active: 0,
            max_spares: 0,
            ..SearchOptions::default()
        };
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(0.001),
            &no_redundancy,
        )
        .unwrap();
        assert!(out.best().is_none());
        assert!(out.stats().quality_evaluations > 0);
    }

    #[test]
    fn infeasible_load_is_detected() {
        // The database tier's constant performance function caps at 10000.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let out = search_tier(
            &ctx,
            "database",
            20_000.0,
            Duration::from_mins(10_000.0),
            &opts(),
        )
        .unwrap();
        assert!(out.best().is_none());
        assert_eq!(out.stats().quality_evaluations, 0);
    }

    #[test]
    fn pruning_kicks_in_after_first_feasible() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let out = search_tier(
            &ctx,
            "application",
            800.0,
            Duration::from_mins(500.0),
            &opts(),
        )
        .unwrap();
        assert!(out.best().is_some());
        assert!(out.stats().pruned_by_cost > 0, "stats: {:?}", out.stats());
    }

    #[test]
    fn pruned_search_matches_exhaustive_optimum() {
        // Validation of the cost-first pruning: evaluate everything the
        // search space contains and compare optima.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let o = opts();
        let load = 1000.0;
        let budget = Duration::from_mins(100.0);
        let fast = search_tier(&ctx, "application", load, budget, &o).unwrap();

        let tier = ctx.tier("application").unwrap();
        let mut exhaustive_best: Option<crate::EvaluatedDesign> = None;
        for option in tier.options() {
            let perf = ctx.catalog().resolve_perf(option.performance()).unwrap();
            let Some(min_perf) = perf.min_active_for(load) else {
                continue;
            };
            for n_total in min_perf..=min_perf + o.max_extra_active + o.max_spares {
                for td in enumerate_tier_candidates(
                    ctx.infrastructure(),
                    tier.name(),
                    option,
                    n_total,
                    min_perf,
                    &o,
                ) {
                    if let Some(e) = evaluate_enterprise_design(&ctx, option, &td, load).unwrap() {
                        if e.annual_downtime() <= budget
                            && exhaustive_best.as_ref().is_none_or(|b| e.cost() < b.cost())
                        {
                            exhaustive_best = Some(e);
                        }
                    }
                }
            }
        }
        let fast_best = fast.best().unwrap();
        let exhaustive_best = exhaustive_best.unwrap();
        assert_eq!(fast_best.cost(), exhaustive_best.cost());
        assert_eq!(fast_best.design(), exhaustive_best.design());
    }

    #[test]
    fn job_search_finds_feasible_design() {
        let fx = job_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let o = SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
        .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
        .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));
        let out = search_job_tier(&ctx, "computation", Duration::from_hours(200.0), &o).unwrap();
        let best = out.best().expect("feasible");
        let t = best.expected_job_time().unwrap();
        assert!(t <= Duration::from_hours(200.0));
        // Loose requirement: the cheap machineA-based resource wins.
        assert_eq!(best.design().resource().as_str(), "rH");
        assert!(engine.hits() > 0, "availability cache should be exercised");
    }

    #[test]
    fn job_search_tightening_requirement_raises_cost() {
        let fx = job_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let o = SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
        .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
        .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));
        let loose = search_job_tier(&ctx, "computation", Duration::from_hours(500.0), &o).unwrap();
        let tight = search_job_tier(&ctx, "computation", Duration::from_hours(50.0), &o).unwrap();
        let (loose, tight) = (loose.best().unwrap(), tight.best().unwrap());
        assert!(tight.cost() > loose.cost());
        assert!(tight.design().n_active() > loose.design().n_active());
    }

    #[test]
    fn injected_engine_failure_is_isolated_to_one_candidate() {
        // Call 0 evaluates the cheapest candidate at the minimum count,
        // which cannot meet a 50-minute budget — so killing it must not
        // change the winner, only show up in the health report.
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let clean_ctx = fx.context(&inner);
        let baseline = search_tier(
            &clean_ctx,
            "application",
            400.0,
            Duration::from_mins(50.0),
            &opts(),
        )
        .unwrap();

        let faulty = aved_avail::FaultInjectingEngine::new(&inner)
            .with_fault_at(0, aved_avail::InjectedFault::NonConvergence);
        let ctx = fx.context(&faulty);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(50.0),
            &opts(),
        )
        .unwrap();

        let (baseline, best) = (baseline.best().unwrap(), out.best().expect("still found"));
        assert_eq!(best.cost(), baseline.cost());
        assert_eq!(best.design(), baseline.design());
        assert_eq!(out.health().candidates_skipped(), 1);
        assert!(out.health().is_degraded());
        let skip = &out.health().skipped[0];
        assert_eq!(skip.tier, "application");
        assert!(skip.error.contains("availability error"), "{}", skip.error);
        assert_eq!(faulty.injected(), 1);
    }

    #[test]
    fn injected_nan_result_is_skipped_not_compared() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let faulty = aved_avail::FaultInjectingEngine::new(&inner)
            .with_fault_at(0, aved_avail::InjectedFault::NanResult);
        let ctx = fx.context(&faulty);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(50.0),
            &opts(),
        )
        .unwrap();
        assert!(out.best().is_some());
        assert_eq!(out.health().candidates_skipped(), 1);
        assert!(
            out.health().skipped[0].error.contains("non-finite"),
            "{}",
            out.health().skipped[0].error
        );
    }

    #[test]
    fn strict_mode_fails_fast_on_injected_failure() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let faulty = aved_avail::FaultInjectingEngine::new(&inner)
            .with_fault_at(0, aved_avail::InjectedFault::NonConvergence);
        let ctx = fx.context(&faulty);
        let strict = opts().with_strict();
        let err = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(50.0),
            &strict,
        )
        .unwrap_err();
        assert!(matches!(err, SearchError::Avail(_)), "{err}");
        assert_eq!(faulty.calls(), 1, "no candidate after the failing one");
    }

    #[test]
    fn pruning_toggle_never_changes_the_winner() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let load = 800.0;
        let budget = Duration::from_mins(500.0);
        let pruned = search_tier(&ctx, "application", load, budget, &opts()).unwrap();
        let exhaustive =
            search_tier(&ctx, "application", load, budget, &opts().without_pruning()).unwrap();
        let (p, e) = (pruned.best().unwrap(), exhaustive.best().unwrap());
        assert_eq!(p.cost(), e.cost());
        assert_eq!(p.design(), e.design());
        assert_eq!(p.annual_downtime(), e.annual_downtime());
        assert!(pruned.stats().pruned_by_cost > 0);
        assert_eq!(
            pruned.health().candidates_pruned,
            u64::try_from(pruned.stats().pruned_by_cost).unwrap(),
            "health mirrors the stats counter"
        );
        assert_eq!(exhaustive.stats().pruned_by_cost, 0);
        assert_eq!(exhaustive.health().candidates_pruned, 0);
        assert!(
            exhaustive.stats().quality_evaluations > pruned.stats().quality_evaluations,
            "pruning must actually save evaluations"
        );
    }

    #[test]
    fn parallel_search_matches_serial_winner() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let serial = search_tier(
            &ctx,
            "application",
            800.0,
            Duration::from_mins(500.0),
            &opts(),
        )
        .unwrap();
        for jobs in [2, 8] {
            let parallel = search_tier(
                &ctx,
                "application",
                800.0,
                Duration::from_mins(500.0),
                &opts().with_jobs(jobs),
            )
            .unwrap();
            let (s, p) = (serial.best().unwrap(), parallel.best().unwrap());
            assert_eq!(s.cost(), p.cost(), "jobs={jobs}");
            assert_eq!(s.design(), p.design(), "jobs={jobs}");
            assert_eq!(s.annual_downtime(), p.annual_downtime(), "jobs={jobs}");
            assert_eq!(parallel.health().jobs, effective_jobs(jobs));
        }
    }

    #[test]
    fn warm_start_toggle_never_changes_the_winner() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let load = 800.0;
        let budget = Duration::from_mins(500.0);
        let warm = search_tier(&ctx, "application", load, budget, &opts()).unwrap();
        let cold = search_tier(
            &ctx,
            "application",
            load,
            budget,
            &opts().without_warm_start(),
        )
        .unwrap();
        let (w, c) = (warm.best().unwrap(), cold.best().unwrap());
        assert_eq!(w.cost(), c.cost());
        assert_eq!(w.design(), c.design());
        assert_eq!(
            w.annual_downtime().minutes().to_bits(),
            c.annual_downtime().minutes().to_bits(),
            "warm starts must be bit-identical, not just close"
        );
        assert!(warm.health().warm_solves > 0, "{}", warm.health());
        assert!(
            warm.health().chain_rebuilds_avoided > 0,
            "locality order must make chains recur: {}",
            warm.health()
        );
        assert_eq!(
            cold.health().warm_solves,
            0,
            "disabled warm starts leave the worker sessions untouched"
        );
    }

    #[test]
    fn search_reports_phase_times_and_jobs() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &opts(),
        )
        .unwrap();
        let h = out.health();
        assert_eq!(h.jobs, 1, "library default is serial");
        assert!(h.solve_time > std::time::Duration::ZERO);
        assert!(h.solve_time <= h.wall_time);
        assert!(h.enumeration_time + h.solve_time + h.merge_time <= h.wall_time);
    }

    #[test]
    fn clean_search_reports_clean_health() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &opts(),
        )
        .unwrap();
        assert!(!out.health().is_degraded());
        assert_eq!(out.health().fallbacks_taken, 0);
        assert!(out.health().wall_time > std::time::Duration::ZERO);
    }

    #[test]
    fn unknown_tier_is_an_error() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        assert!(matches!(
            search_tier(&ctx, "ghost", 1.0, Duration::from_mins(1.0), &opts()),
            Err(SearchError::UnknownTier { .. })
        ));
    }

    #[test]
    fn state_cap_exhausts_every_candidate_but_terminates_cleanly() {
        // A 1-state cap makes every chain exploration blow its budget: the
        // sweep must terminate with every candidate skipped and the
        // diagnostics naming the exhausted resource — never hang or panic.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let o = opts().with_max_states(1);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &o,
        )
        .unwrap();
        assert!(out.best().is_none(), "nothing can evaluate under 1 state");
        let h = out.health();
        assert!(h.budget_exhausted > 0, "{h}");
        assert_eq!(
            h.budget_exhausted,
            u64::try_from(h.candidates_skipped()).unwrap(),
            "every skip here is a budget exhaustion"
        );
        assert!(
            h.skipped[0].error.contains("explored-states"),
            "diagnostic must name the resource: {}",
            h.skipped[0].error
        );
        assert!(!h.interrupted, "exhaustion is per-candidate, not a stop");
    }

    #[test]
    fn state_cap_escalates_under_strict() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let o = opts().with_max_states(1).with_strict();
        let err = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &o,
        )
        .unwrap_err();
        assert!(err.is_budget_exhaustion(), "{err}");
        assert!(err.to_string().contains("explored-states"), "{err}");
    }

    #[test]
    fn expired_deadline_stops_with_best_so_far() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let o = opts().with_search_deadline(std::time::Duration::ZERO);
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &o,
        )
        .unwrap();
        assert!(out.best().is_none(), "no candidate ran before the deadline");
        assert_eq!(out.stats().quality_evaluations, 0);
        assert!(out.health().interrupted);
        assert!(out.health().is_degraded());
    }

    #[test]
    fn cancelled_token_stops_both_search_kinds_cleanly() {
        let token = aved_avail::CancelToken::new();
        token.cancel();

        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let o = opts().with_cancel(token.clone());
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &o,
        )
        .unwrap();
        assert!(out.best().is_none());
        assert!(out.health().interrupted);
        assert!(
            out.health().skipped.is_empty(),
            "cancellation is not a candidate failure"
        );

        // Strict mode must also stop cleanly, not error out.
        let strict = o.clone().with_strict();
        let out = search_tier(
            &ctx,
            "application",
            400.0,
            Duration::from_mins(10_000.0),
            &strict,
        )
        .unwrap();
        assert!(out.health().interrupted);

        let jfx = job_fixture();
        let jctx = jfx.context(&engine);
        let jo = SearchOptions::default().with_cancel(token);
        let out = search_job_tier(&jctx, "computation", Duration::from_hours(200.0), &jo).unwrap();
        assert!(out.best().is_none());
        assert!(out.health().interrupted);
    }

    #[test]
    fn journaled_search_resumes_to_the_same_winner() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let load = 800.0;
        let budget = Duration::from_mins(500.0);

        let baseline = search_tier(&ctx, "application", load, budget, &opts()).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!(
            "aved-tier-search-resume-{}.jsonl",
            std::process::id()
        ));
        let journal = std::sync::Arc::new(crate::SweepJournal::create(&path).unwrap());
        let journaled = search_tier(
            &ctx,
            "application",
            load,
            budget,
            &opts().with_journal(journal.clone()),
        )
        .unwrap();
        journal.flush().unwrap();
        drop(journal);

        let replay = std::sync::Arc::new(crate::JournalReplay::load(&path).unwrap());
        assert!(!replay.is_empty());
        let resumed = search_tier(
            &ctx,
            "application",
            load,
            budget,
            &opts().with_resume(replay),
        )
        .unwrap();
        std::fs::remove_file(&path).ok();

        let (b, j, r) = (
            baseline.best().unwrap(),
            journaled.best().unwrap(),
            resumed.best().unwrap(),
        );
        assert_eq!(
            b.design(),
            j.design(),
            "journaling must not change the winner"
        );
        assert_eq!(b.design(), r.design(), "resume must reproduce the winner");
        assert_eq!(b.cost().dollars().to_bits(), r.cost().dollars().to_bits());
        assert_eq!(
            b.annual_downtime().minutes().to_bits(),
            r.annual_downtime().minutes().to_bits(),
            "replayed metrics must be bit-identical, not just close"
        );
        assert!(
            resumed.health().journal_replayed > 0,
            "{}",
            resumed.health()
        );
    }
}
