//! The evaluation context bundling models, catalog and engine.

use aved_avail::AvailabilityEngine;
use aved_model::{Infrastructure, Service, Tier};
use aved_perf::Catalog;

use crate::SearchError;

/// Everything a design evaluation needs: the infrastructure model, the
/// service model, the performance catalog, and the availability engine.
///
/// The engine is held as a trait object, mirroring the paper's pluggable
/// availability-evaluation back ends.
pub struct EvalContext<'a> {
    infrastructure: &'a Infrastructure,
    service: &'a Service,
    catalog: &'a Catalog,
    engine: &'a dyn AvailabilityEngine,
}

impl<'a> EvalContext<'a> {
    /// Creates a context.
    #[must_use]
    pub fn new(
        infrastructure: &'a Infrastructure,
        service: &'a Service,
        catalog: &'a Catalog,
        engine: &'a dyn AvailabilityEngine,
    ) -> EvalContext<'a> {
        EvalContext {
            infrastructure,
            service,
            catalog,
            engine,
        }
    }

    /// The infrastructure model.
    #[must_use]
    pub fn infrastructure(&self) -> &'a Infrastructure {
        self.infrastructure
    }

    /// The service model.
    #[must_use]
    pub fn service(&self) -> &'a Service {
        self.service
    }

    /// The performance catalog.
    #[must_use]
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// The availability engine.
    #[must_use]
    pub fn engine(&self) -> &'a dyn AvailabilityEngine {
        self.engine
    }

    /// Looks up a tier by name.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::UnknownTier`] when absent.
    pub fn tier(&self, name: &str) -> Result<&'a Tier, SearchError> {
        self.service
            .tier(name)
            .ok_or_else(|| SearchError::UnknownTier { tier: name.into() })
    }
}

impl std::fmt::Debug for EvalContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("service", &self.service.name())
            .field("n_tiers", &self.service.tiers().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_avail::CtmcEngine;

    #[test]
    fn construction_and_lookup() {
        let infra = Infrastructure::new();
        let svc = Service::new("svc").with_tier(Tier::new("web"));
        let catalog = Catalog::new();
        let engine = CtmcEngine::default();
        let ctx = EvalContext::new(&infra, &svc, &catalog, &engine);
        assert!(ctx.tier("web").is_ok());
        assert!(matches!(
            ctx.tier("ghost"),
            Err(SearchError::UnknownTier { .. })
        ));
        assert!(format!("{ctx:?}").contains("svc"));
    }
}
