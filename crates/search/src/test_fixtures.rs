//! Shared test fixtures: the paper's example models, parsed from the
//! repository's `data/` specification files.

use aved_avail::AvailabilityEngine;
use aved_model::{Infrastructure, Service};
use aved_perf::Catalog;

use crate::EvalContext;

/// A bundle of models sufficient to build an [`EvalContext`].
pub struct Fixture {
    pub infrastructure: Infrastructure,
    pub service: Service,
    pub catalog: Catalog,
}

impl Fixture {
    /// Builds a context borrowing this fixture and the given engine.
    pub fn context<'a>(&'a self, engine: &'a dyn AvailabilityEngine) -> EvalContext<'a> {
        EvalContext::new(&self.infrastructure, &self.service, &self.catalog, engine)
    }
}

fn infrastructure() -> Infrastructure {
    aved_spec::parse_infrastructure(include_str!("../../../data/infrastructure.aved"))
        .expect("bundled infrastructure spec parses")
}

/// The paper's e-commerce service (Fig. 4) on the Fig. 3 infrastructure.
pub fn app_tier_fixture() -> Fixture {
    Fixture {
        infrastructure: infrastructure(),
        service: aved_spec::parse_service(include_str!("../../../data/ecommerce.aved"))
            .expect("bundled e-commerce spec parses"),
        catalog: aved_perf::paper::catalog(),
    }
}

/// The paper's scientific application (Fig. 5) on the Fig. 3
/// infrastructure.
pub fn job_fixture() -> Fixture {
    Fixture {
        infrastructure: infrastructure(),
        service: aved_spec::parse_service(include_str!("../../../data/scientific.aved"))
            .expect("bundled scientific spec parses"),
        catalog: aved_perf::paper::catalog(),
    }
}
