//! The scoped-thread executor behind the parallel search.
//!
//! The design space factors into independent candidate evaluations, so the
//! search is embarrassingly parallel — the only care is keeping the result
//! *bit-identical* to the serial walk. The contract here:
//!
//! * [`parallel_map`] evaluates a slice of work items on up to `jobs`
//!   workers (plain `std::thread::scope`, no external runtime). Workers
//!   pull item indices from a shared atomic counter — a degenerate but
//!   effective form of work stealing that keeps all workers busy even when
//!   per-item cost varies by orders of magnitude — and the results are
//!   merged back **in item order**, so callers fold them exactly as the
//!   serial loop would have.
//! * [`parallel_map_with`] additionally hands each worker one mutable
//!   state for its whole run and shards the items into **contiguous
//!   chunks** instead of stealing, so a worker's shard is a consecutive
//!   run of the (parameter-locality-ordered) candidate list — the
//!   substrate for warm-started evaluation sessions.
//! * With `jobs <= 1` the map degenerates to an in-order sequential loop on
//!   the calling thread: the serial path is literally the parallel path at
//!   width 1, not a separate implementation that could drift.
//! * [`BestCost`] is the shared dominance-pruning cell: the cheapest
//!   *feasible* cost any worker has proven, stored as ordered `f64` bits in
//!   an `AtomicU64` so workers can skip solving candidates that already
//!   cost more. Pruning with it never changes the winner — only candidates
//!   strictly more expensive than a known-feasible design are skipped, and
//!   such candidates can never win a minimum-cost search.
//!
//! Determinism argument, in one paragraph: every decision the search makes
//! (winner selection, tie-breaking, level termination, degradation
//! patience) happens in the *fold* over results ordered by candidate index
//! — identical to the serial order. Worker scheduling only affects *which*
//! over-budget candidates get pruned versus evaluated, and those candidates
//! are decision-irrelevant by the dominance argument above. Engine
//! evaluations themselves are pure functions of the model, so a result is
//! the same no matter which thread computes it.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use aved_units::Money;

/// Resolves a requested worker count: `0` means "use the machine's
/// available parallelism" (the `--jobs` CLI default); any other request is
/// clamped to the machine's available parallelism. Oversubscribing compute-
/// bound solver workers onto fewer cores only adds context-switch and
/// cache-thrash overhead — on a 1-CPU box, `--jobs 8` used to run ~20%
/// *slower* than serial; now it degenerates to the inline serial path.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if requested > 0 {
        requested.min(cpus)
    } else {
        cpus
    }
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning results
/// in item order.
///
/// `f` receives `(index, &item)` and must be pure up to interior-mutable
/// shared state it synchronizes itself (the engine cache, [`BestCost`]).
/// With `jobs <= 1` or a single item, `f` runs sequentially in order on the
/// calling thread.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    // Deterministic merge: scatter back into item order.
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index is claimed exactly once"))
        .collect()
}

/// Like [`parallel_map`], but each worker additionally borrows one mutable
/// state from `states` for its whole run — the hook that threads
/// warm-start evaluation sessions through the search workers.
///
/// Work is split into **contiguous chunks** (worker `w` gets items
/// `[w·⌈n/k⌉, (w+1)·⌈n/k⌉)`), not stolen item-by-item: the candidate lists
/// the search produces are in parameter-locality order (neighboring items
/// differ in one knob), and a worker whose shard is a consecutive run of
/// that order sees a chain of near-identical models — exactly what its
/// session's warm starts and in-place rebuilds exploit. The price is load
/// balance on skewed items; candidate evaluations within one batch are
/// near-uniform, so locality wins.
///
/// Results come back in item order, so callers fold them exactly as the
/// serial loop would. With `jobs <= 1` or a single item the map runs
/// sequentially on the calling thread using `states[0]`, preserving the
/// serial-is-parallel-at-width-1 property. Unused states (when there are
/// fewer chunks than states) are simply not touched.
///
/// # Panics
///
/// Panics if `states` has fewer than `min(jobs, items.len()).max(1)`
/// entries, and propagates panics from worker threads.
pub fn parallel_map_with<T, R, S, F>(jobs: usize, states: &mut [S], items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        assert!(
            !states.is_empty(),
            "parallel_map_with needs at least one worker state"
        );
        let state = &mut states[0];
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(state, i, t))
            .collect();
    }
    assert!(
        states.len() >= workers,
        "parallel_map_with needs one state per worker ({} < {workers})",
        states.len()
    );
    let chunk = items.len().div_ceil(workers);
    // Workers move their `&mut S` in but only borrow `f` (a `&F` is `Send`
    // because `F: Sync`).
    let f = &f;
    let mut per_worker: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states[..workers]
            .iter_mut()
            .enumerate()
            .map(|(w, state)| {
                let start = w * chunk;
                let end = (start + chunk).min(items.len());
                scope.spawn(move || {
                    items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(state, start + off, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    // Chunks are contiguous and in worker order, so concatenation *is*
    // item order.
    let mut out = Vec::with_capacity(items.len());
    for part in &mut per_worker {
        out.append(part);
    }
    out
}

/// The cheapest known-feasible cost, shared across search workers for
/// dominance pruning.
///
/// Costs are non-negative finite `f64`s, for which the IEEE-754 bit
/// pattern orders identically to the value — so a single `AtomicU64` with
/// `fetch_min` gives a lock-free monotonically-decreasing cost cell.
/// Empty is encoded as `+inf` (every real cost beats it).
#[derive(Debug)]
pub(crate) struct BestCost(AtomicU64);

impl BestCost {
    /// An empty cell: nothing feasible known yet, nothing is pruned.
    pub(crate) fn new() -> BestCost {
        BestCost(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// Records a feasible design's cost; keeps the minimum.
    pub(crate) fn offer(&self, cost: Money) {
        debug_assert!(cost.dollars() >= 0.0, "costs are non-negative");
        self.0
            .fetch_min(cost.dollars().to_bits(), Ordering::Relaxed);
    }

    /// `true` when a feasible design strictly cheaper than `cost` is known
    /// — i.e. `cost` can be pruned without evaluation. Equal-cost
    /// candidates are *not* beaten: they still compete on quality.
    pub(crate) fn beats(&self, cost: Money) -> bool {
        f64::from_bits(self.0.load(Ordering::Relaxed)) < cost.dollars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero_and_clamps_to_the_machine() {
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(effective_jobs(0), cpus);
        assert_eq!(effective_jobs(1), 1);
        // Requests are capped at the machine's parallelism: solver workers
        // are compute-bound, so oversubscription can only slow things down.
        assert_eq!(effective_jobs(7), 7.min(cpus));
        assert_eq!(effective_jobs(usize::MAX), cpus);
    }

    #[test]
    fn map_preserves_item_order_at_any_width() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(parallel_map(jobs, &items, |_, x| x * x), expect, "{jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, x| *x).is_empty());
        assert_eq!(parallel_map(8, &[41_u32], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let got = parallel_map(2, &items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    #[should_panic(expected = "search worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = parallel_map(4, &items, |_, x| {
            assert!(*x != 13, "boom");
            *x
        });
    }

    #[test]
    fn map_with_preserves_item_order_at_any_width() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let mut states = vec![0_u64; jobs.max(1)];
            let got = parallel_map_with(jobs, &mut states, &items, |s, _, x| {
                *s += 1;
                x * x
            });
            assert_eq!(got, expect, "jobs={jobs}");
            assert_eq!(
                states.iter().sum::<u64>(),
                items.len() as u64,
                "every item visits exactly one worker state (jobs={jobs})"
            );
        }
    }

    #[test]
    fn map_with_gives_each_worker_a_contiguous_locality_chunk() {
        let items: Vec<usize> = (0..20).collect();
        let mut states: Vec<Vec<usize>> = vec![Vec::new(); 4];
        let _ = parallel_map_with(4, &mut states, &items, |seen, i, _| seen.push(i));
        for seen in &states {
            for pair in seen.windows(2) {
                assert_eq!(
                    pair[1],
                    pair[0] + 1,
                    "a worker's shard must be a consecutive run of the item order"
                );
            }
        }
        let mut all: Vec<usize> = states.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, items, "chunks must partition the items");
    }

    #[test]
    fn map_with_runs_inline_on_the_first_state_when_serial() {
        let items = [10_u32, 20, 30];
        let mut states = vec![0_u32, 99];
        let got = parallel_map_with(1, &mut states, &items, |s, _, x| {
            *s += x;
            *x
        });
        assert_eq!(got, vec![10, 20, 30]);
        assert_eq!(states, vec![60, 99], "only the first state is touched");
    }

    #[test]
    #[should_panic(expected = "one state per worker")]
    fn map_with_rejects_too_few_states() {
        let items: Vec<u32> = (0..10).collect();
        let mut states = vec![(); 1];
        let _ = parallel_map_with(4, &mut states, &items, |(), _, x| *x);
    }

    #[test]
    fn best_cost_starts_empty_and_keeps_the_minimum() {
        let cell = BestCost::new();
        let m = Money::from_dollars;
        assert!(!cell.beats(m(1e12)), "empty cell prunes nothing");
        cell.offer(m(100.0));
        cell.offer(m(250.0)); // worse offer is ignored
        assert!(cell.beats(m(100.01)));
        assert!(!cell.beats(m(100.0)), "equal cost still competes");
        assert!(!cell.beats(m(99.9)));
        cell.offer(m(50.0));
        assert!(cell.beats(m(50.5)));
    }

    #[test]
    fn best_cost_is_consistent_under_concurrent_offers() {
        let cell = BestCost::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..1000 {
                        cell.offer(Money::from_dollars(f64::from(i % 97 + t * 3 + 10)));
                    }
                });
            }
        });
        assert!(cell.beats(Money::from_dollars(10.001)));
        assert!(!cell.beats(Money::from_dollars(10.0)));
    }
}
