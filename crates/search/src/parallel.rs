//! The scoped-thread executor behind the parallel search.
//!
//! The design space factors into independent candidate evaluations, so the
//! search is embarrassingly parallel — the only care is keeping the result
//! *bit-identical* to the serial walk. The contract here:
//!
//! * [`parallel_map`] evaluates a slice of work items on up to `jobs`
//!   workers (plain `std::thread::scope`, no external runtime). Workers
//!   pull item indices from a shared atomic counter — a degenerate but
//!   effective form of work stealing that keeps all workers busy even when
//!   per-item cost varies by orders of magnitude — and the results are
//!   merged back **in item order**, so callers fold them exactly as the
//!   serial loop would have.
//! * With `jobs <= 1` the map degenerates to an in-order sequential loop on
//!   the calling thread: the serial path is literally the parallel path at
//!   width 1, not a separate implementation that could drift.
//! * [`BestCost`] is the shared dominance-pruning cell: the cheapest
//!   *feasible* cost any worker has proven, stored as ordered `f64` bits in
//!   an `AtomicU64` so workers can skip solving candidates that already
//!   cost more. Pruning with it never changes the winner — only candidates
//!   strictly more expensive than a known-feasible design are skipped, and
//!   such candidates can never win a minimum-cost search.
//!
//! Determinism argument, in one paragraph: every decision the search makes
//! (winner selection, tie-breaking, level termination, degradation
//! patience) happens in the *fold* over results ordered by candidate index
//! — identical to the serial order. Worker scheduling only affects *which*
//! over-budget candidates get pruned versus evaluated, and those candidates
//! are decision-irrelevant by the dominance argument above. Engine
//! evaluations themselves are pure functions of the model, so a result is
//! the same no matter which thread computes it.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use aved_units::Money;

/// Resolves a requested worker count: `0` means "use the machine's
/// available parallelism" (the `--jobs` CLI default), anything else is
/// taken literally.
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning results
/// in item order.
///
/// `f` receives `(index, &item)` and must be pure up to interior-mutable
/// shared state it synchronizes itself (the engine cache, [`BestCost`]).
/// With `jobs <= 1` or a single item, `f` runs sequentially in order on the
/// calling thread.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    });
    // Deterministic merge: scatter back into item order.
    let mut out: Vec<Option<R>> = items.iter().map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index is claimed exactly once"))
        .collect()
}

/// The cheapest known-feasible cost, shared across search workers for
/// dominance pruning.
///
/// Costs are non-negative finite `f64`s, for which the IEEE-754 bit
/// pattern orders identically to the value — so a single `AtomicU64` with
/// `fetch_min` gives a lock-free monotonically-decreasing cost cell.
/// Empty is encoded as `+inf` (every real cost beats it).
#[derive(Debug)]
pub(crate) struct BestCost(AtomicU64);

impl BestCost {
    /// An empty cell: nothing feasible known yet, nothing is pruned.
    pub(crate) fn new() -> BestCost {
        BestCost(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// Records a feasible design's cost; keeps the minimum.
    pub(crate) fn offer(&self, cost: Money) {
        debug_assert!(cost.dollars() >= 0.0, "costs are non-negative");
        self.0
            .fetch_min(cost.dollars().to_bits(), Ordering::Relaxed);
    }

    /// `true` when a feasible design strictly cheaper than `cost` is known
    /// — i.e. `cost` can be pruned without evaluation. Equal-cost
    /// candidates are *not* beaten: they still compete on quality.
    pub(crate) fn beats(&self, cost: Money) -> bool {
        f64::from_bits(self.0.load(Ordering::Relaxed)) < cost.dollars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_resolves_zero_to_at_least_one() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(1), 1);
        assert_eq!(effective_jobs(7), 7);
    }

    #[test]
    fn map_preserves_item_order_at_any_width() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(parallel_map(jobs, &items, |_, x| x * x), expect, "{jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, x| *x).is_empty());
        assert_eq!(parallel_map(8, &[41_u32], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let got = parallel_map(2, &items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    #[should_panic(expected = "search worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = parallel_map(4, &items, |_, x| {
            assert!(*x != 13, "boom");
            *x
        });
    }

    #[test]
    fn best_cost_starts_empty_and_keeps_the_minimum() {
        let cell = BestCost::new();
        let m = Money::from_dollars;
        assert!(!cell.beats(m(1e12)), "empty cell prunes nothing");
        cell.offer(m(100.0));
        cell.offer(m(250.0)); // worse offer is ignored
        assert!(cell.beats(m(100.01)));
        assert!(!cell.beats(m(100.0)), "equal cost still competes");
        assert!(!cell.beats(m(99.9)));
        cell.offer(m(50.0));
        assert!(cell.beats(m(50.5)));
    }

    #[test]
    fn best_cost_is_consistent_under_concurrent_offers() {
        let cell = BestCost::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..1000 {
                        cell.offer(Money::from_dollars(f64::from(i % 97 + t * 3 + 10)));
                    }
                });
            }
        });
        assert!(cell.beats(Money::from_dollars(10.001)));
        assert!(!cell.beats(Money::from_dollars(10.0)));
    }
}
