//! Degraded-mode accounting for searches.
//!
//! A search that survives engine failures is only trustworthy if it says
//! *how much* it survived: which candidates were dropped, how often the
//! steady-state solver had to fall back, and how sloppy the worst accepted
//! solution was. [`SearchHealth`] is that report. Every search entry point
//! produces one; a clean run has zero skips, zero fallbacks and no
//! residual worth mentioning.

use aved_avail::EvalHealth;
use aved_model::TierDesign;

use crate::SearchError;

/// One candidate design dropped from a search because its evaluation
/// failed (and the search was not in strict mode).
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedCandidate {
    /// Tier the candidate belonged to.
    pub tier: String,
    /// Resource type of the candidate.
    pub resource: String,
    /// Active resources in the candidate.
    pub n_active: u32,
    /// Spare resources in the candidate.
    pub n_spare: u32,
    /// The rendered evaluation error.
    pub error: String,
}

impl SkippedCandidate {
    fn from_failure(td: &TierDesign, error: &SearchError) -> SkippedCandidate {
        SkippedCandidate {
            tier: td.tier().as_str().to_owned(),
            resource: td.resource().as_str().to_owned(),
            n_active: td.n_active(),
            n_spare: td.n_spare(),
            error: error.to_string(),
        }
    }
}

/// How degraded a search run was: candidates skipped after evaluation
/// failures, solver fallbacks taken, the worst accepted balance residual,
/// and how the work got done — worker count, cache traffic, candidates
/// pruned by cost dominance, and per-phase wall-clock time.
///
/// Equality ignores the timing and workload fields (`wall_time`, the phase
/// times, `jobs`, cache and pruning counters): two runs that made the same
/// decisions are equal even though timing — and, under parallel pruning,
/// the exact amount of work avoided — is never reproducible.
#[derive(Debug, Clone, Default)]
pub struct SearchHealth {
    /// Candidates dropped because their evaluation failed.
    pub skipped: Vec<SkippedCandidate>,
    /// Solver fallbacks taken across all successful evaluations.
    pub fallbacks_taken: u64,
    /// Worst accepted balance residual `‖πQ‖∞` across all successful
    /// evaluations, when the engine measures one.
    pub worst_residual: Option<f64>,
    /// Wall-clock time the search took.
    pub wall_time: std::time::Duration,
    /// Candidates skipped without evaluation because they already cost more
    /// than a known-feasible design. Varies with scheduling under parallel
    /// runs; the selected design does not.
    pub candidates_pruned: u64,
    /// Model-cache hits during the search, when the caller wired a
    /// `CachingEngine` in and reported its counters.
    pub cache_hits: u64,
    /// Model-cache misses (inner engine evaluations), when reported.
    pub cache_misses: u64,
    /// Worker threads the search actually used (after resolving `jobs = 0`
    /// to the machine's parallelism). Zero when the entry point predates
    /// the parallel executor.
    pub jobs: usize,
    /// Wall-clock time spent enumerating candidates.
    pub enumeration_time: std::time::Duration,
    /// Wall-clock time spent evaluating candidates (the parallel phase).
    pub solve_time: std::time::Duration,
    /// Wall-clock time spent merging results and selecting designs.
    pub merge_time: std::time::Duration,
    /// Steady-state solves run through warm-started evaluation sessions.
    pub warm_solves: u64,
    /// Solves that were offered a usable warm-start hint (a previous π of
    /// matching shape) — the locality hit rate of the candidate ordering.
    pub warm_hits: u64,
    /// Chain rebuilds avoided by patching rates into a structurally
    /// identical cached chain instead of re-exploring the state space.
    pub chain_rebuilds_avoided: u64,
    /// Total solver iterations across session solves.
    pub solver_iterations: u64,
    /// Iterations saved by warm starts, relative to each chain shape's
    /// cold-solve baseline.
    pub iterations_saved: u64,
    /// Candidates abandoned because a per-candidate resource budget ran
    /// out (deadline, sweep cap, state cap). Each is also recorded in
    /// `skipped` with a diagnostic naming the exhausted resource.
    pub budget_exhausted: u64,
    /// Candidates whose results were replayed bit-for-bit from a resume
    /// journal instead of being re-evaluated.
    pub journal_replayed: u64,
    /// `true` when the search stopped early — the whole-search deadline
    /// passed or a cancellation token fired — and the results are
    /// best-so-far rather than exhaustive.
    pub interrupted: bool,
}

impl PartialEq for SearchHealth {
    fn eq(&self, other: &SearchHealth) -> bool {
        self.skipped == other.skipped
            && self.fallbacks_taken == other.fallbacks_taken
            && self.worst_residual == other.worst_residual
    }
}

impl SearchHealth {
    /// Number of candidates dropped after evaluation failures.
    #[must_use]
    pub fn candidates_skipped(&self) -> usize {
        self.skipped.len()
    }

    /// `true` when the search took any degraded path: a candidate was
    /// skipped, a solver fallback was needed, or the run was interrupted
    /// before covering the full design space.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.skipped.is_empty() || self.fallbacks_taken > 0 || self.interrupted
    }

    /// Folds one successful evaluation's health into this report.
    pub fn absorb_eval(&mut self, eval: EvalHealth) {
        self.fallbacks_taken += u64::from(eval.fallbacks);
        self.worst_residual = match (self.worst_residual, eval.worst_residual) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Folds another search's health into this one (used when a service
    /// search aggregates its per-tier frontier sweeps). Wall and phase
    /// times add, counters add, the worker count keeps the maximum.
    pub fn merge(&mut self, other: SearchHealth) {
        self.skipped.extend(other.skipped);
        self.fallbacks_taken += other.fallbacks_taken;
        self.worst_residual = match (self.worst_residual, other.worst_residual) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.wall_time += other.wall_time;
        self.candidates_pruned += other.candidates_pruned;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.jobs = self.jobs.max(other.jobs);
        self.enumeration_time += other.enumeration_time;
        self.solve_time += other.solve_time;
        self.merge_time += other.merge_time;
        self.warm_solves += other.warm_solves;
        self.warm_hits += other.warm_hits;
        self.chain_rebuilds_avoided += other.chain_rebuilds_avoided;
        self.solver_iterations += other.solver_iterations;
        self.iterations_saved += other.iterations_saved;
        self.budget_exhausted += other.budget_exhausted;
        self.journal_replayed += other.journal_replayed;
        self.interrupted |= other.interrupted;
    }

    /// Folds one evaluation session's accumulated statistics into this
    /// report (called once per worker session when a search finishes).
    pub fn absorb_session(&mut self, stats: &aved_avail::SessionStats) {
        self.warm_solves += stats.solves;
        self.warm_hits += stats.warm_hits;
        self.chain_rebuilds_avoided += stats.rebuilds_avoided;
        self.solver_iterations += stats.iterations;
        self.iterations_saved += stats.iterations_saved;
    }

    /// Records a candidate skipped because `error` occurred.
    pub(crate) fn record_skip(&mut self, td: &TierDesign, error: &SearchError) {
        self.skipped.push(SkippedCandidate::from_failure(td, error));
    }
}

impl std::fmt::Display for SearchHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} candidate(s) skipped, {} solver fallback(s)",
            self.skipped.len(),
            self.fallbacks_taken
        )?;
        if let Some(r) = self.worst_residual {
            write!(f, ", worst residual {r:.2e}")?;
        }
        if self.candidates_pruned > 0 {
            write!(f, ", {} pruned by cost", self.candidates_pruned)?;
        }
        if self.cache_hits + self.cache_misses > 0 {
            write!(
                f,
                ", cache {}/{} hit",
                self.cache_hits,
                self.cache_hits + self.cache_misses
            )?;
        }
        if self.jobs > 0 {
            write!(f, ", {} job(s)", self.jobs)?;
        }
        if self.warm_solves > 0 {
            write!(
                f,
                ", warm {}/{} hit, {} rebuild(s) avoided, {} iteration(s) saved",
                self.warm_hits,
                self.warm_solves,
                self.chain_rebuilds_avoided,
                self.iterations_saved
            )?;
        }
        if self.budget_exhausted > 0 {
            write!(f, ", {} budget-exhausted", self.budget_exhausted)?;
        }
        if self.journal_replayed > 0 {
            write!(f, ", {} replayed from journal", self.journal_replayed)?;
        }
        if self.interrupted {
            write!(f, ", interrupted (best-so-far)")?;
        }
        write!(f, ", {:.1} ms", self.wall_time.as_secs_f64() * 1e3)
    }
}

/// Applies the per-candidate isolation policy to one evaluation result.
///
/// Candidate-scoped failures (engine errors, non-finite metrics) are
/// recorded in `health` and converted to "not a candidate" unless the
/// search is strict; structural errors (unknown tiers, unresolvable
/// references, inconsistent models) always propagate — they would fail
/// every candidate, so skipping is just slower failure.
pub(crate) fn isolate_candidate(
    result: Result<Option<crate::EvaluatedDesign>, SearchError>,
    strict: bool,
    health: &mut SearchHealth,
    td: &TierDesign,
) -> Result<Option<crate::EvaluatedDesign>, SearchError> {
    match result {
        Ok(Some(e)) => {
            health.absorb_eval(e.eval_health());
            Ok(Some(e))
        }
        Ok(None) => Ok(None),
        Err(e) if !strict && e.is_candidate_scoped() => {
            health.record_skip(td, &e);
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skip(n: usize) -> Vec<SkippedCandidate> {
        (0..n)
            .map(|i| SkippedCandidate {
                tier: "t".into(),
                resource: "r".into(),
                n_active: 1,
                n_spare: 0,
                error: format!("e{i}"),
            })
            .collect()
    }

    #[test]
    fn clean_health_is_not_degraded() {
        let h = SearchHealth::default();
        assert!(!h.is_degraded());
        assert_eq!(h.candidates_skipped(), 0);
    }

    #[test]
    fn absorbing_eval_health_accumulates_fallbacks_and_residual() {
        let mut h = SearchHealth::default();
        h.absorb_eval(EvalHealth {
            fallbacks: 2,
            worst_residual: Some(1e-12),
        });
        h.absorb_eval(EvalHealth {
            fallbacks: 0,
            worst_residual: Some(3e-11),
        });
        assert_eq!(h.fallbacks_taken, 2);
        assert_eq!(h.worst_residual, Some(3e-11));
        assert!(h.is_degraded());
    }

    #[test]
    fn merge_combines_every_field() {
        let ms = std::time::Duration::from_millis;
        let mut a = SearchHealth {
            skipped: skip(1),
            fallbacks_taken: 1,
            worst_residual: Some(1e-12),
            wall_time: ms(5),
            candidates_pruned: 10,
            cache_hits: 100,
            cache_misses: 4,
            jobs: 4,
            enumeration_time: ms(1),
            solve_time: ms(3),
            merge_time: ms(1),
            warm_solves: 20,
            warm_hits: 15,
            chain_rebuilds_avoided: 12,
            solver_iterations: 900,
            iterations_saved: 300,
            budget_exhausted: 2,
            journal_replayed: 9,
            interrupted: false,
        };
        let b = SearchHealth {
            skipped: skip(2),
            fallbacks_taken: 3,
            worst_residual: Some(1e-10),
            wall_time: ms(7),
            candidates_pruned: 5,
            cache_hits: 50,
            cache_misses: 6,
            jobs: 2,
            enumeration_time: ms(2),
            solve_time: ms(4),
            merge_time: ms(1),
            warm_solves: 10,
            warm_hits: 5,
            chain_rebuilds_avoided: 3,
            solver_iterations: 100,
            iterations_saved: 40,
            budget_exhausted: 1,
            journal_replayed: 4,
            interrupted: true,
        };
        a.merge(b);
        assert_eq!(a.candidates_skipped(), 3);
        assert_eq!(a.fallbacks_taken, 4);
        assert_eq!(a.worst_residual, Some(1e-10));
        assert_eq!(a.wall_time, ms(12));
        assert_eq!(a.candidates_pruned, 15);
        assert_eq!(a.cache_hits, 150);
        assert_eq!(a.cache_misses, 10);
        assert_eq!(a.jobs, 4, "worker count keeps the maximum");
        assert_eq!(a.enumeration_time, ms(3));
        assert_eq!(a.solve_time, ms(7));
        assert_eq!(a.merge_time, ms(2));
        assert_eq!(a.warm_solves, 30);
        assert_eq!(a.warm_hits, 20);
        assert_eq!(a.chain_rebuilds_avoided, 15);
        assert_eq!(a.solver_iterations, 1000);
        assert_eq!(a.iterations_saved, 340);
        assert_eq!(a.budget_exhausted, 3);
        assert_eq!(a.journal_replayed, 13);
        assert!(a.interrupted, "interruption is sticky across merges");
    }

    #[test]
    fn absorbing_session_stats_accumulates_warm_counters() {
        let mut h = SearchHealth::default();
        h.absorb_session(&aved_avail::SessionStats {
            solves: 8,
            warm_hits: 6,
            warm_consumed: 5,
            iterations: 400,
            iterations_saved: 120,
            rebuilds_avoided: 7,
        });
        h.absorb_session(&aved_avail::SessionStats {
            solves: 2,
            warm_hits: 1,
            warm_consumed: 1,
            iterations: 100,
            iterations_saved: 30,
            rebuilds_avoided: 1,
        });
        assert_eq!(h.warm_solves, 10);
        assert_eq!(h.warm_hits, 7);
        assert_eq!(h.chain_rebuilds_avoided, 8);
        assert_eq!(h.solver_iterations, 500);
        assert_eq!(h.iterations_saved, 150);
        assert!(!h.is_degraded(), "warm stats are not degradation");
    }

    #[test]
    fn display_summarizes_the_run() {
        let h = SearchHealth {
            skipped: skip(1),
            fallbacks_taken: 2,
            worst_residual: Some(1.5e-11),
            wall_time: std::time::Duration::from_millis(3),
            candidates_pruned: 7,
            cache_hits: 9,
            cache_misses: 3,
            jobs: 4,
            warm_solves: 12,
            warm_hits: 10,
            chain_rebuilds_avoided: 8,
            iterations_saved: 450,
            budget_exhausted: 3,
            journal_replayed: 6,
            interrupted: true,
            ..SearchHealth::default()
        };
        let s = h.to_string();
        assert!(s.contains("1 candidate(s) skipped"), "{s}");
        assert!(s.contains("2 solver fallback(s)"), "{s}");
        assert!(s.contains("1.50e-11"), "{s}");
        assert!(s.contains("7 pruned by cost"), "{s}");
        assert!(s.contains("cache 9/12 hit"), "{s}");
        assert!(s.contains("4 job(s)"), "{s}");
        assert!(s.contains("warm 10/12 hit"), "{s}");
        assert!(s.contains("8 rebuild(s) avoided"), "{s}");
        assert!(s.contains("450 iteration(s) saved"), "{s}");
        assert!(s.contains("3 budget-exhausted"), "{s}");
        assert!(s.contains("6 replayed from journal"), "{s}");
        assert!(s.contains("interrupted (best-so-far)"), "{s}");
    }

    #[test]
    fn interruption_alone_degrades_the_run() {
        let h = SearchHealth {
            interrupted: true,
            ..SearchHealth::default()
        };
        assert!(h.is_degraded());
        assert!(!SearchHealth::default().is_degraded());
    }

    #[test]
    fn equality_ignores_timing_and_workload_fields() {
        let a = SearchHealth {
            skipped: skip(1),
            fallbacks_taken: 2,
            worst_residual: Some(1e-12),
            ..SearchHealth::default()
        };
        let b = SearchHealth {
            wall_time: std::time::Duration::from_millis(99),
            candidates_pruned: 42,
            cache_hits: 7,
            cache_misses: 9,
            jobs: 8,
            solve_time: std::time::Duration::from_millis(50),
            warm_solves: 11,
            warm_hits: 6,
            iterations_saved: 1234,
            ..a.clone()
        };
        assert_eq!(a, b, "same decisions, different workload: still equal");
    }
}
