//! Enumeration of resolved tier-design candidates.

use std::sync::Arc;
use std::time::Instant;

use aved_avail::{CancelToken, SolveBudget};
use aved_model::{
    Infrastructure, MechanismName, ParamValue, ResourceOption, SpareMode, TierDesign, TierName,
};

use crate::journal::{JournalReplay, SweepJournal};

/// Knobs bounding the enumerated design space.
///
/// The paper's search dimensions are unbounded in principle (any number of
/// extra actives or spares); in practice redundancy beyond a handful of
/// resources only raises cost, and the termination rules of §4.1 stop the
/// search long before these bounds. They exist so exhaustive sweeps
/// (Pareto frontiers) terminate too.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Largest number of active resources beyond the performance minimum.
    pub max_extra_active: u32,
    /// Largest number of spare resources.
    pub max_spares: u32,
    /// Spare operational-mode alternatives to consider.
    pub spare_modes: Vec<SpareMode>,
    /// Mechanism parameters pinned to a single value instead of enumerated
    /// (the paper's Fig. 7 fixes the maintenance contract to bronze "to
    /// avoid overloading the graphs").
    pub pins: Vec<(MechanismName, String, ParamValue)>,
    /// Fail-fast mode: when `true`, the first evaluation failure aborts the
    /// search instead of skipping the candidate and recording the skip in
    /// the search's `SearchHealth` report.
    pub strict: bool,
    /// Worker threads for candidate evaluation. `0` means auto-detect from
    /// the machine's available parallelism; the library default is `1`
    /// (serial) so results and engine call orders stay deterministic unless
    /// the caller opts in. The selected design is identical at any value.
    pub jobs: usize,
    /// Cost-dominance pruning: skip evaluating candidates that already cost
    /// strictly more than a known-feasible design. On by default; pruning
    /// never changes the selected design, only the work done (see
    /// `SearchStats::pruned_by_cost`). Disable to force exhaustive
    /// evaluation, e.g. when auditing the pruning itself.
    pub prune: bool,
    /// Warm-started evaluation: each worker carries an `EvalSession` so
    /// neighboring candidates (the enumeration order is parameter-locality
    /// order) reuse chain structure and steady-state vectors. On by
    /// default; the selected design is bit-identical either way — disable
    /// only to measure the speedup or to force fully independent solves.
    pub warm_start: bool,
    /// Per-candidate wall-clock allowance: each candidate's availability
    /// evaluation (exploration + every solver attempt) must finish within
    /// this much time or it is abandoned with a budget-exhaustion
    /// diagnostic. The clock restarts for every candidate. `None` (the
    /// default) means no per-candidate limit.
    pub candidate_timeout: Option<std::time::Duration>,
    /// Largest Markov state space any single candidate may explore before
    /// its evaluation is abandoned as budget-exhausted. Guards against
    /// state-space explosion from adversarial or mis-specified models.
    /// `None` (the default) applies only the engine's built-in truncation
    /// bound.
    pub max_states: Option<usize>,
    /// Whole-search wall-clock deadline, measured from the moment the
    /// search starts. When it passes, the search stops at the next
    /// candidate boundary and returns its best-so-far result with
    /// `SearchHealth::interrupted` set. `None` (the default) means the
    /// search runs to completion.
    pub search_deadline: Option<std::time::Duration>,
    /// Cooperative cancellation token, checked at candidate boundaries and
    /// inside long solver loops. Firing it (e.g. from a signal handler)
    /// stops the search cleanly with its best-so-far result.
    pub cancel: Option<CancelToken>,
    /// Evaluation journal: every candidate outcome is appended as it
    /// merges, so a killed or cancelled sweep can be resumed with
    /// [`SearchOptions::resume`].
    pub journal: Option<Arc<SweepJournal>>,
    /// Replay source: candidates whose keys appear in this loaded journal
    /// skip evaluation and reuse the recorded result bit-for-bit.
    pub resume: Option<Arc<JournalReplay>>,
}

impl PartialEq for SearchOptions {
    /// Structural equality on the enumeration/evaluation knobs; the
    /// journal and replay handles compare by identity (two options are
    /// interchangeable only when they write to and replay from the same
    /// journal objects).
    fn eq(&self, other: &SearchOptions) -> bool {
        fn same_arc<T>(a: &Option<Arc<T>>, b: &Option<Arc<T>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
        }
        self.max_extra_active == other.max_extra_active
            && self.max_spares == other.max_spares
            && self.spare_modes == other.spare_modes
            && self.pins == other.pins
            && self.strict == other.strict
            && self.jobs == other.jobs
            && self.prune == other.prune
            && self.warm_start == other.warm_start
            && self.candidate_timeout == other.candidate_timeout
            && self.max_states == other.max_states
            && self.search_deadline == other.search_deadline
            && self.cancel == other.cancel
            && same_arc(&self.journal, &other.journal)
            && same_arc(&self.resume, &other.resume)
    }
}

impl Default for SearchOptions {
    /// Up to 8 extra actives, up to 3 spares, fully-inactive spares (the
    /// restriction the paper's application-tier example makes), nothing
    /// pinned, serial evaluation, pruning on.
    fn default() -> SearchOptions {
        SearchOptions {
            max_extra_active: 8,
            max_spares: 3,
            spare_modes: vec![SpareMode::AllInactive],
            pins: Vec::new(),
            strict: false,
            jobs: 1,
            prune: true,
            warm_start: true,
            candidate_timeout: None,
            max_states: None,
            search_deadline: None,
            cancel: None,
            journal: None,
            resume: None,
        }
    }
}

impl SearchOptions {
    /// Also consider hot (all-active) spares.
    #[must_use]
    pub fn with_hot_spares(mut self) -> SearchOptions {
        if !self.spare_modes.contains(&SpareMode::AllActive) {
            self.spare_modes.push(SpareMode::AllActive);
        }
        self
    }

    /// Aborts on the first evaluation failure instead of isolating it to
    /// the failing candidate.
    #[must_use]
    pub fn with_strict(mut self) -> SearchOptions {
        self.strict = true;
        self
    }

    /// Evaluates candidates on `jobs` worker threads (`0` = auto-detect).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> SearchOptions {
        self.jobs = jobs;
        self
    }

    /// Disables cost-dominance pruning, forcing every candidate to be
    /// evaluated.
    #[must_use]
    pub fn without_pruning(mut self) -> SearchOptions {
        self.prune = false;
        self
    }

    /// Disables warm-started evaluation sessions, forcing every candidate
    /// to be solved cold from a fresh chain build.
    #[must_use]
    pub fn without_warm_start(mut self) -> SearchOptions {
        self.warm_start = false;
        self
    }

    /// Pins one mechanism parameter to a fixed value.
    #[must_use]
    pub fn with_pin<M, P>(mut self, mechanism: M, param: P, value: ParamValue) -> SearchOptions
    where
        M: Into<MechanismName>,
        P: Into<String>,
    {
        self.pins.push((mechanism.into(), param.into(), value));
        self
    }

    /// Bounds each candidate's evaluation to `timeout` of wall-clock time.
    #[must_use]
    pub fn with_candidate_timeout(mut self, timeout: std::time::Duration) -> SearchOptions {
        self.candidate_timeout = Some(timeout);
        self
    }

    /// Bounds each candidate's Markov exploration to `max_states` states.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> SearchOptions {
        self.max_states = Some(max_states);
        self
    }

    /// Bounds the whole search to `deadline` of wall-clock time, after
    /// which it returns its best-so-far result as interrupted.
    #[must_use]
    pub fn with_search_deadline(mut self, deadline: std::time::Duration) -> SearchOptions {
        self.search_deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> SearchOptions {
        self.cancel = Some(cancel);
        self
    }

    /// Journals every candidate outcome to `journal` as the search runs.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<SweepJournal>) -> SearchOptions {
        self.journal = Some(journal);
        self
    }

    /// Replays recorded outcomes from `replay` instead of re-evaluating.
    #[must_use]
    pub fn with_resume(mut self, replay: Arc<JournalReplay>) -> SearchOptions {
        self.resume = Some(replay);
        self
    }

    /// The absolute whole-search deadline for a search that started at
    /// `start`, when one is configured.
    pub(crate) fn deadline_from(&self, start: Instant) -> Option<Instant> {
        self.search_deadline.map(|d| start + d)
    }

    /// The solve budget every evaluation session runs under: the absolute
    /// search deadline, the per-candidate timeout and state cap, and the
    /// cancellation token, all folded into one [`SolveBudget`].
    pub(crate) fn eval_budget(&self, deadline: Option<Instant>) -> SolveBudget {
        let mut budget = SolveBudget::unlimited();
        if let Some(d) = deadline {
            budget = budget.with_deadline(d);
        }
        if let Some(t) = self.candidate_timeout {
            budget = budget.with_candidate_timeout(t);
        }
        if let Some(s) = self.max_states {
            budget = budget.with_max_states(s);
        }
        if let Some(c) = &self.cancel {
            budget = budget.with_cancel(c.clone());
        }
        budget
    }

    /// `true` once the search should stop at the next candidate boundary:
    /// the cancellation token fired or the whole-search deadline passed.
    /// Monotone — once true it stays true — so one post-batch check
    /// suffices to convert worker-observed interruptions into a clean
    /// best-so-far stop.
    pub(crate) fn stop_requested(&self, deadline: Option<Instant>) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The availability mechanisms relevant to a tier option: those referenced
/// by the resource's components (maintenance contracts, checkpoint loss
/// windows) plus those the service model attaches to the option.
#[must_use]
pub fn relevant_mechanisms(
    infrastructure: &Infrastructure,
    option: &ResourceOption,
) -> Vec<MechanismName> {
    let mut out: Vec<MechanismName> = Vec::new();
    if let Some(resource) = infrastructure.resource(option.resource().as_str()) {
        for slot in resource.components() {
            if let Some(component) = infrastructure.component(slot.component().as_str()) {
                for m in infrastructure.mechanisms_of_component(component) {
                    if !out.contains(m) {
                        out.push(m.clone());
                    }
                }
            }
        }
    }
    for mu in option.mechanisms() {
        if !out.contains(mu.mechanism()) {
            out.push(mu.mechanism().clone());
        }
    }
    out
}

/// Enumerates every combination of parameter settings across the given
/// mechanisms (Cartesian product of all parameter ranges).
///
/// Each returned setting assignment is a list of
/// `(mechanism, parameter, value)` triples ready to apply to a
/// [`TierDesign`].
#[must_use]
pub fn enumerate_settings(
    infrastructure: &Infrastructure,
    mechanisms: &[MechanismName],
    pins: &[(MechanismName, String, ParamValue)],
) -> Vec<Vec<(MechanismName, String, ParamValue)>> {
    let mut combos: Vec<Vec<(MechanismName, String, ParamValue)>> = vec![Vec::new()];
    for mech_name in mechanisms {
        let Some(mech) = infrastructure.mechanism(mech_name.as_str()) else {
            continue;
        };
        for param in mech.params() {
            let pinned = pins
                .iter()
                .find(|(m, p, _)| m == mech_name && p == param.name().as_str())
                .map(|(_, _, v)| v.clone());
            let values = match pinned {
                Some(v) => vec![v],
                None => param.range().values(),
            };
            let mut next = Vec::with_capacity(combos.len() * values.len());
            for combo in &combos {
                for value in &values {
                    let mut extended = combo.clone();
                    extended.push((
                        mech_name.clone(),
                        param.name().as_str().to_owned(),
                        value.clone(),
                    ));
                    next.push(extended);
                }
            }
            combos = next;
        }
    }
    combos
}

/// Enumerates all resolved tier designs with exactly `n_total` resources
/// for one resource option: every active/spare split (respecting the
/// option's `nActive` constraint and the minimum `min_active`), every spare
/// mode, every mechanism-setting combination.
#[must_use]
pub fn enumerate_tier_candidates(
    infrastructure: &Infrastructure,
    tier: &TierName,
    option: &ResourceOption,
    n_total: u32,
    min_active: u32,
    options: &SearchOptions,
) -> Vec<TierDesign> {
    let mechanisms = relevant_mechanisms(infrastructure, option);
    let settings = enumerate_settings(infrastructure, &mechanisms, &options.pins);
    let mut out = Vec::new();
    let max_spares = options.max_spares.min(n_total.saturating_sub(1));
    for n_spare in 0..=max_spares {
        let n_active = n_total - n_spare;
        if n_active < min_active.max(1) || !option.n_active().contains(n_active) {
            continue;
        }
        let spare_modes: &[SpareMode] = if n_spare == 0 {
            // Spare mode is irrelevant without spares; emit one variant.
            &options.spare_modes[..1.min(options.spare_modes.len())]
        } else {
            &options.spare_modes
        };
        for spare_mode in spare_modes {
            for combo in &settings {
                let mut td =
                    TierDesign::new(tier.clone(), option.resource().clone(), n_active, n_spare)
                        .with_spare_mode(spare_mode.clone());
                for (mech, param, value) in combo {
                    td = td.with_setting(mech.clone(), param.as_str(), value.clone());
                }
                out.push(td);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_model::{
        ComponentType, DurationSpec, EffectValue, FailureMode, FailureScope, Mechanism,
        MechanismUse, NActiveSpec, ParamRange, Parameter, PerfRef, ResourceComponent, ResourceType,
        Sizing,
    };
    use aved_units::{Duration, Money};

    fn infra() -> Infrastructure {
        Infrastructure::new()
            .with_component(
                ComponentType::new("machineA").with_failure_mode(FailureMode::new(
                    "hard",
                    Duration::from_days(650.0),
                    DurationSpec::FromMechanism("maintenanceA".into()),
                    Duration::from_mins(2.0),
                )),
            )
            .with_mechanism(
                Mechanism::new("maintenanceA")
                    .with_param(Parameter::new(
                        "level",
                        ParamRange::Levels(vec!["bronze".into(), "gold".into()]),
                    ))
                    .with_cost_table(
                        "level",
                        vec![Money::from_dollars(380.0), Money::from_dollars(760.0)],
                    )
                    .with_mttr_effect(EffectValue::Table {
                        param: "level".into(),
                        values: vec![Duration::from_hours(38.0), Duration::from_hours(8.0)],
                    }),
            )
            .with_resource(ResourceType::new("rX", Duration::ZERO).with_component(
                ResourceComponent::new("machineA", None, Duration::from_secs(30.0)),
            ))
    }

    fn option() -> ResourceOption {
        ResourceOption::new(
            "rX",
            Sizing::Dynamic,
            FailureScope::Resource,
            NActiveSpec::Arithmetic {
                min: 1,
                max: 1000,
                step: 1,
            },
            PerfRef::Const(100.0),
        )
    }

    #[test]
    fn relevant_mechanisms_come_from_components_and_option() {
        let infra = infra().with_mechanism(Mechanism::new("checkpoint"));
        let opt = option().with_mechanism(MechanismUse::new("checkpoint", None));
        let mechs = relevant_mechanisms(&infra, &opt);
        let names: Vec<&str> = mechs.iter().map(MechanismName::as_str).collect();
        assert_eq!(names, vec!["maintenanceA", "checkpoint"]);
    }

    #[test]
    fn settings_cartesian_product() {
        let infra = infra().with_mechanism(Mechanism::new("other").with_param(Parameter::new(
            "mode",
            ParamRange::Levels(vec!["x".into(), "y".into(), "z".into()]),
        )));
        let combos = enumerate_settings(&infra, &["maintenanceA".into(), "other".into()], &[]);
        // 2 levels x 3 modes.
        assert_eq!(combos.len(), 6);
        for combo in &combos {
            assert_eq!(combo.len(), 2);
        }
    }

    #[test]
    fn unknown_mechanisms_are_skipped() {
        let combos = enumerate_settings(&infra(), &["ghost".into()], &[]);
        assert_eq!(combos, vec![Vec::new()]);
    }

    #[test]
    fn candidates_cover_splits_and_settings() {
        let opts = SearchOptions::default();
        // n_total = 4, min_active = 2: splits (4a+0s), (3a+1s), (2a+2s);
        // 2 maintenance levels each.
        let cands = enumerate_tier_candidates(&infra(), &"t".into(), &option(), 4, 2, &opts);
        assert_eq!(cands.len(), 3 * 2);
        assert!(cands.iter().all(|c| c.n_total() == 4));
        assert!(cands.iter().all(|c| c.n_active() >= 2));
        // Every candidate carries a maintenance level.
        assert!(cands
            .iter()
            .all(|c| c.setting("maintenanceA", "level").is_some()));
    }

    #[test]
    fn n_active_constraint_filters_splits() {
        let restricted = ResourceOption::new(
            "rX",
            Sizing::Static,
            FailureScope::Resource,
            NActiveSpec::List(vec![1]),
            PerfRef::Const(100.0),
        );
        let cands = enumerate_tier_candidates(
            &infra(),
            &"t".into(),
            &restricted,
            3,
            1,
            &SearchOptions::default(),
        );
        // Only n_active = 1, n_spare = 2 qualifies.
        assert_eq!(cands.len(), 2); // two maintenance levels
        assert!(cands.iter().all(|c| c.n_active() == 1 && c.n_spare() == 2));
    }

    #[test]
    fn hot_spares_double_spare_variants() {
        let base = SearchOptions::default();
        let hot = SearchOptions::default().with_hot_spares();
        let with_base = enumerate_tier_candidates(&infra(), &"t".into(), &option(), 3, 1, &base);
        let with_hot = enumerate_tier_candidates(&infra(), &"t".into(), &option(), 3, 1, &hot);
        // Splits with spares gain a second spare-mode variant.
        assert!(with_hot.len() > with_base.len());
    }

    #[test]
    fn zero_spare_candidates_do_not_multiply_spare_modes() {
        let opts = SearchOptions::default().with_hot_spares();
        let cands = enumerate_tier_candidates(&infra(), &"t".into(), &option(), 2, 2, &opts);
        // Only the (2 active, 0 spare) split exists; spare mode collapses.
        assert_eq!(cands.len(), 2); // two maintenance levels
    }
}
