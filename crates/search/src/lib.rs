//! Design-space search (paper §4).
//!
//! Given an infrastructure model, a service model, a performance catalog
//! and an availability engine, this crate enumerates and evaluates designs
//! to find the minimum-cost design meeting the service requirements:
//!
//! * [`EvalContext`] bundles the models and the pluggable engine;
//! * [`enumerate_tier_candidates`] produces every resolved tier design for
//!   a given resource count, covering active/spare splits, spare
//!   operational modes and all availability-mechanism parameter settings;
//! * [`evaluate_enterprise_design`] / [`evaluate_job_design`] attach cost,
//!   availability and (for finite jobs) expected completion time;
//! * [`search_tier`] implements the paper's §4.1 algorithm for one tier —
//!   grow the resource count from the performance minimum, try all
//!   combinations at each size, prune by cost once a feasible design is
//!   known, stop when every remaining design necessarily costs more;
//! * [`search_job_tier`] is the finite-job analogue driven by expected
//!   execution time;
//! * [`tier_pareto_frontier`] and [`job_frontier`] compute the full
//!   cost/quality tradeoff curves behind the paper's Figs. 6–8;
//! * [`search_service`] composes per-tier frontiers into a minimum-cost
//!   multi-tier design by greedy marginal-cost refinement.
//!
//! Searches are resilient by default: an engine failure or non-finite
//! metric on one candidate skips that candidate rather than aborting the
//! run ([`SearchOptions::strict`] restores fail-fast), and every entry
//! point reports a [`SearchHealth`] saying how degraded the run was —
//! candidates skipped, solver fallbacks taken, worst accepted residual.
//!
//! Searches are also parallel: candidate evaluations fan out across scoped
//! threads ([`SearchOptions::with_jobs`], `0` = auto-detect, requests
//! clamped to the machine's parallelism), sharing one [`CachingEngine`]
//! and a dominance-pruning best-cost cell, with results merged in
//! candidate order so the selected design is bit-identical to the serial
//! walk at any worker count (see the [`parallel`](parallel_map) module
//! docs for the argument).
//!
//! Searches are governed: a [`SolveBudget`](aved_avail::SolveBudget)
//! derived from [`SearchOptions`] bounds each candidate's evaluation
//! (wall-clock timeout, explored-state cap), a whole-search deadline or a
//! [`CancelToken`](aved_avail::CancelToken) stops the sweep cleanly at the
//! next candidate boundary with its best-so-far result, and a
//! [`SweepJournal`] checkpoints every candidate outcome so an interrupted
//! sweep resumes ([`SearchOptions::with_resume`]) and provably selects the
//! same winner, bit-for-bit.
//!
//! Searches are warm-started by default: candidate batches stay in
//! enumeration order — parameter-locality order, where neighbors differ in
//! one knob — and are sharded contiguously across workers, each carrying an
//! [`aved_avail::EvalSession`] that reuses chain structure (rate-only
//! in-place rebuilds) and the previous steady-state vector between
//! neighboring solves. The selected designs are bit-identical with warm
//! starts on or off ([`SearchOptions::without_warm_start`] disables them);
//! [`SearchHealth`] reports the hit rates and iterations saved.

mod cache;
mod candidate;
mod context;
mod error;
mod evaluate;
mod frontier;
mod health;
mod journal;
mod multi_tier;
mod parallel;
mod sensitivity;
#[cfg(test)]
mod test_fixtures;
mod tier_search;

pub use cache::CachingEngine;
pub use candidate::{enumerate_settings, enumerate_tier_candidates, SearchOptions};
pub use context::EvalContext;
pub use error::SearchError;
pub use evaluate::{
    evaluate_enterprise_design, evaluate_enterprise_design_in, evaluate_job_design,
    evaluate_job_design_in, EvaluatedDesign,
};
pub use frontier::{
    job_frontier, job_frontier_with_health, tier_pareto_frontier, tier_pareto_frontier_with_health,
};
pub use health::{SearchHealth, SkippedCandidate};
pub use journal::{enterprise_key, job_key, JournalReplay, ReplayEntry, SweepJournal};
pub use multi_tier::{search_service, search_service_with_health, ServiceDesign};
pub use parallel::{effective_jobs, parallel_map, parallel_map_with};
pub use sensitivity::{mtbf_sensitivity, scale_mtbfs, SensitivityRow};
pub use tier_search::{search_job_tier, search_tier, SearchOutcome, SearchStats};
