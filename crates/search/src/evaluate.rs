//! Attaching cost, availability and completion time to a candidate design.

use aved_avail::{derive_tier_model, loss_window, EvalHealth, EvalSession, TierAvailability};
use aved_jobtime::JobParams;
use aved_model::{tier_design_cost, ResourceOption, TierDesign};
use aved_units::{Duration, Money};

use crate::{EvalContext, SearchError};

/// A candidate tier design together with its evaluation results.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedDesign {
    design: TierDesign,
    cost: Money,
    availability: TierAvailability,
    min_for_perf: u32,
    expected_job_time: Option<Duration>,
    health: EvalHealth,
}

impl EvaluatedDesign {
    /// The resolved design.
    #[must_use]
    pub fn design(&self) -> &TierDesign {
        &self.design
    }

    /// Annual cost of the design.
    #[must_use]
    pub fn cost(&self) -> Money {
        self.cost
    }

    /// The tier's availability evaluation.
    #[must_use]
    pub fn availability(&self) -> &TierAvailability {
        &self.availability
    }

    /// Expected annual downtime (convenience).
    #[must_use]
    pub fn annual_downtime(&self) -> Duration {
        self.availability.annual_downtime()
    }

    /// The minimum active resources required by the performance model
    /// (the `m` fed to the availability model under dynamic sizing).
    #[must_use]
    pub fn min_for_perf(&self) -> u32 {
        self.min_for_perf
    }

    /// Extra active resources beyond the performance minimum (the paper's
    /// `n_extra`, one of the family coordinates in Fig. 6).
    #[must_use]
    pub fn n_extra(&self) -> u32 {
        self.design.n_active().saturating_sub(self.min_for_perf)
    }

    /// The expected job completion time, for finite-job evaluations.
    #[must_use]
    pub fn expected_job_time(&self) -> Option<Duration> {
        self.expected_job_time
    }

    /// How degraded this candidate's availability evaluation was (solver
    /// fallbacks taken, worst accepted residual).
    #[must_use]
    pub fn eval_health(&self) -> EvalHealth {
        self.health
    }

    /// Reassembles an evaluated design from previously-recorded parts —
    /// the journal-replay path, where every metric was validated when it
    /// was first evaluated and is restored bit-for-bit.
    pub(crate) fn from_parts(
        design: TierDesign,
        cost: Money,
        availability: TierAvailability,
        min_for_perf: u32,
        expected_job_time: Option<Duration>,
        health: EvalHealth,
    ) -> EvaluatedDesign {
        EvaluatedDesign {
            design,
            cost,
            availability,
            min_for_perf,
            expected_job_time,
            health,
        }
    }

    /// Assembles an evaluated design directly from parts, bypassing every
    /// engine and finiteness guard. Test-only: lets guard tests feed
    /// deliberately-broken metrics to downstream code.
    #[cfg(test)]
    pub(crate) fn for_tests(
        design: TierDesign,
        cost: Money,
        availability: TierAvailability,
        expected_job_time: Option<Duration>,
    ) -> EvaluatedDesign {
        EvaluatedDesign {
            design,
            cost,
            availability,
            min_for_perf: 1,
            expected_job_time,
            health: EvalHealth::default(),
        }
    }
}

/// Rejects NaN/∞ evaluation metrics before they can reach a frontier or
/// best-so-far comparison, where they would silently corrupt the ordering.
fn ensure_finite(metric: &str, value: f64) -> Result<(), SearchError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(SearchError::NonFiniteEvaluation {
            detail: format!("{metric} = {value}"),
        })
    }
}

/// Evaluates a candidate design of an enterprise-service tier under a
/// throughput requirement (`load`): computes the cost, derives the
/// availability model (with `m` from the performance function) and runs
/// the context's availability engine.
///
/// Returns `Ok(None)` when the design cannot meet the load at all (too few
/// active resources).
///
/// # Errors
///
/// Returns [`SearchError`] for unresolvable references or engine failures.
pub fn evaluate_enterprise_design(
    ctx: &EvalContext<'_>,
    option: &ResourceOption,
    td: &TierDesign,
    load: f64,
) -> Result<Option<EvaluatedDesign>, SearchError> {
    evaluate_enterprise_design_in(ctx, option, td, load, &mut EvalSession::new())
}

/// [`evaluate_enterprise_design`] with a caller-owned [`EvalSession`]: the
/// session carries solver scratch, cached chain structure and warm-start
/// state across calls, so sweeps over neighboring designs (the search
/// workers' locality-ordered shards) avoid re-exploring and re-solving from
/// scratch. The result is identical to the session-free path.
///
/// # Errors
///
/// Returns [`SearchError`] for unresolvable references or engine failures.
pub fn evaluate_enterprise_design_in(
    ctx: &EvalContext<'_>,
    option: &ResourceOption,
    td: &TierDesign,
    load: f64,
    session: &mut EvalSession,
) -> Result<Option<EvaluatedDesign>, SearchError> {
    let perf = ctx.catalog().resolve_perf(option.performance())?;
    let Some(min_for_perf) = perf.min_active_for(load) else {
        return Ok(None);
    };
    if td.n_active() < min_for_perf {
        return Ok(None);
    }
    let cost = tier_design_cost(ctx.infrastructure(), td)?.total();
    ensure_finite("cost", cost.dollars())?;
    let model = derive_tier_model(
        ctx.infrastructure(),
        td,
        option.sizing(),
        option.failure_scope(),
        min_for_perf,
    )?;
    let (availability, health) = ctx.engine().evaluate_with_session(&model, session)?;
    ensure_finite("unavailability", availability.unavailability())?;
    Ok(Some(EvaluatedDesign {
        design: td.clone(),
        cost,
        availability,
        min_for_perf,
        expected_job_time: None,
        health,
    }))
}

/// Evaluates a candidate design of a finite-job tier: cost, availability,
/// and the expected job completion time per §4.2 (loss-window
/// re-execution, checkpoint overhead, downtime scaling).
///
/// Returns `Ok(None)` when the option's performance function yields zero
/// throughput at the design's node count.
///
/// # Errors
///
/// Returns [`SearchError::RequirementMismatch`] when the service declares
/// no job size, or other [`SearchError`] variants for reference/engine
/// failures.
pub fn evaluate_job_design(
    ctx: &EvalContext<'_>,
    option: &ResourceOption,
    td: &TierDesign,
) -> Result<Option<EvaluatedDesign>, SearchError> {
    evaluate_job_design_in(ctx, option, td, &mut EvalSession::new())
}

/// [`evaluate_job_design`] with a caller-owned [`EvalSession`] — the
/// finite-job analogue of [`evaluate_enterprise_design_in`].
///
/// # Errors
///
/// Returns [`SearchError::RequirementMismatch`] when the service declares
/// no job size, or other [`SearchError`] variants for reference/engine
/// failures.
pub fn evaluate_job_design_in(
    ctx: &EvalContext<'_>,
    option: &ResourceOption,
    td: &TierDesign,
    session: &mut EvalSession,
) -> Result<Option<EvaluatedDesign>, SearchError> {
    let job_size = ctx
        .service()
        .job_size()
        .ok_or_else(|| SearchError::RequirementMismatch {
            detail: "service declares no jobsize; use evaluate_enterprise_design".into(),
        })?;
    let perf = ctx.catalog().resolve_perf(option.performance())?;
    let throughput = perf.throughput(td.n_active());
    if throughput <= 0.0 {
        return Ok(None);
    }
    let cost = tier_design_cost(ctx.infrastructure(), td)?.total();
    ensure_finite("cost", cost.dollars())?;
    let model = derive_tier_model(
        ctx.infrastructure(),
        td,
        option.sizing(),
        option.failure_scope(),
        td.n_active(),
    )?;
    let (availability, health) = ctx.engine().evaluate_with_session(&model, session)?;
    ensure_finite("unavailability", availability.unavailability())?;

    // Failure-free computation time, inflated by checkpoint overhead when
    // the option uses a checkpoint mechanism with an mperformance function.
    let base_hours = job_size / throughput;
    let mut multiplier = 1.0;
    for mu in option.mechanisms() {
        let Some(mperf_name) = mu.mperformance() else {
            continue;
        };
        let mperf = ctx.catalog().resolve_mperf(mperf_name)?;
        let storage = match td.setting(mu.mechanism().as_str(), "storage_location") {
            Some(aved_model::ParamValue::Level(l)) => l
                .parse()
                .map_err(|e: String| SearchError::RequirementMismatch { detail: e })?,
            _ => aved_perf::StorageLocation::Central,
        };
        let interval = match td.setting(mu.mechanism().as_str(), "checkpoint_interval") {
            Some(aved_model::ParamValue::Duration(d)) => *d,
            _ => {
                return Err(SearchError::RequirementMismatch {
                    detail: format!("design does not set {}.checkpoint_interval", mu.mechanism()),
                })
            }
        };
        multiplier *= mperf.multiplier(storage, interval, td.n_active());
    }
    let work_time = Duration::from_hours(base_hours * multiplier);

    let lw = loss_window(ctx.infrastructure(), td)?;
    let system_mtbf = model.tier_failure_rate().mean_time();
    let mut params = JobParams::new(work_time)
        .with_uptime_fraction(availability.availability().max(f64::MIN_POSITIVE));
    if system_mtbf.seconds().is_finite() && !system_mtbf.is_zero() {
        params = params.with_system_mtbf(system_mtbf);
    }
    if let Some(lw) = lw {
        params = params.with_loss_window(lw);
    }
    let expected = params.expected_completion();
    ensure_finite("expected job time", expected.seconds())?;

    Ok(Some(EvaluatedDesign {
        design: td.clone(),
        cost,
        availability,
        min_for_perf: td.n_active(),
        expected_job_time: Some(expected),
        health,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{app_tier_fixture, job_fixture};
    use aved_avail::CtmcEngine;
    use aved_model::{ParamValue, SpareMode};

    #[test]
    fn enterprise_evaluation_produces_cost_and_downtime() {
        let fx = app_tier_fixture();
        let engine = CtmcEngine::default();
        let ctx = fx.context(&engine);
        let option = ctx.tier("application").unwrap().option_for("rC").unwrap();
        let td = TierDesign::new("application", "rC", 3, 0).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("bronze".into()),
        );
        let e = evaluate_enterprise_design(&ctx, option, &td, 400.0)
            .unwrap()
            .unwrap();
        // 3 machines + apps + 3 bronze contracts.
        assert_eq!(e.cost().dollars(), 3.0 * (2640.0 + 1700.0) + 3.0 * 380.0);
        assert_eq!(e.min_for_perf(), 2);
        assert_eq!(e.n_extra(), 1);
        assert!(e.annual_downtime().minutes() > 0.0);
        assert!(e.expected_job_time().is_none());
    }

    #[test]
    fn insufficient_actives_is_not_a_candidate() {
        let fx = app_tier_fixture();
        let engine = CtmcEngine::default();
        let ctx = fx.context(&engine);
        let option = ctx.tier("application").unwrap().option_for("rC").unwrap();
        let td = TierDesign::new("application", "rC", 2, 0).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("bronze".into()),
        );
        // load 1000 needs 5 rC machines.
        assert!(evaluate_enterprise_design(&ctx, option, &td, 1000.0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn better_contract_reduces_downtime_and_raises_cost() {
        let fx = app_tier_fixture();
        let engine = CtmcEngine::default();
        let ctx = fx.context(&engine);
        let option = ctx.tier("application").unwrap().option_for("rC").unwrap();
        let mk = |level: &str| {
            let td = TierDesign::new("application", "rC", 2, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level(level.into()),
            );
            evaluate_enterprise_design(&ctx, option, &td, 400.0)
                .unwrap()
                .unwrap()
        };
        let bronze = mk("bronze");
        let platinum = mk("platinum");
        assert!(platinum.cost() > bronze.cost());
        assert!(platinum.annual_downtime() < bronze.annual_downtime());
    }

    #[test]
    fn job_evaluation_produces_completion_time() {
        let fx = job_fixture();
        let engine = CtmcEngine::default();
        let ctx = fx.context(&engine);
        let option = ctx.tier("computation").unwrap().option_for("rH").unwrap();
        let td = TierDesign::new("computation", "rH", 50, 1)
            .with_spare_mode(SpareMode::AllInactive)
            .with_setting("maintenanceA", "level", ParamValue::Level("bronze".into()))
            .with_setting(
                "checkpoint",
                "storage_location",
                ParamValue::Level("peer".into()),
            )
            .with_setting(
                "checkpoint",
                "checkpoint_interval",
                ParamValue::Duration(aved_units::Duration::from_hours(1.0)),
            );
        let e = evaluate_job_design(&ctx, option, &td).unwrap().unwrap();
        let t = e.expected_job_time().unwrap();
        // Failure-free time: 10000 / (10*50/1.2) = 24 h; overheads push it up.
        assert!(t.hours() > 24.0, "got {}", t.hours());
        assert!(t.hours() < 40.0, "got {}", t.hours());
    }

    #[test]
    fn shorter_checkpoint_interval_trades_overhead_for_loss() {
        let fx = job_fixture();
        let engine = CtmcEngine::default();
        let ctx = fx.context(&engine);
        let option = ctx.tier("computation").unwrap().option_for("rH").unwrap();
        let eval = |mins: f64| {
            let td = TierDesign::new("computation", "rH", 50, 0)
                .with_setting("maintenanceA", "level", ParamValue::Level("bronze".into()))
                .with_setting(
                    "checkpoint",
                    "storage_location",
                    ParamValue::Level("peer".into()),
                )
                .with_setting(
                    "checkpoint",
                    "checkpoint_interval",
                    ParamValue::Duration(aved_units::Duration::from_mins(mins)),
                );
            evaluate_job_design(&ctx, option, &td)
                .unwrap()
                .unwrap()
                .expected_job_time()
                .unwrap()
        };
        // Very short intervals drown in checkpoint overhead; very long ones
        // in re-execution. An intermediate interval beats both.
        let short = eval(1.0);
        let mid = eval(120.0);
        let long = eval(1440.0);
        assert!(mid < short, "mid {} short {}", mid.hours(), short.hours());
        assert!(mid < long, "mid {} long {}", mid.hours(), long.hours());
    }

    #[test]
    fn nan_engine_results_are_rejected_before_any_comparison() {
        let fx = app_tier_fixture();
        let inner = CtmcEngine::default();
        let engine = aved_avail::FaultInjectingEngine::new(&inner)
            .with_fault_at(0, aved_avail::InjectedFault::NanResult);
        let ctx = fx.context(&engine);
        let option = ctx.tier("application").unwrap().option_for("rC").unwrap();
        let td = TierDesign::new("application", "rC", 3, 0).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("bronze".into()),
        );
        assert!(matches!(
            evaluate_enterprise_design(&ctx, option, &td, 400.0),
            Err(SearchError::NonFiniteEvaluation { .. })
        ));
    }

    #[test]
    fn job_requires_jobsize() {
        let fx = app_tier_fixture();
        let engine = CtmcEngine::default();
        let ctx = fx.context(&engine);
        let option = ctx.tier("application").unwrap().option_for("rC").unwrap();
        let td = TierDesign::new("application", "rC", 2, 0).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("bronze".into()),
        );
        assert!(matches!(
            evaluate_job_design(&ctx, option, &td),
            Err(SearchError::RequirementMismatch { .. })
        ));
    }
}
