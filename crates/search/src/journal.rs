//! Checkpoint/restart for design sweeps: an append-only evaluation journal.
//!
//! A sweep that is killed — by a deadline, a signal, or a crash — has
//! already paid for every candidate it evaluated. [`SweepJournal`] persists
//! those evaluations as they complete: one JSONL record per candidate,
//! keyed by everything that determines the evaluation's result (tier,
//! load, and the full resolved design), with every floating-point metric
//! stored as its IEEE-754 bit pattern so a replay is *bit-identical*, not
//! merely close. [`JournalReplay`] loads a journal back and the search
//! loops consult it before evaluating: a hit skips the solver entirely and
//! reconstructs the recorded [`EvaluatedDesign`](crate::EvaluatedDesign).
//!
//! The format is deliberately dumb: a header line, then one self-contained
//! JSON object per line. Appends are buffered and fsynced every
//! [`FLUSH_INTERVAL`] records (and on drop), so a kill loses at most the
//! tail batch; the loader tolerates a truncated final line, which is
//! exactly what a mid-write kill produces.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use aved_avail::{AvailError, EvalHealth, TierAvailability};
use aved_model::TierDesign;
use aved_units::{Duration, Money, Rate};

use crate::{EvaluatedDesign, SearchError};

/// Records between explicit `flush` + `sync_data` calls. Small enough that
/// a kill loses at most a moment of work, large enough that the fsync cost
/// disappears behind the solves.
const FLUSH_INTERVAL: usize = 64;

/// First line of every journal; replay refuses files without it.
const HEADER: &str = r#"{"format":"aved-sweep-journal","version":1}"#;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`json_escape`]. Returns `None` on malformed escapes.
fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extracts the *escaped* body of `"name":"..."` from a record line, or
/// `None` when the field is absent. Substring search is sound because
/// every emitted string value is escaped: a literal `"name":"` can never
/// appear inside one.
fn raw_str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(&rest[..i]);
        }
    }
    None
}

fn str_field(line: &str, name: &str) -> Option<String> {
    json_unescape(raw_str_field(line, name)?)
}

fn u64_field(line: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A f64 encoded as its exact bit pattern (16 lowercase hex digits).
fn bits_field(line: &str, name: &str) -> Option<f64> {
    let raw = raw_str_field(line, name)?;
    if raw.len() != 16 {
        return None;
    }
    u64::from_str_radix(raw, 16).ok().map(f64::from_bits)
}

fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// The journal key of one enterprise-tier candidate: everything that
/// determines its evaluation result. The load enters as exact bits (the
/// performance minimum depends on it); the downtime requirement does not
/// (it only selects among results, never changes them).
#[must_use]
pub fn enterprise_key(tier: &str, load: f64, td: &TierDesign) -> String {
    format!("e|{tier}|{}|{td:?}", bits(load))
}

/// The journal key of one finite-job-tier candidate.
#[must_use]
pub fn job_key(tier: &str, td: &TierDesign) -> String {
    format!("j|{tier}|{td:?}")
}

/// One replayed candidate outcome, decoded from a journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayEntry {
    /// The candidate evaluated successfully; all metrics as recorded bits.
    Design {
        /// Annual cost, exact bits.
        cost: f64,
        /// Steady-state unavailability, exact bits.
        unavailability: f64,
        /// Down-event rate (per hour), exact bits.
        event_rate: f64,
        /// The performance-model minimum active count.
        min_for_perf: u32,
        /// Expected job completion time in seconds, for job candidates.
        job_time: Option<f64>,
        /// Solver fallbacks the evaluation took.
        fallbacks: u32,
        /// Worst accepted balance residual, when measured.
        worst_residual: Option<f64>,
    },
    /// The candidate was evaluated and rejected as not-a-candidate (e.g.
    /// too few actives for the load).
    Rejected,
    /// The candidate's evaluation failed; the rendered error.
    Failed {
        /// The recorded error message.
        error: String,
    },
}

impl ReplayEntry {
    fn from_line(line: &str) -> Option<(String, ReplayEntry)> {
        let key = str_field(line, "key")?;
        let entry = match raw_str_field(line, "outcome")? {
            "design" => ReplayEntry::Design {
                cost: bits_field(line, "cost")?,
                unavailability: bits_field(line, "unavailability")?,
                event_rate: bits_field(line, "event_rate")?,
                min_for_perf: u32::try_from(u64_field(line, "min_for_perf")?).ok()?,
                job_time: bits_field(line, "job_time"),
                fallbacks: u32::try_from(u64_field(line, "fallbacks")?).ok()?,
                worst_residual: bits_field(line, "worst_residual"),
            },
            "rejected" => ReplayEntry::Rejected,
            "failed" => ReplayEntry::Failed {
                error: str_field(line, "error")?,
            },
            _ => return None,
        };
        Some((key, entry))
    }

    /// Reconstructs the evaluation result this entry recorded, for design
    /// `td`. Recorded failures come back as candidate-scoped availability
    /// errors so the isolation policy treats a replayed failure exactly
    /// like a live one; so do records whose decoded metrics are out of
    /// range (a corrupted journal must degrade to a skipped candidate,
    /// never a panic).
    pub(crate) fn into_result(
        self,
        td: &TierDesign,
    ) -> Result<Option<EvaluatedDesign>, SearchError> {
        fn corrupt(what: &str, value: f64) -> SearchError {
            SearchError::Avail(AvailError::InvalidModel {
                detail: format!("journal record holds an invalid {what} ({value})"),
            })
        }
        match self {
            ReplayEntry::Design {
                cost,
                unavailability,
                event_rate,
                min_for_perf,
                job_time,
                fallbacks,
                worst_residual,
            } => {
                if !(0.0..=1.0).contains(&unavailability) {
                    return Err(corrupt("unavailability", unavailability));
                }
                if event_rate.is_nan() || event_rate < 0.0 {
                    return Err(corrupt("event rate", event_rate));
                }
                if cost.is_nan() {
                    return Err(corrupt("cost", cost));
                }
                if let Some(t) = job_time {
                    if t.is_nan() || t < 0.0 {
                        return Err(corrupt("job time", t));
                    }
                }
                Ok(Some(EvaluatedDesign::from_parts(
                    td.clone(),
                    Money::from_dollars(cost),
                    TierAvailability::new(unavailability, Rate::per_hour(event_rate)),
                    min_for_perf,
                    job_time.map(Duration::from_secs),
                    EvalHealth {
                        fallbacks,
                        worst_residual,
                    },
                )))
            }
            ReplayEntry::Rejected => Ok(None),
            ReplayEntry::Failed { error } => Err(SearchError::Avail(AvailError::InvalidModel {
                detail: format!("replayed failure: {error}"),
            })),
        }
    }
}

/// Serializes one evaluation result as a journal line (without newline).
fn render_record(key: &str, result: &Result<Option<EvaluatedDesign>, SearchError>) -> String {
    let key = json_escape(key);
    match result {
        Ok(Some(e)) => {
            let mut line = format!(
                r#"{{"key":"{key}","outcome":"design","cost":"{}","unavailability":"{}","event_rate":"{}","min_for_perf":{},"fallbacks":{}"#,
                bits(e.cost().dollars()),
                bits(e.availability().unavailability()),
                bits(e.availability().down_event_rate().per_hour_value()),
                e.min_for_perf(),
                e.eval_health().fallbacks,
            );
            if let Some(t) = e.expected_job_time() {
                line.push_str(&format!(r#","job_time":"{}""#, bits(t.seconds())));
            }
            if let Some(r) = e.eval_health().worst_residual {
                line.push_str(&format!(r#","worst_residual":"{}""#, bits(r)));
            }
            line.push('}');
            line
        }
        Ok(None) => format!(r#"{{"key":"{key}","outcome":"rejected"}}"#),
        Err(e) => format!(
            r#"{{"key":"{key}","outcome":"failed","error":"{}"}}"#,
            json_escape(&e.to_string())
        ),
    }
}

struct JournalWriter {
    out: BufWriter<File>,
    unsynced: usize,
}

/// An append-only journal of candidate evaluations, written as the sweep
/// runs. Thread-compatible with the search loops: the writer lives behind
/// a mutex, but the search only appends from its single-threaded merge
/// fold, so there is no contention in practice.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    writer: Mutex<Option<JournalWriter>>,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("unsynced", &self.unsynced)
            .finish_non_exhaustive()
    }
}

impl SweepJournal {
    /// Creates (truncating) a journal at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<SweepJournal> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        writeln!(out, "{HEADER}")?;
        out.flush()?;
        Ok(SweepJournal {
            path,
            writer: Mutex::new(Some(JournalWriter { out, unsynced: 0 })),
        })
    }

    /// Where the journal lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one candidate outcome. I/O errors are swallowed after
    /// poisoning the writer: journaling is a best-effort safety net and
    /// must never fail the sweep it protects.
    pub(crate) fn record(&self, key: &str, result: &Result<Option<EvaluatedDesign>, SearchError>) {
        let line = render_record(key, result);
        let Ok(mut guard) = self.writer.lock() else {
            return;
        };
        let Some(w) = guard.as_mut() else {
            return; // an earlier I/O error retired the writer
        };
        let wrote = writeln!(w.out, "{line}").and_then(|()| {
            w.unsynced += 1;
            if w.unsynced >= FLUSH_INTERVAL {
                w.unsynced = 0;
                w.out.flush()?;
                w.out.get_ref().sync_data()?;
            }
            Ok(())
        });
        if wrote.is_err() {
            *guard = None;
        }
    }

    /// Flushes and fsyncs any buffered records.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the writer stays usable.
    pub fn flush(&self) -> std::io::Result<()> {
        let Ok(mut guard) = self.writer.lock() else {
            return Ok(());
        };
        if let Some(w) = guard.as_mut() {
            w.unsynced = 0;
            w.out.flush()?;
            w.out.get_ref().sync_data()?;
        }
        Ok(())
    }
}

impl Drop for SweepJournal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// A loaded journal: completed candidate evaluations keyed for replay.
///
/// Later records win over earlier ones for the same key (a resumed sweep
/// appending to a copy re-records replayed candidates; the values are
/// identical anyway). A truncated final line — the signature of a
/// mid-write kill — is silently dropped; any other malformed line is
/// counted in [`JournalReplay::malformed`] and skipped, so a corrupt
/// journal degrades to a smaller cache, never to a wrong answer.
#[derive(Debug, Default)]
pub struct JournalReplay {
    entries: HashMap<String, ReplayEntry>,
    malformed: usize,
}

impl JournalReplay {
    /// Loads a journal written by [`SweepJournal`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be read, or
    /// `InvalidData` when it does not start with the journal header.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<JournalReplay> {
        let file = File::open(path)?;
        let mut lines = BufReader::new(file).lines();
        match lines.next() {
            Some(Ok(first)) if first.trim() == HEADER => {}
            Some(Ok(other)) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("not a sweep journal (header {other:?})"),
                ));
            }
            Some(Err(e)) => return Err(e),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "empty file is not a sweep journal",
                ));
            }
        }
        let mut replay = JournalReplay::default();
        let mut pending: Vec<String> = lines.map_while(Result::ok).collect();
        // The last line of a killed writer may be half a record: drop it
        // silently when malformed instead of counting it as corruption.
        let last = pending.pop();
        for line in &pending {
            if line.trim().is_empty() {
                continue;
            }
            match ReplayEntry::from_line(line) {
                Some((key, entry)) => {
                    replay.entries.insert(key, entry);
                }
                None => replay.malformed += 1,
            }
        }
        if let Some(line) = last {
            if !line.trim().is_empty() {
                if let Some((key, entry)) = ReplayEntry::from_line(&line) {
                    replay.entries.insert(key, entry);
                }
            }
        }
        Ok(replay)
    }

    /// Number of replayable candidate records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the journal held no replayable records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Non-final malformed lines encountered while loading.
    #[must_use]
    pub fn malformed(&self) -> usize {
        self.malformed
    }

    /// Looks up a candidate by its journal key.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<&ReplayEntry> {
        self.entries.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("aved-journal-{}-{name}", std::process::id()));
        p
    }

    fn sample_design() -> EvaluatedDesign {
        EvaluatedDesign::from_parts(
            TierDesign::new("application", "rC", 3, 1),
            Money::from_dollars(1234.5),
            TierAvailability::new(1.2345e-4, Rate::per_hour(0.0625)),
            2,
            Some(Duration::from_hours(27.25)),
            EvalHealth {
                fallbacks: 1,
                worst_residual: Some(3.25e-12),
            },
        )
    }

    #[test]
    fn escape_round_trips_structure_characters() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab",
            "control\u{1}char",
            r#"TierDesign { tier: TierName("a"), n: 3 }"#,
        ] {
            assert_eq!(json_unescape(&json_escape(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn record_and_replay_are_bit_identical() {
        let path = tmp("roundtrip");
        let journal = SweepJournal::create(&path).unwrap();
        let e = sample_design();
        let key = enterprise_key("application", 800.0, e.design());
        journal.record(&key, &Ok(Some(e.clone())));
        journal.record(&job_key("computation", e.design()), &Ok(None));
        journal.record(
            "failing-key",
            &Err(SearchError::NonFiniteEvaluation {
                detail: "cost = NaN".into(),
            }),
        );
        journal.flush().unwrap();

        let replay = JournalReplay::load(&path).unwrap();
        assert_eq!(replay.len(), 3);
        assert_eq!(replay.malformed(), 0);

        let entry = replay.lookup(&key).expect("recorded key").clone();
        let replayed = entry.into_result(e.design()).unwrap().unwrap();
        assert_eq!(replayed.design(), e.design());
        assert_eq!(
            replayed.cost().dollars().to_bits(),
            e.cost().dollars().to_bits()
        );
        assert_eq!(
            replayed.availability().unavailability().to_bits(),
            e.availability().unavailability().to_bits()
        );
        assert_eq!(
            replayed.expected_job_time().unwrap().seconds().to_bits(),
            e.expected_job_time().unwrap().seconds().to_bits()
        );
        assert_eq!(replayed.min_for_perf(), 2);
        assert_eq!(replayed.eval_health().fallbacks, 1);
        assert_eq!(replayed.eval_health().worst_residual, Some(3.25e-12));

        assert_eq!(
            replay
                .lookup(&job_key("computation", e.design()))
                .cloned()
                .unwrap()
                .into_result(e.design())
                .unwrap(),
            None
        );
        let failed = replay.lookup("failing-key").cloned().unwrap();
        let err = failed.into_result(e.design()).unwrap_err();
        assert!(err.is_candidate_scoped(), "{err}");
        assert!(err.to_string().contains("cost = NaN"), "{err}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated");
        let journal = SweepJournal::create(&path).unwrap();
        let e = sample_design();
        let key = enterprise_key("application", 400.0, e.design());
        journal.record(&key, &Ok(Some(e.clone())));
        journal.record("other", &Ok(None));
        journal.flush().unwrap();
        drop(journal);

        // Chop the file mid-way through the final record, as a kill would.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 17]).unwrap();

        let replay = JournalReplay::load(&path).unwrap();
        assert_eq!(replay.len(), 1, "only the intact record survives");
        assert_eq!(replay.malformed(), 0, "a chopped tail is not corruption");
        assert!(replay.lookup(&key).is_some());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_files_are_rejected() {
        let path = tmp("not-a-journal");
        std::fs::write(&path, "just some text\n").unwrap();
        let err = JournalReplay::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keys_separate_tiers_loads_and_kinds() {
        let td = TierDesign::new("application", "rC", 2, 0);
        let a = enterprise_key("application", 400.0, &td);
        let b = enterprise_key("application", 800.0, &td);
        let c = enterprise_key("web", 400.0, &td);
        let d = job_key("application", &td);
        let keys = [&a, &b, &c, &d];
        for (i, x) in keys.iter().enumerate() {
            for y in keys.iter().skip(i + 1) {
                assert_ne!(x, y);
            }
        }
    }
}
