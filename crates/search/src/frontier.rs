//! Cost/quality Pareto frontiers — the data behind the paper's Figs. 6–8.
//!
//! Unlike the guided tier search, a frontier sweep must evaluate *every*
//! candidate (each one might be a frontier point), so no cost pruning
//! applies — but the evaluations are independent, which makes the sweep the
//! best-parallelizing entry point: candidates are enumerated serially,
//! evaluated across [`SearchOptions::jobs`] workers (each carrying a
//! warm-started [`aved_avail::EvalSession`] over its contiguous,
//! locality-ordered shard), and folded back in enumeration order, so the
//! frontier is identical at any worker count and with warm starts on or
//! off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use aved_avail::EvalSession;
use aved_units::Duration;

use crate::evaluate::{evaluate_enterprise_design_in, evaluate_job_design_in};
use crate::health::isolate_candidate;
use crate::journal::{enterprise_key, job_key};
use crate::parallel::{effective_jobs, parallel_map_with};
use crate::{
    enumerate_tier_candidates, EvalContext, EvaluatedDesign, SearchError, SearchHealth,
    SearchOptions,
};

/// What happened to one candidate of a frontier sweep, in the worker.
enum SweepOutcome {
    /// Skipped without evaluation: a worker already hit a fatal error
    /// (the fold surfaces it) or the sweep is stopping (the post-fold
    /// check records the interruption).
    Skipped,
    /// Restored bit-for-bit from the resume journal.
    Replayed(Result<Option<EvaluatedDesign>, SearchError>),
    /// Evaluated live.
    Evaluated(Result<Option<EvaluatedDesign>, SearchError>),
}

/// Raises the abort flag for fatal (or strict-mode) failures; a
/// cancellation is never fatal — it resolves into a clean interruption.
fn flag_fatal(
    result: &Result<Option<EvaluatedDesign>, SearchError>,
    strict: bool,
    abort: &AtomicBool,
) {
    if let Err(e) = result {
        if !e.is_cancellation() && (strict || !e.is_candidate_scoped()) {
            abort.store(true, Ordering::Relaxed);
        }
    }
}

/// Computes the cost/downtime Pareto frontier of one enterprise tier at a
/// fixed load: every design that is the cheapest way to reach its downtime
/// level, sorted by increasing cost (and hence decreasing downtime).
///
/// Fig. 6 of the paper is exactly this frontier swept over loads: for a
/// requirement point `(load, downtime)` the optimal design family is the
/// first frontier entry whose downtime is below the requirement. Fig. 8's
/// cost-of-availability curves read off the same frontier.
///
/// # Errors
///
/// Returns [`SearchError`] for unknown tiers, or for evaluation failures
/// in strict mode.
pub fn tier_pareto_frontier(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    load: f64,
    options: &SearchOptions,
) -> Result<Vec<EvaluatedDesign>, SearchError> {
    tier_pareto_frontier_with_health(ctx, tier_name, load, options).map(|(f, _)| f)
}

/// Like [`tier_pareto_frontier`], additionally reporting the sweep's
/// [`SearchHealth`] (candidates skipped after evaluation failures, solver
/// fallbacks, worst accepted residual, wall time).
///
/// # Errors
///
/// Returns [`SearchError`] for unknown tiers, or for evaluation failures
/// in strict mode.
pub fn tier_pareto_frontier_with_health(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    load: f64,
    options: &SearchOptions,
) -> Result<(Vec<EvaluatedDesign>, SearchHealth), SearchError> {
    let started = Instant::now();
    let tier = ctx.tier(tier_name)?;
    let deadline = options.deadline_from(started);
    let budget = options.eval_budget(deadline);
    let jobs = effective_jobs(options.jobs);
    let mut health = SearchHealth {
        jobs,
        ..SearchHealth::default()
    };

    let mut items: Vec<(&aved_model::ResourceOption, aved_model::TierDesign)> = Vec::new();
    for option in tier.options() {
        let perf = ctx.catalog().resolve_perf(option.performance())?;
        let Some(min_perf) = perf.min_active_for(load) else {
            continue;
        };
        let Some(start_active) = option.n_active().next_at_or_above(min_perf.max(1)) else {
            continue;
        };
        for n_total in start_active..=start_active + options.max_extra_active + options.max_spares {
            items.extend(
                enumerate_tier_candidates(
                    ctx.infrastructure(),
                    tier.name(),
                    option,
                    n_total,
                    start_active,
                    options,
                )
                .into_iter()
                .map(|td| (option, td)),
            );
        }
    }
    health.enumeration_time = started.elapsed();

    let solving = Instant::now();
    let abort = AtomicBool::new(false);
    let mut sessions: Vec<EvalSession> = (0..jobs.max(1))
        .map(|_| EvalSession::new().with_budget(budget.clone()))
        .collect();
    let outcomes = parallel_map_with(jobs, &mut sessions, &items, |session, _, (option, td)| {
        if abort.load(Ordering::Relaxed) || options.stop_requested(deadline) {
            return SweepOutcome::Skipped;
        }
        if let Some(replay) = &options.resume {
            if let Some(entry) = replay.lookup(&enterprise_key(tier_name, load, td)) {
                let result = entry.clone().into_result(td);
                flag_fatal(&result, options.strict, &abort);
                return SweepOutcome::Replayed(result);
            }
        }
        let mut cold = EvalSession::new().with_budget(budget.clone());
        let session = if options.warm_start {
            session
        } else {
            &mut cold
        };
        let result = evaluate_enterprise_design_in(ctx, option, td, load, session);
        flag_fatal(&result, options.strict, &abort);
        SweepOutcome::Evaluated(result)
    });
    for session in &sessions {
        health.absorb_session(session.stats());
    }
    health.solve_time = solving.elapsed();

    let merging = Instant::now();
    let mut all: Vec<EvaluatedDesign> = Vec::new();
    for ((_, td), outcome) in items.iter().zip(outcomes) {
        let (result, replayed) = match outcome {
            SweepOutcome::Skipped => continue,
            SweepOutcome::Replayed(r) => (r, true),
            SweepOutcome::Evaluated(r) => (r, false),
        };
        if matches!(&result, Err(e) if e.is_cancellation()) {
            continue;
        }
        if replayed {
            health.journal_replayed += 1;
        }
        if matches!(&result, Err(e) if e.is_budget_exhaustion()) {
            health.budget_exhausted += 1;
        }
        if let Some(journal) = &options.journal {
            journal.record(&enterprise_key(tier_name, load, td), &result);
        }
        if let Some(e) = isolate_candidate(result, options.strict, &mut health, td)? {
            all.push(e);
        }
    }
    if options.stop_requested(deadline) {
        health.interrupted = true;
    }
    let frontier = pareto_by(all, |e| e.annual_downtime());
    health.merge_time = merging.elapsed();
    health.wall_time = started.elapsed();
    Ok((frontier, health))
}

/// Computes the cost/completion-time Pareto frontier of a finite-job tier
/// over an explicit grid of node counts (Fig. 7): every design that is the
/// cheapest way to reach its expected execution time.
///
/// The caller supplies the totals grid so sweeps can trade resolution for
/// time; the paper's Fig. 7 spans 1–1000 resources.
///
/// # Errors
///
/// Returns [`SearchError`] for unknown tiers, missing job size, or
/// evaluation failures in strict mode.
pub fn job_frontier(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    totals: &[u32],
    options: &SearchOptions,
) -> Result<Vec<EvaluatedDesign>, SearchError> {
    job_frontier_with_health(ctx, tier_name, totals, options).map(|(f, _)| f)
}

/// Like [`job_frontier`], additionally reporting the sweep's
/// [`SearchHealth`].
///
/// # Errors
///
/// Returns [`SearchError`] for unknown tiers, missing job size, or
/// evaluation failures in strict mode.
pub fn job_frontier_with_health(
    ctx: &EvalContext<'_>,
    tier_name: &str,
    totals: &[u32],
    options: &SearchOptions,
) -> Result<(Vec<EvaluatedDesign>, SearchHealth), SearchError> {
    let started = Instant::now();
    let tier = ctx.tier(tier_name)?;
    let deadline = options.deadline_from(started);
    let budget = options.eval_budget(deadline);
    let jobs = effective_jobs(options.jobs);
    let mut health = SearchHealth {
        jobs,
        ..SearchHealth::default()
    };

    let mut items: Vec<(&aved_model::ResourceOption, aved_model::TierDesign)> = Vec::new();
    for option in tier.options() {
        for &n_total in totals {
            if n_total == 0 {
                continue;
            }
            items.extend(
                enumerate_tier_candidates(
                    ctx.infrastructure(),
                    tier.name(),
                    option,
                    n_total,
                    1,
                    options,
                )
                .into_iter()
                .map(|td| (option, td)),
            );
        }
    }
    health.enumeration_time = started.elapsed();

    let solving = Instant::now();
    let abort = AtomicBool::new(false);
    let mut sessions: Vec<EvalSession> = (0..jobs.max(1))
        .map(|_| EvalSession::new().with_budget(budget.clone()))
        .collect();
    let outcomes = parallel_map_with(jobs, &mut sessions, &items, |session, _, (option, td)| {
        if abort.load(Ordering::Relaxed) || options.stop_requested(deadline) {
            return SweepOutcome::Skipped;
        }
        if let Some(replay) = &options.resume {
            if let Some(entry) = replay.lookup(&job_key(tier_name, td)) {
                let result = entry.clone().into_result(td);
                flag_fatal(&result, options.strict, &abort);
                return SweepOutcome::Replayed(result);
            }
        }
        let mut cold = EvalSession::new().with_budget(budget.clone());
        let session = if options.warm_start {
            session
        } else {
            &mut cold
        };
        let result = evaluate_job_design_in(ctx, option, td, session);
        flag_fatal(&result, options.strict, &abort);
        SweepOutcome::Evaluated(result)
    });
    for session in &sessions {
        health.absorb_session(session.stats());
    }
    health.solve_time = solving.elapsed();

    let merging = Instant::now();
    let mut all: Vec<EvaluatedDesign> = Vec::new();
    for ((_, td), outcome) in items.iter().zip(outcomes) {
        let (result, replayed) = match outcome {
            SweepOutcome::Skipped => continue,
            SweepOutcome::Replayed(r) => (r, true),
            SweepOutcome::Evaluated(r) => (r, false),
        };
        if matches!(&result, Err(e) if e.is_cancellation()) {
            continue;
        }
        if replayed {
            health.journal_replayed += 1;
        }
        if matches!(&result, Err(e) if e.is_budget_exhaustion()) {
            health.budget_exhausted += 1;
        }
        if let Some(journal) = &options.journal {
            journal.record(&job_key(tier_name, td), &result);
        }
        if let Some(e) = isolate_candidate(result, options.strict, &mut health, td)? {
            all.push(e);
        }
    }
    if options.stop_requested(deadline) {
        health.interrupted = true;
    }
    // Job evaluations always carry a completion time; should one ever
    // not, ranking it last keeps it off the frontier.
    let frontier = pareto_by(all, |e| {
        e.expected_job_time()
            .unwrap_or(Duration::from_secs(f64::INFINITY))
    });
    health.merge_time = merging.elapsed();
    health.wall_time = started.elapsed();
    Ok((frontier, health))
}

/// Keeps the Pareto-optimal designs under (cost, quality) where smaller is
/// better for both, sorted by increasing cost. Ties in quality keep the
/// cheaper design; ties in cost keep the better quality.
fn pareto_by<F>(mut all: Vec<EvaluatedDesign>, quality: F) -> Vec<EvaluatedDesign>
where
    F: Fn(&EvaluatedDesign) -> Duration,
{
    // The evaluation layer guarantees finite metrics (NaN/∞ results become
    // errors and the candidate is skipped); this is the last line of
    // defense in front of the ordering.
    debug_assert!(
        all.iter()
            .all(|e| e.cost().dollars().is_finite() && !quality(e).seconds().is_nan()),
        "non-finite metric reached the frontier comparison"
    );
    all.sort_by(|a, b| {
        a.cost()
            .total_cmp(&b.cost())
            .then_with(|| quality(a).seconds().total_cmp(&quality(b).seconds()))
    });
    let mut frontier: Vec<EvaluatedDesign> = Vec::new();
    let mut best_quality: Option<Duration> = None;
    for e in all {
        let q = quality(&e);
        if best_quality.is_none_or(|b| q < b) {
            best_quality = Some(q);
            frontier.push(e);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{app_tier_fixture, job_fixture};
    use crate::CachingEngine;
    use aved_avail::DecompositionEngine;
    use aved_model::ParamValue;

    fn small_opts() -> SearchOptions {
        SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn frontier_is_monotone() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let frontier = tier_pareto_frontier(&ctx, "application", 800.0, &small_opts()).unwrap();
        assert!(frontier.len() >= 3, "frontier should have several steps");
        for pair in frontier.windows(2) {
            assert!(pair[0].cost() < pair[1].cost());
            assert!(pair[0].annual_downtime() > pair[1].annual_downtime());
        }
    }

    #[test]
    fn frontier_first_entry_is_min_cost_design() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let frontier = tier_pareto_frontier(&ctx, "application", 400.0, &small_opts()).unwrap();
        let first = &frontier[0];
        // Minimum cost: 2 rC machines, bronze, nothing else.
        assert_eq!(first.design().resource().as_str(), "rC");
        assert_eq!(first.design().n_active(), 2);
        assert_eq!(first.design().n_spare(), 0);
        assert_eq!(
            first.design().setting("maintenanceA", "level"),
            Some(&ParamValue::Level("bronze".into()))
        );
    }

    /// One frontier-vs-search disagreement: which downtime budget, and what
    /// each method produced. Collected across every probed budget so a
    /// failure reports the full disagreement pattern, not just the first
    /// divergence.
    #[derive(Debug)]
    #[allow(dead_code)] // fields exist for the Debug output in the assert
    struct FrontierMismatch {
        budget_mins: f64,
        kind: &'static str,
        frontier: Option<String>,
        search: Option<String>,
    }

    #[test]
    fn frontier_lookup_matches_search() {
        // The min-cost design for a downtime requirement is the first
        // frontier entry meeting it.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let o = small_opts();
        let load = 1000.0;
        let frontier = tier_pareto_frontier(&ctx, "application", load, &o).unwrap();
        let mut mismatches: Vec<FrontierMismatch> = Vec::new();
        for budget_mins in [20.0, 100.0, 1000.0] {
            let budget = aved_units::Duration::from_mins(budget_mins);
            let via_frontier = frontier.iter().find(|e| e.annual_downtime() <= budget);
            let via_search = crate::search_tier(&ctx, "application", load, budget, &o).unwrap();
            let describe =
                |e: &crate::EvaluatedDesign| format!("{:?} at ${}", e.design(), e.cost().dollars());
            match (via_frontier, via_search.best()) {
                (Some(a), Some(b)) if a.cost() == b.cost() => {}
                (None, None) => {}
                (a, b) => mismatches.push(FrontierMismatch {
                    budget_mins,
                    kind: match (&a, &b) {
                        (Some(_), Some(_)) => "different cost",
                        (Some(_), None) => "search missed a feasible design",
                        (None, Some(_)) => "frontier missed a feasible design",
                        (None, None) => unreachable!(),
                    },
                    frontier: a.map(&describe),
                    search: b.map(describe),
                }),
            }
        }
        assert!(
            mismatches.is_empty(),
            "frontier and search disagree at {} of 3 budgets:\n{mismatches:#?}",
            mismatches.len()
        );
    }

    #[test]
    fn machineb_is_dominated_in_application_tier() {
        // The paper: "the more powerful machineB is never selected" for the
        // linearly-scaling application tier.
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        // Fig. 6 plots downtimes from 0.1 to 10,000 minutes; within that
        // practical range machineA designs dominate. (Below 0.1 min/yr the
        // model's lack of common-mode failures lets exotic machineB designs
        // appear at the frontier's extreme tail — outside the paper's
        // plotted range.)
        for load in [400.0, 1600.0, 3200.0] {
            let frontier = tier_pareto_frontier(&ctx, "application", load, &small_opts()).unwrap();
            for e in frontier
                .iter()
                .filter(|e| e.annual_downtime().minutes() >= 0.1)
            {
                let r = e.design().resource().as_str();
                assert!(
                    r == "rC" || r == "rD",
                    "machineB-based {r} appeared on the frontier at load {load} with downtime {} min",
                    e.annual_downtime().minutes()
                );
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite metric")]
    fn infinite_cost_trips_the_frontier_guard() {
        use aved_avail::TierAvailability;
        let e = EvaluatedDesign::for_tests(
            aved_model::TierDesign::new("t", "r", 1, 0),
            aved_units::Money::from_dollars(f64::INFINITY),
            TierAvailability::new(0.5, aved_units::Rate::ZERO),
            None,
        );
        let _ = pareto_by(vec![e], |e| e.annual_downtime());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_downtime_cannot_even_be_constructed() {
        // NaN quality can never reach pareto_by: the unit types reject NaN
        // at construction, one layer below the frontier's own debug guard.
        use aved_avail::TierAvailability;
        let e = EvaluatedDesign::for_tests(
            aved_model::TierDesign::new("t", "r", 1, 0),
            aved_units::Money::from_dollars(1.0),
            TierAvailability::new_unchecked(f64::NAN, aved_units::Rate::ZERO),
            None,
        );
        let _ = e.annual_downtime();
    }

    #[test]
    fn frontier_with_health_reports_a_clean_sweep() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let (frontier, health) =
            tier_pareto_frontier_with_health(&ctx, "application", 800.0, &small_opts()).unwrap();
        assert!(!frontier.is_empty());
        assert!(!health.is_degraded());
        assert_eq!(health.candidates_skipped(), 0);
        assert!(health.wall_time > std::time::Duration::ZERO);
    }

    #[test]
    fn warm_start_toggle_leaves_the_frontier_bit_identical() {
        let fx = app_tier_fixture();
        let engine = DecompositionEngine::default();
        let ctx = fx.context(&engine);
        let (warm, wh) =
            tier_pareto_frontier_with_health(&ctx, "application", 800.0, &small_opts()).unwrap();
        let (cold, ch) = tier_pareto_frontier_with_health(
            &ctx,
            "application",
            800.0,
            &small_opts().without_warm_start(),
        )
        .unwrap();
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.design(), c.design());
            assert_eq!(w.cost(), c.cost());
            assert_eq!(
                w.annual_downtime().minutes().to_bits(),
                c.annual_downtime().minutes().to_bits()
            );
        }
        assert!(wh.warm_solves > 0 && wh.chain_rebuilds_avoided > 0, "{wh}");
        assert_eq!(ch.warm_solves, 0);
    }

    #[test]
    fn job_frontier_is_monotone_and_spans_resources() {
        let fx = job_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let o = SearchOptions {
            max_extra_active: 0,
            max_spares: 1,
            ..SearchOptions::default()
        }
        .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
        .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));
        let totals = [1, 2, 4, 8, 16, 32, 64];
        let frontier = job_frontier(&ctx, "computation", &totals, &o).unwrap();
        assert!(frontier.len() >= 3);
        for pair in frontier.windows(2) {
            assert!(pair[0].cost() < pair[1].cost());
            assert!(pair[0].expected_job_time() > pair[1].expected_job_time());
        }
        // Cheap end uses few machineA nodes; expensive end more/faster ones.
        assert!(frontier[0].cost() < frontier.last().unwrap().cost());
    }
}
