//! Multi-tier composition and refinement (paper §4.1, first paragraph).

use std::time::Instant;

use aved_avail::combine_series;
use aved_model::Design;
use aved_units::{Duration, Money};

use crate::parallel::{effective_jobs, parallel_map, BestCost};
use crate::{
    tier_pareto_frontier_with_health, EvalContext, EvaluatedDesign, SearchError, SearchHealth,
    SearchOptions,
};

/// A complete multi-tier design with its evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDesign {
    tiers: Vec<EvaluatedDesign>,
    cost: Money,
    annual_downtime: Duration,
}

impl ServiceDesign {
    /// The per-tier evaluated designs.
    #[must_use]
    pub fn tiers(&self) -> &[EvaluatedDesign] {
        &self.tiers
    }

    /// Total annual cost.
    #[must_use]
    pub fn cost(&self) -> Money {
        self.cost
    }

    /// Expected service-level annual downtime (tiers in series).
    #[must_use]
    pub fn annual_downtime(&self) -> Duration {
        self.annual_downtime
    }

    /// Converts to a plain [`Design`].
    #[must_use]
    pub fn to_design(&self) -> Design {
        Design::new(self.tiers.iter().map(|t| t.design().clone()).collect())
    }
}

fn compose(tiers: &[EvaluatedDesign]) -> (Money, Duration) {
    let cost = tiers.iter().map(EvaluatedDesign::cost).sum();
    let availabilities: Vec<_> = tiers.iter().map(|t| *t.availability()).collect();
    let service = combine_series(&availabilities);
    (cost, service.annual_downtime())
}

/// Largest frontier cross product we enumerate exactly before switching to
/// the greedy refinement.
const EXACT_COMPOSITION_LIMIT: usize = 250_000;

/// Exhaustive minimum-cost composition over the frontier cross product.
///
/// The flat index range is split into one contiguous chunk per worker;
/// each chunk scans ascending with a local best and a shared [`BestCost`]
/// cell pruning strictly-more-expensive compositions, and the chunk optima
/// merge by `(cost, flat index)` — the same "cheapest, earliest" winner the
/// serial ascending scan selects, at any worker count.
fn compose_exact(
    frontiers: &[Vec<EvaluatedDesign>],
    max_downtime: Duration,
    jobs: usize,
) -> Option<ServiceDesign> {
    let sizes: Vec<usize> = frontiers.iter().map(Vec::len).collect();
    let total: usize = sizes.iter().product();
    let best_cost = BestCost::new();
    let chunk = total.div_ceil(jobs.max(1)).max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..total)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(total))
        .collect();
    let per_chunk = parallel_map(jobs, &ranges, |_, range| {
        let mut local: Option<(Money, usize)> = None;
        for flat in range.clone() {
            let mut rem = flat;
            let mut cost = Money::ZERO;
            let mut availability = 1.0;
            for (f, &size) in frontiers.iter().zip(&sizes) {
                let i = rem % size;
                rem /= size;
                cost += f[i].cost();
                availability *= f[i].availability().availability();
            }
            // Only strictly cheaper compositions displace a known feasible
            // one; equal-cost ones stay recorded locally so the merge can
            // fall back to the smallest flat index, exactly like the
            // serial ascending scan.
            if local.is_some_and(|(c, _)| cost >= c) || best_cost.beats(cost) {
                continue;
            }
            let downtime = Duration::from_mins((1.0 - availability) * aved_units::MINUTES_PER_YEAR);
            if downtime <= max_downtime {
                best_cost.offer(cost);
                local = Some((cost, flat));
            }
        }
        local
    });
    let best = per_chunk
        .into_iter()
        .flatten()
        .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    best.map(|(_, flat)| {
        let mut rem = flat;
        let tiers: Vec<EvaluatedDesign> = frontiers
            .iter()
            .zip(&sizes)
            .map(|(f, &size)| {
                let i = rem % size;
                rem /= size;
                f[i].clone()
            })
            .collect();
        let (cost, annual_downtime) = compose(&tiers);
        ServiceDesign {
            tiers,
            cost,
            annual_downtime,
        }
    })
}

/// Finds the minimum-cost multi-tier design meeting a service-level
/// throughput and downtime requirement.
///
/// Following §4.1: each tier is first optimized in isolation (its own
/// cost/downtime frontier, computed as if the other tiers never fail). If
/// the combination of the individually-cheapest designs already meets the
/// service downtime requirement, it is optimal. Otherwise the design is
/// refined by repeatedly upgrading, among all tiers, the one whose next
/// frontier step buys downtime at the lowest marginal cost — "making the
/// requirements for that tier incrementally more aggressive" — until the
/// service requirement holds or every frontier is exhausted.
///
/// Candidate evaluation failures are isolated to the failing candidate
/// (unless [`SearchOptions::strict`]); use
/// [`search_service_with_health`] to see how degraded the run was.
///
/// # Errors
///
/// Returns [`SearchError`] for evaluation failures; an unsatisfiable
/// requirement yields `Ok(None)`.
pub fn search_service(
    ctx: &EvalContext<'_>,
    load: f64,
    max_downtime: Duration,
    options: &SearchOptions,
) -> Result<Option<ServiceDesign>, SearchError> {
    search_service_with_health(ctx, load, max_downtime, options).map(|(d, _)| d)
}

/// Like [`search_service`], additionally reporting the aggregated
/// [`SearchHealth`] of every per-tier frontier sweep: candidates skipped
/// after evaluation failures, solver fallbacks taken, the worst accepted
/// residual, and the total wall time.
///
/// # Errors
///
/// Returns [`SearchError`] for evaluation failures; an unsatisfiable
/// requirement yields `Ok((None, health))`.
pub fn search_service_with_health(
    ctx: &EvalContext<'_>,
    load: f64,
    max_downtime: Duration,
    options: &SearchOptions,
) -> Result<(Option<ServiceDesign>, SearchHealth), SearchError> {
    let started = Instant::now();
    let jobs = effective_jobs(options.jobs);
    let mut health = SearchHealth {
        jobs,
        ..SearchHealth::default()
    };
    let tier_names: Vec<String> = ctx
        .service()
        .tiers()
        .iter()
        .map(|t| t.name().as_str().to_owned())
        .collect();

    // Per-tier frontiers, cheapest first.
    let mut frontiers: Vec<Vec<EvaluatedDesign>> = Vec::with_capacity(tier_names.len());
    for name in &tier_names {
        let (f, tier_health) = tier_pareto_frontier_with_health(ctx, name, load, options)?;
        health.merge(tier_health);
        if f.is_empty() {
            health.wall_time = started.elapsed();
            return Ok((None, health)); // a tier cannot support the load at all
        }
        frontiers.push(f);
    }

    // Exact composition when the cross product is small (the common case:
    // frontiers have tens of steps); greedy marginal-cost refinement as
    // the scalable fallback.
    let product: usize = frontiers.iter().map(Vec::len).product();
    if product <= EXACT_COMPOSITION_LIMIT {
        let composing = Instant::now();
        let found = compose_exact(&frontiers, max_downtime, jobs);
        health.merge_time += composing.elapsed();
        health.wall_time = started.elapsed();
        return Ok((found, health));
    }

    // Start from the individually-cheapest choices.
    let mut index: Vec<usize> = vec![0; frontiers.len()];
    loop {
        let current: Vec<EvaluatedDesign> = index
            .iter()
            .zip(frontiers.iter())
            .map(|(&i, f)| f[i].clone())
            .collect();
        let (cost, downtime) = compose(&current);
        if downtime <= max_downtime {
            health.wall_time = started.elapsed();
            return Ok((
                Some(ServiceDesign {
                    tiers: current,
                    cost,
                    annual_downtime: downtime,
                }),
                health,
            ));
        }
        // Upgrade the tier with the best marginal downtime reduction per
        // dollar.
        let mut best_step: Option<(usize, f64)> = None;
        for (t, f) in frontiers.iter().enumerate() {
            let i = index[t];
            if i + 1 >= f.len() {
                continue;
            }
            let delta_cost = (f[i + 1].cost() - f[i].cost()).dollars();
            let delta_downtime =
                f[i].annual_downtime().minutes() - f[i + 1].annual_downtime().minutes();
            if delta_downtime <= 0.0 {
                continue;
            }
            let ratio = delta_cost / delta_downtime;
            if best_step.is_none_or(|(_, r)| ratio < r) {
                best_step = Some((t, ratio));
            }
        }
        match best_step {
            Some((t, _)) => index[t] += 1,
            None => {
                health.wall_time = started.elapsed();
                return Ok((None, health)); // frontiers exhausted
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::app_tier_fixture;
    use crate::CachingEngine;
    use aved_avail::DecompositionEngine;

    fn small_opts() -> SearchOptions {
        SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn three_tier_service_meets_requirement() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let design = search_service(&ctx, 400.0, Duration::from_mins(5000.0), &small_opts())
            .unwrap()
            .expect("feasible");
        assert_eq!(design.tiers().len(), 3);
        assert!(design.annual_downtime() <= Duration::from_mins(5000.0));
        let d = design.to_design();
        assert!(d.tier("web").is_some());
        assert!(d.tier("application").is_some());
        assert!(d.tier("database").is_some());
    }

    #[test]
    fn tighter_service_budget_costs_more() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let loose = search_service(&ctx, 400.0, Duration::from_mins(8000.0), &small_opts())
            .unwrap()
            .unwrap();
        let tight = search_service(&ctx, 400.0, Duration::from_mins(800.0), &small_opts())
            .unwrap()
            .unwrap();
        assert!(tight.cost() >= loose.cost());
        assert!(tight.annual_downtime() <= Duration::from_mins(800.0));
    }

    #[test]
    fn impossible_budget_returns_none() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let out = search_service(&ctx, 400.0, Duration::from_secs(0.0001), &small_opts()).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn injected_failure_does_not_change_the_service_winner() {
        // Baseline run, instrumented only to count engine calls.
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let counting = aved_avail::FaultInjectingEngine::new(&inner);
        let ctx = fx.context(&counting);
        let budget = Duration::from_mins(5000.0);
        let (baseline, base_health) =
            search_service_with_health(&ctx, 400.0, budget, &small_opts()).unwrap();
        let baseline = baseline.expect("feasible");
        assert!(!base_health.is_degraded());
        let n_calls = counting.calls();
        assert!(n_calls > 1);

        // Kill the last evaluated candidate: under a loose budget the
        // winner is a cheap composition, never the maximal-redundancy tail
        // candidate evaluated last.
        let faulty = aved_avail::FaultInjectingEngine::new(&inner)
            .with_fault_at(n_calls - 1, aved_avail::InjectedFault::NonConvergence);
        let ctx = fx.context(&faulty);
        let (found, health) =
            search_service_with_health(&ctx, 400.0, budget, &small_opts()).unwrap();
        let found = found.expect("search completes despite the failure");
        assert_eq!(found.cost(), baseline.cost());
        assert_eq!(found.to_design(), baseline.to_design());
        assert_eq!(health.candidates_skipped(), 1);
        assert_eq!(faulty.injected(), 1);
    }

    #[test]
    fn parallel_service_search_matches_serial() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let budget = Duration::from_mins(800.0);
        let serial = search_service(&ctx, 400.0, budget, &small_opts())
            .unwrap()
            .unwrap();
        for jobs in [2, 8] {
            let parallel = search_service(&ctx, 400.0, budget, &small_opts().with_jobs(jobs))
                .unwrap()
                .unwrap();
            assert_eq!(parallel.cost(), serial.cost(), "jobs={jobs}");
            assert_eq!(parallel.to_design(), serial.to_design(), "jobs={jobs}");
            assert_eq!(parallel.annual_downtime(), serial.annual_downtime());
        }
    }

    #[test]
    fn strict_service_search_fails_fast() {
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let faulty = aved_avail::FaultInjectingEngine::new(&inner)
            .with_fault_at(0, aved_avail::InjectedFault::NonConvergence);
        let ctx = fx.context(&faulty);
        let strict = small_opts().with_strict();
        let err = search_service(&ctx, 400.0, Duration::from_mins(5000.0), &strict).unwrap_err();
        assert!(matches!(err, crate::SearchError::Avail(_)), "{err}");
    }

    #[test]
    fn service_downtime_dominates_each_tier() {
        // Service downtime (series) is at least every single tier's.
        let fx = app_tier_fixture();
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = fx.context(&engine);
        let design = search_service(&ctx, 800.0, Duration::from_mins(6000.0), &small_opts())
            .unwrap()
            .unwrap();
        for tier in design.tiers() {
            assert!(design.annual_downtime() >= tier.annual_downtime() * 0.999);
        }
    }
}
