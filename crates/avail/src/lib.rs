//! Availability evaluation engines for the Aved design engine.
//!
//! The paper evaluates each candidate design by generating an availability
//! model with, per tier: the number of active resources `n`, the minimum
//! required `m`, the number of spares `s`, and per failure mode the MTBF,
//! the MTTR (detection + repair + dependent-component restarts) and the
//! failover time (detection + reconfiguration + inactive-spare startup).
//! Failover is considered only for modes whose MTTR exceeds their failover
//! time (§4.2). The model is then solved by an external availability
//! engine; this crate *is* that engine, three ways:
//!
//! * [`CtmcEngine`] — a truncated multi-failure-class continuous-time
//!   Markov chain with explicit failover-transient states, solved exactly
//!   for its steady state (the reference engine);
//! * [`DecompositionEngine`] — the "simplified Markov model": each failure
//!   class analyzed in its own small chain assuming the others are
//!   perfect, downtimes summed (fast, accurate when MTBF ≫ MTTR);
//! * [`SimulationEngine`] — an independent discrete-event Monte Carlo
//!   simulator with per-resource state, spare management and failover
//!   timers, used to validate the analytic engines and to explore
//!   non-exponential distributions.
//!
//! [`derive_tier_model`] builds the model from `aved-model` types, and
//! [`combine_series`] composes tiers in series (the service is up iff all
//! tiers are up).
//!
//! For sweeps over many neighboring models, [`EvalSession`] carries
//! reusable solver scratch, structurally-cached chains (rebuilt in place
//! when only rates change) and warm-start state between
//! [`AvailabilityEngine::evaluate_with_session`] calls; [`SessionStats`]
//! reports how much work that avoided.

mod derive;
mod engine;
mod engine_ctmc;
mod engine_decomp;
mod engine_sim;
mod error;
mod export;
mod fault;
mod mission;
mod service;
mod session;
mod shared;
mod tier_model;

pub use aved_markov::{BudgetResource, CancelToken, SolveBudget};
pub use derive::{derive_tier_model, loss_window, required_active};
pub use engine::{AvailabilityEngine, EvalHealth, TierAvailability};
pub use engine_ctmc::CtmcEngine;
pub use engine_decomp::DecompositionEngine;
pub use engine_sim::{RepairDistribution, SimulationEngine, SimulationReport};
pub use error::AvailError;
pub use export::{export_parameters, export_sharpe_markov};
pub use fault::{FaultInjectingEngine, InjectedFault};
pub use service::{combine_series, ServiceAvailability};
pub use session::{EvalSession, SessionStats};
pub use shared::SharedSubsystem;
pub use tier_model::{FailureClass, TierModel};
