//! The tier availability model of the paper's §4.2.

use aved_units::{Duration, Rate};
use serde::{Deserialize, Serialize};

use crate::AvailError;

/// One failure class: a (component, failure mode) pair of the tier's
/// resource type, with fully-derived timing attributes.
///
/// * `rate` — failures per unit time *per exposed resource* (`1/MTBF`);
/// * `mttr` — detection time + component repair time + sequential restart
///   of the failed component and its dependents;
/// * `failover_time` — detection time + resource reconfiguration time +
///   startup of the spare's inactive components;
/// * `uses_failover` — per the paper, failover is only considered when the
///   MTTR exceeds the failover time (and the design has spares).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureClass {
    label: String,
    rate: Rate,
    mttr: Duration,
    failover_time: Duration,
    uses_failover: bool,
}

impl FailureClass {
    /// Creates a failure class.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero/infinite or the label is empty.
    pub fn new<L: Into<String>>(
        label: L,
        rate: Rate,
        mttr: Duration,
        failover_time: Duration,
        uses_failover: bool,
    ) -> FailureClass {
        let label = label.into();
        assert!(!label.is_empty(), "failure class label must not be empty");
        assert!(
            !rate.is_zero() && rate.is_finite(),
            "failure rate must be positive and finite"
        );
        FailureClass {
            label,
            rate,
            mttr,
            failover_time,
            uses_failover,
        }
    }

    /// A human-readable label (`machineA/hard`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Per-resource failure rate.
    #[must_use]
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Full mean time to repair.
    #[must_use]
    pub fn mttr(&self) -> Duration {
        self.mttr
    }

    /// Failover duration when a spare takes over.
    #[must_use]
    pub fn failover_time(&self) -> Duration {
        self.failover_time
    }

    /// Whether failover applies to this class.
    #[must_use]
    pub fn uses_failover(&self) -> bool {
        self.uses_failover
    }
}

/// The availability model of one tier (paper §4.2's parameter list).
///
/// # Examples
///
/// ```
/// use aved_avail::{TierModel, FailureClass};
/// use aved_units::{Duration, Rate};
///
/// let model = TierModel::new(2, 2, 1)
///     .with_class(FailureClass::new(
///         "machine/hard",
///         Duration::from_days(650.0).rate(),
///         Duration::from_hours(38.0),
///         Duration::from_mins(5.0),
///         true,
///     ));
/// model.check()?;
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierModel {
    n: u32,
    m: u32,
    s: u32,
    spares_exposed: bool,
    classes: Vec<FailureClass>,
}

impl TierModel {
    /// Creates a tier model with `n` active resources, `m` minimum active
    /// for the tier to be up, and `s` spares. Classes start empty; add
    /// them with [`with_class`](Self::with_class).
    #[must_use]
    pub fn new(n: u32, m: u32, s: u32) -> TierModel {
        TierModel {
            n,
            m,
            s,
            spares_exposed: false,
            classes: Vec::new(),
        }
    }

    /// Adds a failure class.
    #[must_use]
    pub fn with_class(mut self, class: FailureClass) -> TierModel {
        self.classes.push(class);
        self
    }

    /// Marks spares as failure-exposed (hot spares running all components).
    ///
    /// Inactive spares are powered off and assumed not to fail; hot spares
    /// fail at the same per-resource rates as active resources.
    #[must_use]
    pub fn with_exposed_spares(mut self, exposed: bool) -> TierModel {
        self.spares_exposed = exposed;
        self
    }

    /// Number of active resources.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Minimum active resources for the tier to be up.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of spares.
    #[must_use]
    pub fn s(&self) -> u32 {
        self.s
    }

    /// Total resources (`n + s`).
    #[must_use]
    pub fn n_total(&self) -> u32 {
        self.n + self.s
    }

    /// Whether spares are failure-exposed.
    #[must_use]
    pub fn spares_exposed(&self) -> bool {
        self.spares_exposed
    }

    /// The failure classes.
    #[must_use]
    pub fn classes(&self) -> &[FailureClass] {
        &self.classes
    }

    /// The aggregate failure rate of a single resource (sum over classes).
    #[must_use]
    pub fn per_resource_failure_rate(&self) -> Rate {
        self.classes.iter().map(FailureClass::rate).sum()
    }

    /// The aggregate failure rate across all `n` active resources — the
    /// rate at which *some* active resource fails. For `failurescope=tier`
    /// applications this is the rate of work-loss events the job-completion
    /// model needs.
    #[must_use]
    pub fn tier_failure_rate(&self) -> Rate {
        self.per_resource_failure_rate() * f64::from(self.n)
    }

    /// A structural 64-bit hash of the model: FNV-1a over every field,
    /// with `f64` values hashed by canonical bit pattern (`-0.0` is
    /// normalized to `0.0` so numerically-equal models hash equally,
    /// matching `PartialEq`). Two models with the same hash are almost
    /// certainly identical; two unequal models differing by even one ULP
    /// in any rate or duration hash differently.
    ///
    /// This is the cache key the search layer memoizes evaluations under —
    /// unlike a formatted-string key it costs no allocation and cannot
    /// conflate distinct float values that render alike.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(self.n));
        h.write_u64(u64::from(self.m));
        h.write_u64(u64::from(self.s));
        h.write_u64(u64::from(self.spares_exposed));
        h.write_u64(self.classes.len() as u64);
        for c in &self.classes {
            h.write_bytes(c.label.as_bytes());
            h.write_u64(canonical_bits(c.rate.per_hour_value()));
            h.write_u64(canonical_bits(c.mttr.seconds()));
            h.write_u64(canonical_bits(c.failover_time.seconds()));
            h.write_u64(u64::from(c.uses_failover));
        }
        h.finish()
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError::InvalidModel`] when `m == 0`, `m > n`, no
    /// failure classes are present, or a class that uses failover exists in
    /// a spare-less model.
    pub fn check(&self) -> Result<(), AvailError> {
        if self.m == 0 {
            return Err(AvailError::InvalidModel {
                detail: "m must be at least 1".into(),
            });
        }
        if self.m > self.n {
            return Err(AvailError::InvalidModel {
                detail: format!("m={} exceeds n={}", self.m, self.n),
            });
        }
        if self.classes.is_empty() {
            return Err(AvailError::InvalidModel {
                detail: "tier model has no failure classes".into(),
            });
        }
        if self.s == 0 && self.classes.iter().any(FailureClass::uses_failover) {
            return Err(AvailError::InvalidModel {
                detail: "a failure class uses failover but the design has no spares".into(),
            });
        }
        for c in &self.classes {
            if c.uses_failover() && c.failover_time().is_zero() {
                return Err(AvailError::InvalidModel {
                    detail: format!("class {} uses failover with zero failover time", c.label()),
                });
            }
            if c.mttr().is_zero() {
                return Err(AvailError::InvalidModel {
                    detail: format!(
                        "class {} has zero MTTR; drop no-op classes before evaluation",
                        c.label()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// The bit pattern of `x` with `-0.0` normalized to `0.0`, so hashing
/// agrees with `==` on the one equal-but-differently-encoded float pair
/// that can actually occur in a validated model.
fn canonical_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0_f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// Minimal FNV-1a, enough to hash a model without pulling in a hasher
/// dependency or going through `std`'s `RandomState` (which would make
/// hashes differ between processes — these keys index a cache that tests
/// and benches want reproducible).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(label: &str, mtbf_days: f64, mttr_hours: f64) -> FailureClass {
        FailureClass::new(
            label,
            Duration::from_days(mtbf_days).rate(),
            Duration::from_hours(mttr_hours),
            Duration::from_mins(5.0),
            false,
        )
    }

    #[test]
    fn accessors_and_rates() {
        let model = TierModel::new(4, 2, 1)
            .with_class(class("a", 100.0, 1.0))
            .with_class(class("b", 50.0, 2.0));
        assert_eq!(model.n(), 4);
        assert_eq!(model.m(), 2);
        assert_eq!(model.s(), 1);
        assert_eq!(model.n_total(), 5);
        assert!(!model.spares_exposed());
        assert_eq!(model.classes().len(), 2);
        let per = model.per_resource_failure_rate();
        assert!((per.per_hour_value() - (1.0 / 2400.0 + 1.0 / 1200.0)).abs() < 1e-12);
        assert!(
            (model.tier_failure_rate().per_hour_value() - 4.0 * per.per_hour_value()).abs() < 1e-15
        );
        model.check().unwrap();
    }

    #[test]
    fn check_rejects_m_zero_and_m_above_n() {
        assert!(TierModel::new(2, 0, 0)
            .with_class(class("a", 1.0, 1.0))
            .check()
            .is_err());
        assert!(TierModel::new(2, 3, 0)
            .with_class(class("a", 1.0, 1.0))
            .check()
            .is_err());
    }

    #[test]
    fn check_rejects_empty_classes() {
        assert!(TierModel::new(2, 1, 0).check().is_err());
    }

    #[test]
    fn check_rejects_failover_without_spares() {
        let m = TierModel::new(2, 2, 0).with_class(FailureClass::new(
            "hw/hard",
            Duration::from_days(650.0).rate(),
            Duration::from_hours(38.0),
            Duration::from_mins(5.0),
            true,
        ));
        assert!(m.check().is_err());
    }

    #[test]
    fn check_rejects_zero_mttr_class() {
        let m = TierModel::new(1, 1, 0).with_class(FailureClass::new(
            "x",
            Duration::from_days(1.0).rate(),
            Duration::ZERO,
            Duration::ZERO,
            false,
        ));
        assert!(m.check().is_err());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_class_panics() {
        let _ = FailureClass::new(
            "x",
            Rate::ZERO,
            Duration::from_hours(1.0),
            Duration::ZERO,
            false,
        );
    }

    #[test]
    fn structural_hash_distinguishes_every_field() {
        let base = TierModel::new(4, 2, 1).with_class(class("a", 100.0, 1.0));
        assert_eq!(base.structural_hash(), base.clone().structural_hash());
        let variants = [
            TierModel::new(5, 2, 1).with_class(class("a", 100.0, 1.0)),
            TierModel::new(4, 3, 1).with_class(class("a", 100.0, 1.0)),
            TierModel::new(4, 2, 2).with_class(class("a", 100.0, 1.0)),
            TierModel::new(4, 2, 1)
                .with_class(class("a", 100.0, 1.0))
                .with_exposed_spares(true),
            TierModel::new(4, 2, 1).with_class(class("b", 100.0, 1.0)),
            TierModel::new(4, 2, 1).with_class(class("a", 101.0, 1.0)),
            TierModel::new(4, 2, 1).with_class(class("a", 100.0, 2.0)),
        ];
        for v in &variants {
            assert_ne!(base.structural_hash(), v.structural_hash(), "{v:?}");
        }
    }

    #[test]
    fn structural_hash_uses_bit_patterns_not_formatting() {
        // One ULP apart: a formatted key may round both to the same string;
        // the bit-pattern key must not.
        let mttr = 1.0_f64;
        let mttr_ulp = f64::from_bits(mttr.to_bits() + 1);
        let a = TierModel::new(1, 1, 0).with_class(FailureClass::new(
            "x",
            Rate::per_hour(0.001),
            Duration::from_hours(mttr),
            Duration::ZERO,
            false,
        ));
        let b = TierModel::new(1, 1, 0).with_class(FailureClass::new(
            "x",
            Rate::per_hour(0.001),
            Duration::from_hours(mttr_ulp),
            Duration::ZERO,
            false,
        ));
        assert_ne!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn structural_hash_canonicalizes_negative_zero() {
        // -0.0 == 0.0, and the two models evaluate identically; their keys
        // must agree so a cache fill under one serves the other.
        let a = TierModel::new(2, 2, 1).with_class(FailureClass::new(
            "x",
            Rate::per_hour(0.001),
            Duration::from_hours(1.0),
            Duration::from_secs(0.0),
            false,
        ));
        let b = TierModel::new(2, 2, 1).with_class(FailureClass::new(
            "x",
            Rate::per_hour(0.001),
            Duration::from_hours(1.0),
            Duration::from_secs(-0.0),
            false,
        ));
        assert_eq!(a, b, "models are numerically equal");
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn exposed_spares_flag() {
        let m = TierModel::new(1, 1, 1)
            .with_class(class("a", 1.0, 1.0))
            .with_exposed_spares(true);
        assert!(m.spares_exposed());
    }
}
