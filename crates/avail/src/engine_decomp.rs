//! The "simplified Markov model": per-failure-class decomposition.

use aved_units::Rate;

use crate::{
    AvailError, AvailabilityEngine, CtmcEngine, EvalHealth, EvalSession, TierAvailability,
    TierModel,
};

/// Fast approximate engine: evaluates each failure class in isolation
/// (the other classes assumed failure-free) and sums the per-class
/// downtimes.
///
/// This is the classic rare-event decomposition: when MTBF ≫ MTTR for all
/// classes, the probability of cross-class failure overlap is second-order
/// and the sum of single-class unavailabilities is accurate to within that
/// overlap term. It reproduces the behaviour of the paper's "own simplified
/// Markov Model" and is an order of magnitude faster than the joint chain
/// for models with many classes, at a small accuracy cost quantified by the
/// `ablation_engines` bench.
///
/// # Examples
///
/// ```
/// use aved_avail::{AvailabilityEngine, DecompositionEngine, CtmcEngine, FailureClass, TierModel};
/// use aved_units::Duration;
///
/// let model = TierModel::new(2, 2, 0)
///     .with_class(FailureClass::new(
///         "hw/hard",
///         Duration::from_days(650.0).rate(),
///         Duration::from_hours(38.0),
///         Duration::ZERO,
///         false,
///     ))
///     .with_class(FailureClass::new(
///         "os/soft",
///         Duration::from_days(60.0).rate(),
///         Duration::from_mins(4.0),
///         Duration::ZERO,
///         false,
///     ));
/// let fast = DecompositionEngine::default().evaluate(&model)?;
/// let exact = CtmcEngine::default().evaluate(&model)?;
/// let rel = (fast.unavailability() - exact.unavailability()).abs()
///     / exact.unavailability();
/// assert!(rel < 0.01);
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompositionEngine {
    inner: CtmcEngine,
}

impl DecompositionEngine {
    /// Creates the engine with the default truncation depth.
    #[must_use]
    pub fn new() -> DecompositionEngine {
        DecompositionEngine {
            inner: CtmcEngine::new(),
        }
    }

    /// Sets the truncation depth of the per-class chains.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero.
    #[must_use]
    pub fn with_max_concurrent(mut self, max_concurrent: u32) -> DecompositionEngine {
        self.inner = self.inner.with_max_concurrent(max_concurrent);
        self
    }

    /// The per-failure-class downtime breakdown: each class evaluated in
    /// isolation, labeled, in the model's class order.
    ///
    /// This is the explainability view behind design reports: it shows
    /// *which* failure mode dominates a design's downtime (e.g. hardware
    /// repairs under a bronze contract) and therefore which knob the next
    /// frontier step will turn.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for inconsistent models.
    pub fn per_class(
        &self,
        model: &TierModel,
    ) -> Result<Vec<(String, TierAvailability)>, AvailError> {
        model.check()?;
        let mut out = Vec::with_capacity(model.classes().len());
        for class in model.classes() {
            let single = TierModel::new(model.n(), model.m(), model.s())
                .with_exposed_spares(model.spares_exposed())
                .with_class(class.clone());
            let r = self.inner.evaluate(&single)?;
            out.push((class.label().to_owned(), r));
        }
        Ok(out)
    }
}

impl Default for DecompositionEngine {
    fn default() -> DecompositionEngine {
        DecompositionEngine::new()
    }
}

impl AvailabilityEngine for DecompositionEngine {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        self.evaluate_with_health(model).map(|(r, _)| r)
    }

    fn evaluate_with_health(
        &self,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        let mut session = EvalSession::new();
        self.evaluate_with_session(model, &mut session)
    }

    fn evaluate_with_session(
        &self,
        model: &TierModel,
        session: &mut EvalSession,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        model.check()?;
        let mut unavailability = 0.0;
        let mut event_rate = Rate::ZERO;
        let mut health = EvalHealth::default();
        // The per-class chains share one structural shape whenever their
        // failover flags agree, so within a single evaluation the session
        // repatches one cached chain from class to class and warm-starts
        // each solve from the previous class's distribution.
        for class in model.classes() {
            let single = TierModel::new(model.n(), model.m(), model.s())
                .with_exposed_spares(model.spares_exposed())
                .with_class(class.clone());
            let (r, class_health) = self.inner.evaluate_with_session(&single, session)?;
            health.absorb(class_health);
            unavailability += r.unavailability();
            event_rate += r.down_event_rate();
        }
        Ok((
            TierAvailability::new(unavailability.min(1.0), event_rate),
            health,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureClass;
    use aved_units::Duration;

    fn class(label: &str, mtbf_days: f64, mttr_mins: f64) -> FailureClass {
        FailureClass::new(
            label,
            Duration::from_days(mtbf_days).rate(),
            Duration::from_mins(mttr_mins),
            Duration::ZERO,
            false,
        )
    }

    #[test]
    fn single_class_matches_reference_exactly() {
        let model = TierModel::new(3, 2, 0).with_class(class("a", 100.0, 120.0));
        let fast = DecompositionEngine::default().evaluate(&model).unwrap();
        let exact = CtmcEngine::default().evaluate(&model).unwrap();
        assert!((fast.unavailability() - exact.unavailability()).abs() < 1e-15);
    }

    #[test]
    fn multi_class_close_to_reference() {
        // Paper-like magnitudes: MTBFs of weeks-months, repairs of minutes
        // to hours.
        let model = TierModel::new(5, 5, 0)
            .with_class(class("machineA/hard", 650.0, 38.0 * 60.0))
            .with_class(class("machineA/soft", 75.0, 4.5))
            .with_class(class("linux/soft", 60.0, 4.0))
            .with_class(class("app/soft", 60.0, 2.0));
        let fast = DecompositionEngine::default().evaluate(&model).unwrap();
        let exact = CtmcEngine::default().evaluate(&model).unwrap();
        let rel = (fast.unavailability() - exact.unavailability()).abs() / exact.unavailability();
        assert!(rel < 0.02, "relative gap {rel}");
    }

    #[test]
    fn decomposition_underestimates_with_redundancy() {
        // With m < n, downtime needs overlapping failures; decomposition
        // misses cross-class overlaps, so it can only underestimate.
        let model = TierModel::new(4, 2, 0)
            .with_class(class("a", 30.0, 600.0))
            .with_class(class("b", 30.0, 600.0));
        let fast = DecompositionEngine::default()
            .evaluate(&model)
            .unwrap()
            .unavailability();
        let exact = CtmcEngine::default()
            .evaluate(&model)
            .unwrap()
            .unavailability();
        assert!(fast <= exact * 1.0001, "fast {fast} exact {exact}");
    }

    #[test]
    fn unavailability_is_capped_at_one() {
        // Degenerate inputs where each class alone is down half the time.
        let model = TierModel::new(1, 1, 0)
            .with_class(class("a", 0.01, 14.4))
            .with_class(class("b", 0.01, 14.4))
            .with_class(class("c", 0.01, 14.4));
        let r = DecompositionEngine::default().evaluate(&model).unwrap();
        assert!(r.unavailability() <= 1.0);
    }

    #[test]
    fn rejects_invalid_model() {
        assert!(DecompositionEngine::default()
            .evaluate(&TierModel::new(2, 3, 0).with_class(class("a", 1.0, 1.0)))
            .is_err());
    }

    #[test]
    fn session_path_is_bit_identical_and_shares_chains_across_classes() {
        use crate::EvalSession;
        // Four same-shape classes: the session should explore once and
        // repatch for every subsequent class, across repeated evaluations.
        let model = TierModel::new(5, 5, 0)
            .with_class(class("machineA/hard", 650.0, 38.0 * 60.0))
            .with_class(class("machineA/soft", 75.0, 4.5))
            .with_class(class("linux/soft", 60.0, 4.0))
            .with_class(class("app/soft", 60.0, 2.0));
        let engine = DecompositionEngine::default();
        let mut session = EvalSession::new();
        let (one_shot, _) = engine.evaluate_with_health(&model).unwrap();
        for _ in 0..3 {
            let (warm, _) = engine.evaluate_with_session(&model, &mut session).unwrap();
            assert_eq!(
                warm.unavailability().to_bits(),
                one_shot.unavailability().to_bits()
            );
            assert_eq!(
                warm.down_event_rate().per_hour_value().to_bits(),
                one_shot.down_event_rate().per_hour_value().to_bits()
            );
        }
        assert_eq!(session.cached_chains(), 1, "all classes share one shape");
        assert_eq!(session.stats().solves, 12);
        assert_eq!(session.stats().rebuilds_avoided, 11);
    }

    #[test]
    fn per_class_breakdown_sums_to_the_total() {
        let model = TierModel::new(3, 3, 0)
            .with_class(class("hw/hard", 650.0, 38.0 * 60.0))
            .with_class(class("os/soft", 60.0, 4.0));
        let engine = DecompositionEngine::default();
        let total = engine.evaluate(&model).unwrap().unavailability();
        let parts = engine.per_class(&model).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "hw/hard");
        assert_eq!(parts[1].0, "os/soft");
        let sum: f64 = parts.iter().map(|(_, r)| r.unavailability()).sum();
        assert!((sum - total).abs() < 1e-15);
        // Hardware repairs at 38 h dominate the soft restarts at 4 minutes.
        assert!(parts[0].1.unavailability() > parts[1].1.unavailability());
    }
}
