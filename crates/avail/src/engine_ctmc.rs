//! The reference engine: a truncated multi-class CTMC with failover
//! transients.

use aved_markov::{explore_budgeted, Explored, FallbackSolver, SolveBudget, SolveScratch};
use aved_units::Rate;

use crate::session::{CachedChain, ChainKey};
use crate::{
    AvailError, AvailabilityEngine, EvalHealth, EvalSession, SessionStats, TierAvailability,
    TierModel,
};

/// State of the tier CTMC: failed-resource count per failure class, plus an
/// optional in-progress failover (the class that triggered it).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct St {
    pub(crate) failed: Vec<u8>,
    pub(crate) failover: Option<u8>,
}

/// Derived per-state quantities shared by the transition rules and the
/// reward function.
#[derive(Debug, Clone, Copy)]
struct View {
    /// Resources currently delivering service.
    working: u32,
    /// Failure-exposed idle spares.
    free_spares: u32,
    /// Whether a failover-class failure would be backfilled by a spare.
    backfill_available: bool,
}

fn view(model: &TierModel, st: &St) -> View {
    let n_total = model.n_total();
    let mut failed_total: u32 = 0;
    let mut failed_failover: u32 = 0;
    for (i, &k) in st.failed.iter().enumerate() {
        failed_total += u32::from(k);
        if model.classes()[i].uses_failover() {
            failed_failover += u32::from(k);
        }
    }
    let failed_restart = failed_total - failed_failover;
    let available = n_total.saturating_sub(failed_total);
    // Spares backfill failover-class failures (restart-class failures are
    // repaired in place), so the number of filled active roles is bounded by
    // the resources not held by failover-class repairs.
    let remaining = n_total - failed_failover;
    let roles = model.n().min(remaining);
    let working = roles.saturating_sub(failed_restart);
    let free_spares = available.saturating_sub(working);
    // One more failover-class failure is backfilled iff the role count
    // survives it.
    let backfill_available = remaining > 0 && model.n().min(remaining - 1) == roles;
    View {
        working,
        free_spares,
        backfill_available,
    }
}

fn is_down(model: &TierModel, st: &St) -> bool {
    st.failover.is_some() || view(model, st).working < model.m()
}

/// Steady-state availability engine built on an exact (truncated) CTMC.
///
/// The chain's state is the vector of failed-resource counts per failure
/// class plus an optional failover-in-progress marker. Failures strike
/// working resources (and hot spares, when the model exposes them); repairs
/// proceed per failed resource; a failover transient is entered when a
/// failover-class failure would drop the active count below `m` and a
/// spare can restore it. The state space is truncated at
/// [`max_concurrent`](Self::with_max_concurrent) simultaneous failures
/// (default 5), which bounds the chain to a few hundred states regardless
/// of cluster size — the probability of deeper overlap is negligible when
/// MTBF ≫ MTTR, and the `ablation_truncation` bench quantifies this.
///
/// # Examples
///
/// ```
/// use aved_avail::{AvailabilityEngine, CtmcEngine, FailureClass, TierModel};
/// use aved_units::Duration;
///
/// // One machine, MTBF 1000 h, MTTR 10 h: unavailability 10/1010.
/// let model = TierModel::new(1, 1, 0).with_class(FailureClass::new(
///     "hw",
///     Duration::from_hours(1000.0).rate(),
///     Duration::from_hours(10.0),
///     Duration::ZERO,
///     false,
/// ));
/// let result = CtmcEngine::default().evaluate(&model)?;
/// assert!((result.unavailability() - 10.0 / 1010.0).abs() < 1e-12);
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtmcEngine {
    max_concurrent: u32,
    dense_cutover: usize,
}

impl CtmcEngine {
    /// Creates an engine with the default truncation depth (5 concurrent
    /// failures) and solver cutover.
    #[must_use]
    pub fn new() -> CtmcEngine {
        CtmcEngine {
            max_concurrent: 5,
            dense_cutover: 3000,
        }
    }

    /// Sets the maximum number of simultaneous failed resources modeled.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero.
    #[must_use]
    pub fn with_max_concurrent(mut self, max_concurrent: u32) -> CtmcEngine {
        assert!(max_concurrent > 0, "truncation depth must be positive");
        self.max_concurrent = max_concurrent;
        self
    }

    /// The truncation depth.
    #[must_use]
    pub fn max_concurrent(&self) -> u32 {
        self.max_concurrent
    }

    /// Sets the state count below which the solver prefers the dense direct
    /// solve (exact, hint-free) over the iterative chain. Defaults to 3000,
    /// which covers every chain the tier models produce — lowering it (e.g.
    /// to 0) forces the iterative, warm-startable path and is how the
    /// `solver_warm` bench exposes warm-start iteration savings.
    #[must_use]
    pub fn with_dense_cutover(mut self, dense_cutover: usize) -> CtmcEngine {
        self.dense_cutover = dense_cutover;
        self
    }

    /// The dense-preferred state-count cutover.
    #[must_use]
    pub fn dense_cutover(&self) -> usize {
        self.dense_cutover
    }

    /// Which explored states count as service-down (exposed for the
    /// mission-time analyses).
    pub(crate) fn down_mask(&self, model: &TierModel, explored: &Explored<St>) -> Vec<bool> {
        explored
            .states()
            .iter()
            .map(|st| is_down(model, st))
            .collect()
    }

    /// The transition rules of the tier chain: successors of `st` with
    /// their rates, in a deterministic rule order. Shared between the
    /// initial exploration and the rate-only in-place rebuild
    /// ([`Explored::repatch`]) so both see the exact same rule sequence.
    ///
    /// Every emitted rate is positive (failure rates, MTTRs and failover
    /// times are validated positive, and the resource-count factors gate
    /// the rule), so the chain's sparsity structure is a function of the
    /// model's *shape* only — the invariant [`ChainKey`] relies on.
    fn successor_rates(&self, model: &TierModel, cap: u32, st: &St) -> Vec<(f64, St)> {
        let mut out: Vec<(f64, St)> = Vec::new();
        let v = view(model, st);
        let failed_total: u32 = st.failed.iter().map(|&k| u32::from(k)).sum();

        // Failures (only below the truncation cap).
        if failed_total < cap {
            for (i, class) in model.classes().iter().enumerate() {
                let lambda = class.rate().per_hour_value();
                // Active-resource failures.
                let active_rate = f64::from(v.working) * lambda;
                if active_rate > 0.0 {
                    let mut next = st.clone();
                    next.failed[i] += 1;
                    if st.failover.is_none()
                        && class.uses_failover()
                        && v.backfill_available
                        && v.working - 1 < model.m()
                    {
                        next.failover = Some(i as u8);
                    }
                    out.push((active_rate, next));
                }
                // Hot-spare failures (no transient: losing an idle spare
                // never interrupts service by itself).
                if model.spares_exposed() {
                    let spare_rate = f64::from(v.free_spares) * lambda;
                    if spare_rate > 0.0 {
                        let mut next = st.clone();
                        next.failed[i] += 1;
                        out.push((spare_rate, next));
                    }
                }
            }
        }

        // Repairs: each failed resource repairs independently.
        for (i, class) in model.classes().iter().enumerate() {
            if st.failed[i] > 0 {
                let mu = 1.0 / class.mttr().hours();
                let mut next = st.clone();
                next.failed[i] -= 1;
                out.push((f64::from(st.failed[i]) * mu, next));
            }
        }

        // Failover completion.
        if let Some(fo) = st.failover {
            let class = &model.classes()[fo as usize];
            let mut next = st.clone();
            next.failover = None;
            out.push((1.0 / class.failover_time().hours(), next));
        }
        out
    }

    /// Builds and explores the tier chain (exposed for tests and the
    /// decomposition engine).
    pub(crate) fn explore_chain(&self, model: &TierModel) -> Result<Explored<St>, AvailError> {
        self.explore_chain_budgeted(model, &SolveBudget::unlimited())
    }

    /// [`Self::explore_chain`] under a cooperative [`SolveBudget`]: the
    /// breadth-first frontier polls the budget's state, byte, deadline and
    /// cancellation limits while it grows.
    pub(crate) fn explore_chain_budgeted(
        &self,
        model: &TierModel,
        budget: &SolveBudget,
    ) -> Result<Explored<St>, AvailError> {
        let cap = self.max_concurrent.min(model.n_total());
        let n_classes = model.classes().len();
        let initial = St {
            failed: vec![0; n_classes],
            failover: None,
        };
        let explored = explore_budgeted(
            initial,
            2_000_000,
            |st: &St| self.successor_rates(model, cap, st),
            budget,
        )?;
        Ok(explored)
    }

    /// Solves a prepared chain (explored + down mask, possibly carrying a
    /// previous π of the same shape) and folds the solve into the result
    /// and the session counters. The single code path behind both the cold
    /// and the warm-started evaluations.
    fn evaluate_chain(
        &self,
        cached: &mut CachedChain,
        session_scratch: &mut SolveScratch,
        stats: &mut SessionStats,
        budget: &SolveBudget,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        let ctmc = cached.explored.ctmc();
        // Resilient solve: dense first below the cutover (exact and fastest
        // there), Gauss-Seidel -> power -> dense above it; every accepted
        // solution passes an independent `‖πQ‖∞ <= 1e-9` residual check.
        let hint = if cached.pi.len() == ctmc.n_states() {
            Some(cached.pi.as_slice())
        } else {
            None
        };
        // A hint exists exactly when this structure already produced an
        // accepted solve (repatching only changes rates), so the iterative
        // stages can skip re-verifying strong connectivity.
        let solver = FallbackSolver::default()
            .with_dense_preferred_below(self.dense_cutover + 1)
            .with_irreducibility_assumed(hint.is_some());
        let (pi, diagnostics) = solver.solve_warm_budgeted(ctmc, hint, session_scratch, budget);
        let pi = pi?;

        stats.solves += 1;
        if diagnostics.warm_hint_used {
            stats.warm_hits += 1;
        }
        let iterations = diagnostics.total_iterations();
        stats.iterations += iterations;
        if diagnostics.warm_start_consumed() {
            stats.warm_consumed += 1;
            if let Some(cold) = cached.cold_iterations {
                stats.iterations_saved += cold.saturating_sub(iterations);
            }
        } else if !diagnostics.warm_hint_used && cached.cold_iterations.is_none() {
            cached.cold_iterations = Some(iterations);
        }

        let health = EvalHealth {
            fallbacks: u32::try_from(diagnostics.fallbacks_taken()).unwrap_or(u32::MAX),
            worst_residual: diagnostics.accepted_residual(),
        };

        let down = &cached.down;
        let unavailability: f64 = pi
            .iter()
            .zip(down.iter())
            .filter(|(_, &d)| d)
            .map(|(&p, _)| p)
            .sum();

        // Down-event rate: probability flow from up states into down states.
        let mut event_rate = 0.0;
        for t in ctmc.transitions() {
            if !down[t.from] && down[t.to] {
                event_rate += pi[t.from] * t.rate;
            }
        }
        if !unavailability.is_finite() || !event_rate.is_finite() {
            // The residual check upstream should make this unreachable;
            // surface an error rather than panicking in the constructor.
            return Err(AvailError::InvalidModel {
                detail: format!(
                    "solver produced non-finite results (unavailability {unavailability}, \
                     event rate {event_rate})"
                ),
            });
        }
        cached.pi = pi;
        Ok((
            TierAvailability::new(unavailability.clamp(0.0, 1.0), Rate::per_hour(event_rate)),
            health,
        ))
    }
}

impl Default for CtmcEngine {
    fn default() -> CtmcEngine {
        CtmcEngine::new()
    }
}

impl AvailabilityEngine for CtmcEngine {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        self.evaluate_with_health(model).map(|(r, _)| r)
    }

    fn evaluate_with_health(
        &self,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        // One-shot evaluation is the session path with a throwaway session:
        // the first solve of a fresh session is cold by construction, so
        // the result is bit-identical to the historical direct path.
        let mut session = EvalSession::new();
        self.evaluate_with_session(model, &mut session)
    }

    fn evaluate_with_session(
        &self,
        model: &TierModel,
        session: &mut EvalSession,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        model.check()?;
        let cap = self.max_concurrent.min(model.n_total());
        let EvalSession {
            scratch,
            chains,
            stats,
            budget,
        } = session;
        // Per-candidate view of the session budget: a candidate timeout
        // restarts its clock here, while the global deadline, caps and
        // cancellation token carry over unchanged.
        let budget = budget.for_candidate();

        let Some(key) = ChainKey::for_model(model, cap) else {
            // Shape too wide for a key (>64 classes): evaluate uncached but
            // still through the shared solve path and scratch arena.
            let explored = self.explore_chain_budgeted(model, &budget)?;
            let down = self.down_mask(model, &explored);
            let mut local = CachedChain {
                explored,
                down,
                pi: Vec::new(),
                cold_iterations: None,
            };
            return self.evaluate_chain(&mut local, scratch, stats, &budget);
        };

        // Same shape seen before: patch the cached chain's rates in place
        // instead of re-exploring. `repatch` verifies the structure exactly
        // and leaves the chain untouched on any mismatch, so a (practically
        // impossible) key collision falls back to a full re-explore below.
        let repatched = match chains.get_mut(&key) {
            Some(cached) => cached
                .explored
                .repatch(|st| self.successor_rates(model, cap, st)),
            None => false,
        };
        if repatched {
            stats.rebuilds_avoided += 1;
        } else {
            let explored = self.explore_chain_budgeted(model, &budget)?;
            let down = self.down_mask(model, &explored);
            chains.insert(
                key.clone(),
                CachedChain {
                    explored,
                    down,
                    pi: Vec::new(),
                    cold_iterations: None,
                },
            );
        }
        let cached = chains.get_mut(&key).expect("entry inserted above");
        self.evaluate_chain(cached, scratch, stats, &budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureClass;
    use aved_markov::birth_death;
    use aved_units::Duration;

    fn simple_class(mtbf_h: f64, mttr_h: f64) -> FailureClass {
        FailureClass::new(
            "c",
            Duration::from_hours(mtbf_h).rate(),
            Duration::from_hours(mttr_h),
            Duration::ZERO,
            false,
        )
    }

    #[test]
    fn single_machine_matches_closed_form() {
        let model = TierModel::new(1, 1, 0).with_class(simple_class(1000.0, 10.0));
        let r = CtmcEngine::default().evaluate(&model).unwrap();
        assert!((r.unavailability() - 10.0 / 1010.0).abs() < 1e-12);
        // Down events happen at rate lambda * P(up).
        let expect_rate = (1.0 / 1000.0) * (1000.0 / 1010.0);
        assert!((r.down_event_rate().per_hour_value() - expect_rate).abs() < 1e-12);
    }

    #[test]
    fn k_of_n_matches_birth_death() {
        // 4 actives, 2 required, no spares, one class; cap high enough to be
        // exact (4 concurrent failures possible).
        let (mtbf, mttr) = (500.0, 5.0);
        let model = TierModel::new(4, 2, 0).with_class(simple_class(mtbf, mttr));
        let r = CtmcEngine::default()
            .with_max_concurrent(4)
            .evaluate(&model)
            .unwrap();

        // Reference: birth-death over failed count; only working resources
        // fail (working = 4 - k), per-resource repair.
        let lambda = 1.0 / mtbf;
        let mu = 1.0 / mttr;
        let births: Vec<f64> = (0..4).map(|k| f64::from(4 - k) * lambda).collect();
        let deaths: Vec<f64> = (0..4).map(|k| f64::from(k + 1) * mu).collect();
        let pi = birth_death::steady_state(&births, &deaths).unwrap();
        let expect: f64 = pi[3] + pi[4]; // down when fewer than 2 working
        assert!(
            (r.unavailability() - expect).abs() < 1e-12,
            "got {}, expect {expect}",
            r.unavailability()
        );
    }

    #[test]
    fn extra_active_reduces_downtime() {
        let base = TierModel::new(2, 2, 0).with_class(simple_class(1000.0, 10.0));
        let extra = TierModel::new(3, 2, 0).with_class(simple_class(1000.0, 10.0));
        let e = CtmcEngine::default();
        let d0 = e.evaluate(&base).unwrap().unavailability();
        let d1 = e.evaluate(&extra).unwrap().unavailability();
        assert!(
            d1 < d0 / 10.0,
            "redundancy should cut downtime sharply: {d0} vs {d1}"
        );
    }

    #[test]
    fn failover_transient_matches_hand_built_chain() {
        // n=1, m=1, s=1, one failover class. States (by construction):
        // (0, -), (1, FO), (1, -), (2, -) ... with cap 2.
        let (mtbf_h, mttr_h, fo_h) = (1000.0, 38.0, 0.1);
        let model = TierModel::new(1, 1, 1).with_class(FailureClass::new(
            "hw/hard",
            Duration::from_hours(mtbf_h).rate(),
            Duration::from_hours(mttr_h),
            Duration::from_hours(fo_h),
            true,
        ));
        let r = CtmcEngine::default().evaluate(&model).unwrap();

        // First-order accounting of the two downtime sources:
        // 1. every failure triggers a failover transient of mean `fo`
        //    (the single active dropping below m=1): rate lambda, so a
        //    time fraction of ~ lambda * fo;
        // 2. while one resource is in repair (time fraction ~ lambda*mttr),
        //    a second failure has no spare left and the service stays down
        //    until the *first* of the two independent repairs completes —
        //    mean mttr/2.
        let lambda = 1.0 / mtbf_h;
        let transient = lambda * fo_h;
        let double = (lambda * mttr_h) * (lambda * mttr_h / 2.0);
        let approx = transient + double;
        let rel = (r.unavailability() - approx).abs() / approx;
        assert!(
            rel < 0.05,
            "unavailability {} vs first-order estimate {approx} (rel {rel})",
            r.unavailability()
        );
    }

    #[test]
    fn spare_cuts_downtime_versus_no_spare() {
        let mk = |s: u32, uses_fo: bool| {
            TierModel::new(2, 2, s).with_class(FailureClass::new(
                "hw/hard",
                Duration::from_days(650.0).rate(),
                Duration::from_hours(38.0),
                Duration::from_mins(5.0),
                uses_fo,
            ))
        };
        let e = CtmcEngine::default();
        let without = e.evaluate(&mk(0, false)).unwrap().annual_downtime();
        let with = e.evaluate(&mk(1, true)).unwrap().annual_downtime();
        // Without a spare each failure costs ~38h; with one it costs ~5min.
        assert!(
            with.minutes() < without.minutes() / 50.0,
            "spare: {} vs none: {}",
            with.minutes(),
            without.minutes()
        );
    }

    #[test]
    fn truncation_converges() {
        // Paper-like tier (m = n, spares): downtime is dominated by
        // single-failure transients, so shallow truncation already captures
        // it and deepening the cap must not move the estimate.
        let model = TierModel::new(4, 4, 1)
            .with_class(FailureClass::new(
                "hw/hard",
                Duration::from_days(650.0).rate(),
                Duration::from_hours(38.0),
                Duration::from_mins(5.0),
                true,
            ))
            .with_class(simple_class(60.0 * 24.0, 0.07));
        let eval = |cap: u32| {
            CtmcEngine::default()
                .with_max_concurrent(cap)
                .evaluate(&model)
                .unwrap()
                .unavailability()
        };
        let shallow = eval(3);
        let deep = eval(5);
        let rel = (shallow - deep).abs() / deep;
        assert!(rel < 1e-3, "truncation error too large: {rel}");
    }

    #[test]
    fn truncation_plateau_once_down_states_are_covered() {
        // Redundant tier where downtime needs 4 concurrent failures: caps
        // below 4 see (almost) none of it, caps >= 4 agree with each other.
        let model = TierModel::new(6, 4, 1)
            .with_class(FailureClass::new(
                "hw/hard",
                Duration::from_days(650.0).rate(),
                Duration::from_hours(38.0),
                Duration::from_mins(5.0),
                true,
            ))
            .with_class(simple_class(60.0 * 24.0, 0.07));
        let eval = |cap: u32| {
            CtmcEngine::default()
                .with_max_concurrent(cap)
                .evaluate(&model)
                .unwrap()
                .unavailability()
        };
        let at4 = eval(4);
        let at7 = eval(7);
        assert!(
            eval(3) < at4 / 100.0,
            "cap 3 should miss the 4-failure states"
        );
        assert!((at4 - at7).abs() / at7 < 2e-3, "cap 4 vs 7: {at4} vs {at7}");
    }

    #[test]
    fn hot_spares_increase_failure_exposure_but_keep_service_up() {
        let cold = TierModel::new(2, 2, 1).with_class(FailureClass::new(
            "hw",
            Duration::from_days(100.0).rate(),
            Duration::from_hours(10.0),
            Duration::from_mins(5.0),
            true,
        ));
        let hot = cold.clone().with_exposed_spares(true);
        let e = CtmcEngine::default();
        let d_cold = e.evaluate(&cold).unwrap().unavailability();
        let d_hot = e.evaluate(&hot).unwrap().unavailability();
        // A hot spare can be dead exactly when needed, so exposure raises
        // unavailability somewhat; but it must stay the same order.
        assert!(d_hot >= d_cold);
        assert!(d_hot < d_cold * 3.0, "hot {d_hot} vs cold {d_cold}");
    }

    #[test]
    fn rejects_invalid_model() {
        let bad = TierModel::new(1, 1, 0); // no classes
        assert!(CtmcEngine::default().evaluate(&bad).is_err());
    }

    #[test]
    fn state_space_is_independent_of_cluster_size() {
        let mk = |n: u32| {
            TierModel::new(n, n, 2).with_class(FailureClass::new(
                "hw",
                Duration::from_days(650.0).rate(),
                Duration::from_hours(38.0),
                Duration::from_mins(5.0),
                true,
            ))
        };
        let e = CtmcEngine::default();
        let small = e.explore_chain(&mk(4)).unwrap().n_states();
        let large = e.explore_chain(&mk(400)).unwrap().n_states();
        assert_eq!(small, large);
        assert!(large < 50, "truncated chain should stay tiny, got {large}");
    }

    /// A Fig.-7-style rate sweep: same structure, different MTBF/MTTR per
    /// step, which is exactly the neighborhood the repatch + warm-start
    /// machinery targets.
    fn rate_sweep(step: u32) -> TierModel {
        let mtbf_days = 400.0 + 50.0 * f64::from(step);
        let mttr_hours = 48.0 - 4.0 * f64::from(step);
        TierModel::new(3, 3, 1)
            .with_class(FailureClass::new(
                "hw/hard",
                Duration::from_days(mtbf_days).rate(),
                Duration::from_hours(mttr_hours),
                Duration::from_mins(5.0),
                true,
            ))
            .with_class(simple_class(60.0 * 24.0, 0.07 + 0.01 * f64::from(step)))
    }

    #[test]
    fn session_evaluation_is_bit_identical_to_one_shot() {
        // With the default dense-first solver, warm state must not perturb
        // anything: the session path has to reproduce the one-shot result
        // bit for bit at every step of the sweep, regardless of what the
        // session accumulated from earlier (different-rate) models.
        let engine = CtmcEngine::default();
        let mut session = EvalSession::new();
        for step in 0..6 {
            let model = rate_sweep(step);
            let (one_shot, health_cold) = engine.evaluate_with_health(&model).unwrap();
            let (warm, health_warm) = engine.evaluate_with_session(&model, &mut session).unwrap();
            assert_eq!(
                warm.unavailability().to_bits(),
                one_shot.unavailability().to_bits(),
                "step {step}"
            );
            assert_eq!(
                warm.down_event_rate().per_hour_value().to_bits(),
                one_shot.down_event_rate().per_hour_value().to_bits(),
                "step {step}"
            );
            assert_eq!(health_warm.fallbacks, health_cold.fallbacks);
        }
        // All six models share one structural shape: one exploration, five
        // in-place rebuilds, every later solve warm-hinted.
        assert_eq!(session.cached_chains(), 1);
        assert_eq!(session.stats().solves, 6);
        assert_eq!(session.stats().rebuilds_avoided, 5);
        assert_eq!(session.stats().warm_hits, 5);
    }

    #[test]
    fn session_agrees_with_one_shot_on_the_iterative_path() {
        // Force the warm-startable iterative solvers (dense cutover 0) and
        // check the warm results stay within the residual-gate tolerance of
        // the cold ones while actually consuming the warm starts.
        let engine = CtmcEngine::default().with_dense_cutover(0);
        let mut session = EvalSession::new();
        for step in 0..6 {
            let model = rate_sweep(step);
            let cold = engine.evaluate_with_health(&model).unwrap().0;
            let warm = engine
                .evaluate_with_session(&model, &mut session)
                .unwrap()
                .0;
            assert!(
                (warm.unavailability() - cold.unavailability()).abs() < 1e-9,
                "step {step}: warm {} vs cold {}",
                warm.unavailability(),
                cold.unavailability()
            );
        }
        assert_eq!(session.stats().warm_consumed, 5);
        assert!(
            session.stats().iterations_saved > 0,
            "warm starts should shave sweeps off the cold baseline: {:?}",
            session.stats()
        );
    }

    #[test]
    fn session_survives_structural_changes() {
        // Interleave two different shapes: each keeps its own cached chain
        // and warm state, and results still match the one-shot path.
        let engine = CtmcEngine::default();
        let mut session = EvalSession::new();
        for step in 0..4 {
            let narrow = rate_sweep(step);
            let wide =
                TierModel::new(4, 2, 0).with_class(simple_class(500.0 + f64::from(step), 5.0));
            for model in [&narrow, &wide] {
                let one_shot = engine.evaluate_with_health(model).unwrap().0;
                let warm = engine.evaluate_with_session(model, &mut session).unwrap().0;
                assert_eq!(
                    warm.unavailability().to_bits(),
                    one_shot.unavailability().to_bits()
                );
            }
        }
        assert_eq!(session.cached_chains(), 2);
        assert_eq!(session.stats().rebuilds_avoided, 6);
    }

    #[test]
    fn session_budget_governs_exploration_and_solving() {
        use aved_markov::{CancelToken, MarkovError};
        let model = rate_sweep(0);
        let engine = CtmcEngine::default();

        // A tiny state cap trips during exploration, surfaced as a
        // budget-exhaustion error (not the legacy truncation error).
        let mut starved = EvalSession::new()
            .with_budget(aved_markov::SolveBudget::unlimited().with_max_states(3));
        let err = engine
            .evaluate_with_session(&model, &mut starved)
            .unwrap_err();
        assert!(
            matches!(
                err,
                crate::AvailError::Markov(MarkovError::BudgetExhausted { .. })
            ),
            "{err:?}"
        );

        // A cancelled token aborts before any work happens.
        let token = CancelToken::new();
        token.cancel();
        let mut cancelled = EvalSession::new()
            .with_budget(aved_markov::SolveBudget::unlimited().with_cancel(token));
        let err = engine
            .evaluate_with_session(&model, &mut cancelled)
            .unwrap_err();
        assert!(
            matches!(
                err,
                crate::AvailError::Markov(MarkovError::Cancelled { .. })
            ),
            "{err:?}"
        );

        // The default (unlimited) session budget reproduces the one-shot
        // result bit for bit.
        let mut unlimited = EvalSession::new();
        let governed = engine
            .evaluate_with_session(&model, &mut unlimited)
            .unwrap()
            .0;
        let one_shot = engine.evaluate_with_health(&model).unwrap().0;
        assert_eq!(
            governed.unavailability().to_bits(),
            one_shot.unavailability().to_bits()
        );
    }

    #[test]
    fn dense_cutover_builder_round_trips() {
        let e = CtmcEngine::default().with_dense_cutover(17);
        assert_eq!(e.dense_cutover(), 17);
        assert_eq!(CtmcEngine::default().dense_cutover(), 3000);
    }
}
