//! Deriving a [`TierModel`] from design-space model types (paper §4.2).

use aved_model::{
    DurationSpec, FailureScope, Infrastructure, ModelError, OperationalMode, Sizing, TierDesign,
};
use aved_units::Duration;

use crate::{AvailError, FailureClass, TierModel};

/// The minimum number of active resources for the tier to be up.
///
/// Per the paper: `m = n` when sizing is `static` or the failure scope is
/// `tier`; otherwise `m` comes from the performance requirement (the
/// minimum resource count that still meets the load, `min_for_perf`).
#[must_use]
pub fn required_active(
    sizing: Sizing,
    failure_scope: FailureScope,
    n: u32,
    min_for_perf: u32,
) -> u32 {
    match (sizing, failure_scope) {
        (Sizing::Static, _) | (_, FailureScope::Tier) => n,
        (Sizing::Dynamic, FailureScope::Resource) => min_for_perf.min(n).max(1),
    }
}

/// Builds the availability model for one tier design.
///
/// For every failure mode of every component of the selected resource type,
/// this computes the derived attributes of §4.2:
///
/// * `MTTR_i` = detection time + component repair time (resolved through
///   the maintenance mechanism when delegated) + the sequential restart of
///   the failed component and its dependents;
/// * `FailoverTime_i` = detection time + resource reconfiguration time +
///   startup of the components that are inactive in the spare;
/// * failover is used only when `MTTR_i > FailoverTime_i` and the design
///   has spares.
///
/// Spares are failure-exposed iff any of their components is configured
/// active (a fully powered-off spare cannot fail).
///
/// # Errors
///
/// Returns [`AvailError`] when the design references unknown entities, a
/// mechanism setting is missing/out of range, or the derived model is
/// inconsistent.
pub fn derive_tier_model(
    infrastructure: &Infrastructure,
    td: &TierDesign,
    sizing: Sizing,
    failure_scope: FailureScope,
    min_for_perf: u32,
) -> Result<TierModel, AvailError> {
    let resource = infrastructure
        .resource(td.resource().as_str())
        .ok_or_else(|| ModelError::UnknownResource {
            tier: td.tier().to_string(),
            resource: td.resource().to_string(),
        })?;
    resource.validate()?;

    let spare_modes = td.spare_mode().modes(resource.components().len());
    let inactive_startup = resource.inactive_startup_time(&spare_modes);
    let spares_exposed = td.n_spare() > 0 && spare_modes.contains(&OperationalMode::Active);

    let m = required_active(sizing, failure_scope, td.n_active(), min_for_perf);
    let mut model =
        TierModel::new(td.n_active(), m, td.n_spare()).with_exposed_spares(spares_exposed);

    for (slot_idx, slot) in resource.components().iter().enumerate() {
        let component = infrastructure
            .component(slot.component().as_str())
            .ok_or_else(|| ModelError::UnknownComponent {
                resource: resource.name().to_string(),
                component: slot.component().to_string(),
            })?;
        let restart = resource.restart_time_after(slot_idx);
        for mode in component.failure_modes() {
            let repair = match mode.repair() {
                DurationSpec::Fixed(d) => *d,
                DurationSpec::FromMechanism(mech_name) => {
                    let mech = infrastructure
                        .mechanism(mech_name.as_str())
                        .ok_or_else(|| ModelError::UnknownMechanism {
                            context: format!(
                                "component {} failure mode {}",
                                component.name(),
                                mode.name()
                            ),
                            mechanism: mech_name.to_string(),
                        })?;
                    mech.resolve_mttr(td)?
                        .ok_or_else(|| AvailError::InvalidModel {
                            detail: format!("mechanism {mech_name} declares no mttr effect"),
                        })?
                }
            };
            // MTBF: fixed, or produced by a mechanism (e.g. rejuvenation
            // intervals changing the effective soft-failure MTBF).
            let mtbf = match mode.mtbf_spec() {
                DurationSpec::Fixed(d) => *d,
                DurationSpec::FromMechanism(mech_name) => {
                    let mech = infrastructure
                        .mechanism(mech_name.as_str())
                        .ok_or_else(|| ModelError::UnknownMechanism {
                            context: format!(
                                "component {} failure mode {}",
                                component.name(),
                                mode.name()
                            ),
                            mechanism: mech_name.to_string(),
                        })?;
                    mech.resolve_mtbf(td)?
                        .ok_or_else(|| AvailError::InvalidModel {
                            detail: format!("mechanism {mech_name} declares no mtbf effect"),
                        })?
                }
            };
            if mtbf.is_zero() {
                return Err(AvailError::InvalidModel {
                    detail: format!(
                        "resolved MTBF of {}/{} is zero",
                        component.name(),
                        mode.name()
                    ),
                });
            }
            let mttr = mode.detect_time() + repair + restart;
            if mttr.is_zero() {
                // A failure with no detection, repair or restart latency
                // causes no downtime; drop it rather than feeding a
                // zero-MTTR class to the solvers.
                continue;
            }
            let failover_time = mode.detect_time() + resource.reconfig_time() + inactive_startup;
            // Failover applies when a spare exists and repair is slower than
            // failover (paper rule). A zero failover time (hot spare, no
            // detection latency) would mean instant failover; we model that
            // conservatively as repair-in-place, keeping the Markov chains
            // free of infinite rates.
            let uses_failover =
                td.n_spare() > 0 && mttr > failover_time && !failover_time.is_zero();
            model = model.with_class(FailureClass::new(
                format!("{}/{}", component.name(), mode.name()),
                mtbf.rate(),
                mttr,
                failover_time,
                uses_failover,
            ));
        }
    }
    model.check()?;
    Ok(model)
}

/// The loss window of a tier design, if its resource's application software
/// declares one (paper §3.1.1): a fixed duration, or the value produced by
/// the referenced mechanism (e.g. the selected checkpoint interval).
///
/// Returns `Ok(None)` when no component of the resource declares a loss
/// window.
///
/// # Errors
///
/// Returns [`AvailError`] for dangling references or missing mechanism
/// settings.
pub fn loss_window(
    infrastructure: &Infrastructure,
    td: &TierDesign,
) -> Result<Option<Duration>, AvailError> {
    let resource = infrastructure
        .resource(td.resource().as_str())
        .ok_or_else(|| ModelError::UnknownResource {
            tier: td.tier().to_string(),
            resource: td.resource().to_string(),
        })?;
    for slot in resource.components() {
        let component = infrastructure
            .component(slot.component().as_str())
            .ok_or_else(|| ModelError::UnknownComponent {
                resource: resource.name().to_string(),
                component: slot.component().to_string(),
            })?;
        match component.loss_window() {
            None => continue,
            Some(DurationSpec::Fixed(d)) => return Ok(Some(*d)),
            Some(DurationSpec::FromMechanism(mech_name)) => {
                let mech = infrastructure
                    .mechanism(mech_name.as_str())
                    .ok_or_else(|| ModelError::UnknownMechanism {
                        context: format!("component {} loss window", component.name()),
                        mechanism: mech_name.to_string(),
                    })?;
                let lw = mech
                    .resolve_loss_window(td)?
                    .ok_or_else(|| AvailError::InvalidModel {
                        detail: format!("mechanism {mech_name} declares no loss_window effect"),
                    })?;
                return Ok(Some(lw));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_model::{
        ComponentType, EffectValue, FailureMode, Mechanism, ParamRange, ParamValue, Parameter,
        ResourceComponent, ResourceType, SpareMode,
    };
    use aved_units::Money;

    /// machineA + linux + appserverA as rC, with maintenanceA, per Fig. 3.
    fn infra() -> Infrastructure {
        Infrastructure::new()
            .with_component(
                ComponentType::new("machineA")
                    .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
                    .with_failure_mode(FailureMode::new(
                        "hard",
                        Duration::from_days(650.0),
                        DurationSpec::FromMechanism("maintenanceA".into()),
                        Duration::from_mins(2.0),
                    ))
                    .with_failure_mode(FailureMode::new(
                        "soft",
                        Duration::from_days(75.0),
                        Duration::ZERO,
                        Duration::ZERO,
                    )),
            )
            .with_component(
                ComponentType::new("linux").with_failure_mode(FailureMode::new(
                    "soft",
                    Duration::from_days(60.0),
                    Duration::ZERO,
                    Duration::ZERO,
                )),
            )
            .with_component(
                ComponentType::new("appserverA")
                    .with_costs(Money::ZERO, Money::from_dollars(1700.0))
                    .with_failure_mode(FailureMode::new(
                        "soft",
                        Duration::from_days(60.0),
                        Duration::ZERO,
                        Duration::ZERO,
                    )),
            )
            .with_mechanism(
                Mechanism::new("maintenanceA")
                    .with_param(Parameter::new(
                        "level",
                        ParamRange::Levels(vec![
                            "bronze".into(),
                            "silver".into(),
                            "gold".into(),
                            "platinum".into(),
                        ]),
                    ))
                    .with_cost_table(
                        "level",
                        vec![
                            Money::from_dollars(380.0),
                            Money::from_dollars(580.0),
                            Money::from_dollars(760.0),
                            Money::from_dollars(1500.0),
                        ],
                    )
                    .with_mttr_effect(EffectValue::Table {
                        param: "level".into(),
                        values: vec![
                            Duration::from_hours(38.0),
                            Duration::from_hours(15.0),
                            Duration::from_hours(8.0),
                            Duration::from_hours(6.0),
                        ],
                    }),
            )
            .with_resource(
                ResourceType::new("rC", Duration::ZERO)
                    .with_component(ResourceComponent::new(
                        "machineA",
                        None,
                        Duration::from_secs(30.0),
                    ))
                    .with_component(ResourceComponent::new(
                        "linux",
                        Some("machineA".into()),
                        Duration::from_mins(2.0),
                    ))
                    .with_component(ResourceComponent::new(
                        "appserverA",
                        Some("linux".into()),
                        Duration::from_mins(2.0),
                    )),
            )
    }

    fn design(level: &str, n: u32, s: u32) -> TierDesign {
        TierDesign::new("application", "rC", n, s).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level(level.into()),
        )
    }

    #[test]
    fn derives_paper_class_attributes() {
        let model = derive_tier_model(
            &infra(),
            &design("bronze", 3, 0),
            Sizing::Dynamic,
            FailureScope::Resource,
            2,
        )
        .unwrap();
        assert_eq!(model.n(), 3);
        assert_eq!(model.m(), 2);
        assert_eq!(model.s(), 0);
        assert_eq!(model.classes().len(), 4);

        let by_label = |l: &str| {
            model
                .classes()
                .iter()
                .find(|c| c.label() == l)
                .unwrap_or_else(|| panic!("missing class {l}"))
        };
        // machineA/hard: detect 2m + repair 38h (bronze) + restart of
        // machineA+linux+appserverA (30s + 2m + 2m).
        let hard = by_label("machineA/hard");
        assert_eq!(
            hard.mttr(),
            Duration::from_mins(2.0) + Duration::from_hours(38.0) + Duration::from_secs(270.0)
        );
        assert!(!hard.uses_failover(), "no spares in this design");
        // machineA/soft: restart of the whole stack only.
        let soft = by_label("machineA/soft");
        assert_eq!(soft.mttr(), Duration::from_secs(270.0));
        // linux/soft restarts linux + appserver.
        assert_eq!(by_label("linux/soft").mttr(), Duration::from_mins(4.0));
        // appserverA/soft restarts only itself.
        assert_eq!(by_label("appserverA/soft").mttr(), Duration::from_mins(2.0));
    }

    #[test]
    fn maintenance_level_changes_hard_mttr() {
        let bronze = derive_tier_model(
            &infra(),
            &design("bronze", 2, 0),
            Sizing::Dynamic,
            FailureScope::Resource,
            2,
        )
        .unwrap();
        let platinum = derive_tier_model(
            &infra(),
            &design("platinum", 2, 0),
            Sizing::Dynamic,
            FailureScope::Resource,
            2,
        )
        .unwrap();
        let hard = |m: &TierModel| {
            m.classes()
                .iter()
                .find(|c| c.label() == "machineA/hard")
                .unwrap()
                .mttr()
        };
        assert!(hard(&platinum) < hard(&bronze));
        assert_eq!(
            hard(&platinum),
            Duration::from_mins(2.0) + Duration::from_hours(6.0) + Duration::from_secs(270.0)
        );
    }

    #[test]
    fn failover_applies_only_to_slow_repairs() {
        let model = derive_tier_model(
            &infra(),
            &design("bronze", 2, 1),
            Sizing::Dynamic,
            FailureScope::Resource,
            2,
        )
        .unwrap();
        // Failover time for an all-inactive spare: detect + reconfig(0) +
        // full startup (4.5 m). Hard repair (38h) > failover -> failover;
        // soft repairs (minutes) < failover -> repair in place.
        let hard = model
            .classes()
            .iter()
            .find(|c| c.label() == "machineA/hard")
            .unwrap();
        assert!(hard.uses_failover());
        assert_eq!(
            hard.failover_time(),
            Duration::from_mins(2.0) + Duration::from_secs(270.0)
        );
        for label in ["machineA/soft", "linux/soft", "appserverA/soft"] {
            let c = model.classes().iter().find(|c| c.label() == label).unwrap();
            assert!(!c.uses_failover(), "{label} should repair in place");
        }
    }

    #[test]
    fn hot_spare_reduces_failover_time_and_exposes_spares() {
        let td = design("bronze", 2, 1).with_spare_mode(SpareMode::AllActive);
        let model =
            derive_tier_model(&infra(), &td, Sizing::Dynamic, FailureScope::Resource, 2).unwrap();
        assert!(model.spares_exposed());
        let hard = model
            .classes()
            .iter()
            .find(|c| c.label() == "machineA/hard")
            .unwrap();
        // All components already running: failover = detect only.
        assert_eq!(hard.failover_time(), Duration::from_mins(2.0));
    }

    #[test]
    fn required_active_rules() {
        use FailureScope::{Resource, Tier};
        use Sizing::{Dynamic, Static};
        assert_eq!(required_active(Dynamic, Resource, 10, 6), 6);
        assert_eq!(required_active(Dynamic, Resource, 10, 15), 10);
        assert_eq!(required_active(Static, Resource, 10, 6), 10);
        assert_eq!(required_active(Dynamic, Tier, 10, 6), 10);
        assert_eq!(required_active(Dynamic, Resource, 10, 0), 1);
    }

    #[test]
    fn loss_window_resolves_through_checkpoint() {
        let infra = Infrastructure::new()
            .with_component(
                ComponentType::new("mpi")
                    .with_loss_window(DurationSpec::FromMechanism("checkpoint".into()))
                    .with_failure_mode(FailureMode::new(
                        "soft",
                        Duration::from_days(60.0),
                        Duration::ZERO,
                        Duration::ZERO,
                    )),
            )
            .with_mechanism(
                Mechanism::new("checkpoint")
                    .with_param(Parameter::new(
                        "checkpoint_interval",
                        ParamRange::GeometricDuration {
                            min: Duration::from_mins(1.0),
                            max: Duration::from_hours(24.0),
                            factor: 1.05,
                        },
                    ))
                    .with_loss_window_effect(EffectValue::Param("checkpoint_interval".into())),
            )
            .with_resource(ResourceType::new("rH", Duration::ZERO).with_component(
                ResourceComponent::new("mpi", None, Duration::from_secs(2.0)),
            ));
        let td = TierDesign::new("computation", "rH", 4, 0).with_setting(
            "checkpoint",
            "checkpoint_interval",
            ParamValue::Duration(Duration::from_mins(30.0)),
        );
        assert_eq!(
            loss_window(&infra, &td).unwrap(),
            Some(Duration::from_mins(30.0))
        );
        // Missing setting is an error, not None.
        let bare = TierDesign::new("computation", "rH", 4, 0);
        assert!(loss_window(&infra, &bare).is_err());
    }

    #[test]
    fn no_loss_window_is_none() {
        assert_eq!(
            loss_window(&infra(), &design("bronze", 1, 0)).unwrap(),
            None
        );
    }

    #[test]
    fn missing_mechanism_setting_is_error() {
        let td = TierDesign::new("application", "rC", 2, 0); // no level set
        assert!(
            derive_tier_model(&infra(), &td, Sizing::Dynamic, FailureScope::Resource, 2).is_err()
        );
    }
}
