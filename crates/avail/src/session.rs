//! Per-call evaluation context for warm-started solver pipelines.
//!
//! The search layer evaluates thousands of neighboring candidate designs.
//! Neighbors differ in a handful of rates (a maintenance contract swap, a
//! restart-mechanism toggle) far more often than in chain topology, and
//! their steady-state distributions are close. [`EvalSession`] exploits
//! both facts: it owns a reusable [`SolveScratch`] arena, caches explored
//! chains by structural shape for rate-only in-place rebuilds
//! ([`Explored::repatch`]), and carries the previous steady-state vector
//! per shape as a warm-start hint for the next solve.
//!
//! Engines stay `Send + Sync` because all mutable state lives here: each
//! search worker thread owns its own session and passes it down by
//! `&mut` through [`AvailabilityEngine::evaluate_with_session`].
//!
//! [`Explored::repatch`]: aved_markov::Explored::repatch
//! [`AvailabilityEngine::evaluate_with_session`]: crate::AvailabilityEngine::evaluate_with_session

use std::collections::HashMap;

use aved_markov::{Explored, SolveBudget, SolveScratch};

use crate::engine_ctmc::St;
use crate::TierModel;

/// Structural shape of a tier chain: every model attribute that determines
/// the explored state space and transition topology, but none of the rates.
///
/// Two models with equal keys explore bit-identical state orderings and
/// sparsity structures (rates are always positive, so no transition is ever
/// pruned by a rate value), which makes a cached chain safe to rebuild
/// in place via [`Explored::repatch`] — and `repatch` re-verifies the
/// structure exactly, so even a key collision degrades to a re-explore,
/// never to a wrong answer.
///
/// [`Explored::repatch`]: aved_markov::Explored::repatch
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct ChainKey {
    n: u32,
    m: u32,
    s: u32,
    spares_exposed: bool,
    /// Effective truncation cap (`max_concurrent.min(n_total)`).
    cap: u32,
    n_classes: usize,
    /// Bit `i` set iff class `i` uses failover (the only per-class attribute
    /// that shapes the state space).
    failover_mask: u64,
}

impl ChainKey {
    /// The key for `model` under truncation `cap`, or `None` when the model
    /// has more classes than the mask can hold (such a model is evaluated
    /// uncached — correct, just cold).
    pub(crate) fn for_model(model: &TierModel, cap: u32) -> Option<ChainKey> {
        let classes = model.classes();
        if classes.len() > 64 {
            return None;
        }
        let mut failover_mask = 0_u64;
        for (i, class) in classes.iter().enumerate() {
            if class.uses_failover() {
                failover_mask |= 1 << i;
            }
        }
        Some(ChainKey {
            n: model.n(),
            m: model.m(),
            s: model.s(),
            spares_exposed: model.spares_exposed(),
            cap,
            n_classes: classes.len(),
            failover_mask,
        })
    }
}

/// A cached chain for one structural shape: the explored chain (rebuilt in
/// place when rates change), the down-state mask (purely structural, so it
/// never needs recomputing), and the last accepted steady-state vector used
/// to warm-start the next solve of the same shape.
#[derive(Debug, Clone)]
pub(crate) struct CachedChain {
    pub(crate) explored: Explored<St>,
    pub(crate) down: Vec<bool>,
    /// Last accepted π for this shape; empty until the first solve lands.
    pub(crate) pi: Vec<f64>,
    /// Iteration count of the first cold (hint-free) solve of this shape,
    /// the baseline that [`SessionStats::iterations_saved`] measures
    /// against.
    pub(crate) cold_iterations: Option<u64>,
}

/// Counters describing how much work warm starts and in-place rebuilds
/// avoided over the lifetime of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Steady-state solves run through this session.
    pub solves: u64,
    /// Solves that were offered a usable warm-start hint (a previous π of
    /// the same chain shape) — the locality hit rate of the candidate
    /// ordering, whether or not the accepted solver consumed the hint.
    pub warm_hits: u64,
    /// Solves whose *accepted* solution came from an iterative solver that
    /// started at the hint (dense acceptance leaves the hint unused).
    pub warm_consumed: u64,
    /// Total iterative sweeps across all solves and attempts.
    pub iterations: u64,
    /// Iterations the warm starts saved versus each shape's first cold
    /// solve (`Σ max(0, cold_baseline − warm_iterations)` over consumed
    /// warm solves).
    pub iterations_saved: u64,
    /// Chain constructions replaced by a rate-only in-place rebuild.
    pub rebuilds_avoided: u64,
}

impl SessionStats {
    /// Folds another session's counters into this one.
    pub fn absorb(&mut self, other: &SessionStats) {
        self.solves += other.solves;
        self.warm_hits += other.warm_hits;
        self.warm_consumed += other.warm_consumed;
        self.iterations += other.iterations;
        self.iterations_saved += other.iterations_saved;
        self.rebuilds_avoided += other.rebuilds_avoided;
    }
}

/// Reusable evaluation state threaded through
/// [`AvailabilityEngine::evaluate_with_session`] calls.
///
/// A session is cheap to create and grows to the working-set size of the
/// chains it has seen; each search worker thread keeps one for its whole
/// shard. Dropping the session drops all cached state — results never
/// depend on it beyond the solver's residual-checked tolerance, and with
/// the dense-first solver configuration results are bit-identical with or
/// without a session (see the `DESIGN.md` soundness notes).
///
/// [`AvailabilityEngine::evaluate_with_session`]: crate::AvailabilityEngine::evaluate_with_session
#[derive(Debug, Default)]
pub struct EvalSession {
    pub(crate) scratch: SolveScratch,
    pub(crate) chains: HashMap<ChainKey, CachedChain>,
    pub(crate) stats: SessionStats,
    pub(crate) budget: SolveBudget,
}

impl EvalSession {
    /// Creates an empty session with an unlimited budget.
    #[must_use]
    pub fn new() -> EvalSession {
        EvalSession::default()
    }

    /// Sets the resource budget governing every evaluation run through this
    /// session (builder form). The default is unlimited.
    ///
    /// Engines derive a per-candidate budget from it at the start of each
    /// `evaluate_with_session` call (see [`SolveBudget::for_candidate`]), so
    /// a per-candidate timeout restarts for every evaluation while a global
    /// deadline or cancellation token keeps counting across them.
    #[must_use]
    pub fn with_budget(mut self, budget: SolveBudget) -> EvalSession {
        self.budget = budget;
        self
    }

    /// Replaces the session's resource budget in place.
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    /// The resource budget governing evaluations in this session.
    #[must_use]
    pub fn budget(&self) -> &SolveBudget {
        &self.budget
    }

    /// The work-avoidance counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of distinct chain shapes currently cached.
    #[must_use]
    pub fn cached_chains(&self) -> usize {
        self.chains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureClass;
    use aved_units::Duration;

    fn class(label: &str, uses_failover: bool) -> FailureClass {
        FailureClass::new(
            label,
            Duration::from_days(650.0).rate(),
            Duration::from_hours(38.0),
            Duration::from_mins(5.0),
            uses_failover,
        )
    }

    #[test]
    fn key_ignores_rates_but_sees_structure() {
        let a = TierModel::new(2, 2, 1).with_class(class("x", true));
        let b = TierModel::new(2, 2, 1).with_class(FailureClass::new(
            "y",
            Duration::from_days(10.0).rate(),
            Duration::from_hours(1.0),
            Duration::from_mins(1.0),
            true,
        ));
        // Same shape, different rates and labels: same key.
        assert_eq!(
            ChainKey::for_model(&a, 3),
            ChainKey::for_model(&b, 3),
            "rates and labels must not enter the key"
        );
        // Structural changes produce different keys.
        let variants = [
            TierModel::new(3, 2, 1).with_class(class("x", true)),
            TierModel::new(2, 1, 1).with_class(class("x", true)),
            TierModel::new(2, 2, 2).with_class(class("x", true)),
            TierModel::new(2, 2, 1)
                .with_class(class("x", true))
                .with_exposed_spares(true),
            TierModel::new(2, 2, 1)
                .with_class(class("x", true))
                .with_class(class("z", false)),
        ];
        for v in &variants {
            assert_ne!(
                ChainKey::for_model(&a, 3),
                ChainKey::for_model(v, 3),
                "{v:?}"
            );
        }
        // The failover flag and the cap are structural too.
        let c = TierModel::new(2, 2, 1).with_class(class("x", false));
        assert_ne!(ChainKey::for_model(&a, 3), ChainKey::for_model(&c, 3));
        assert_ne!(ChainKey::for_model(&a, 3), ChainKey::for_model(&a, 2));
    }

    #[test]
    fn stats_absorb_sums_all_counters() {
        let mut a = SessionStats {
            solves: 1,
            warm_hits: 2,
            warm_consumed: 3,
            iterations: 4,
            iterations_saved: 5,
            rebuilds_avoided: 6,
        };
        let b = SessionStats {
            solves: 10,
            warm_hits: 20,
            warm_consumed: 30,
            iterations: 40,
            iterations_saved: 50,
            rebuilds_avoided: 60,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            SessionStats {
                solves: 11,
                warm_hits: 22,
                warm_consumed: 33,
                iterations: 44,
                iterations_saved: 55,
                rebuilds_avoided: 66,
            }
        );
    }
}
