//! Series composition of tiers into a service-level availability figure.

use aved_units::{Duration, Rate, MINUTES_PER_YEAR};
use serde::{Deserialize, Serialize};

use crate::TierAvailability;

/// The availability of a whole service: tiers composed in series.
///
/// "Multiple tiers in a design are modeled as an association in series,
/// where the whole design is considered up only when each tier is up"
/// (paper §4.2). With independent tiers, the service availability is the
/// product of tier availabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceAvailability {
    availability: f64,
    down_event_rate: Rate,
}

impl ServiceAvailability {
    /// Steady-state probability the service is up.
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.availability
    }

    /// Steady-state probability the service is down.
    #[must_use]
    pub fn unavailability(&self) -> f64 {
        1.0 - self.availability
    }

    /// Expected annual downtime.
    #[must_use]
    pub fn annual_downtime(&self) -> Duration {
        Duration::from_mins(self.unavailability() * MINUTES_PER_YEAR)
    }

    /// Expected annual uptime (`T_up`).
    #[must_use]
    pub fn annual_uptime(&self) -> Duration {
        Duration::from_mins(self.availability * MINUTES_PER_YEAR)
    }

    /// Approximate rate of service-down events: the sum of tier down-event
    /// rates weighted by the availability of the other tiers (a tier outage
    /// only starts a *service* outage if the others are currently up).
    #[must_use]
    pub fn down_event_rate(&self) -> Rate {
        self.down_event_rate
    }
}

/// Combines per-tier results in series.
///
/// # Examples
///
/// ```
/// use aved_avail::{combine_series, TierAvailability};
/// use aved_units::Rate;
///
/// let web = TierAvailability::new(0.001, Rate::per_hour(0.01));
/// let db = TierAvailability::new(0.002, Rate::per_hour(0.005));
/// let service = combine_series(&[web, db]);
/// let expect = 1.0 - 0.999 * 0.998;
/// assert!((service.unavailability() - expect).abs() < 1e-12);
/// ```
#[must_use]
pub fn combine_series(tiers: &[TierAvailability]) -> ServiceAvailability {
    let availability: f64 = tiers.iter().map(TierAvailability::availability).product();
    let mut event_rate = 0.0;
    for (i, tier) in tiers.iter().enumerate() {
        let others_up: f64 = tiers
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, t)| t.availability())
            .product();
        event_rate += tier.down_event_rate().per_hour_value() * others_up;
    }
    ServiceAvailability {
        availability,
        down_event_rate: Rate::per_hour(event_rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_perfect() {
        let s = combine_series(&[]);
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.annual_downtime(), Duration::ZERO);
    }

    #[test]
    fn single_tier_passes_through() {
        let t = TierAvailability::new(0.01, Rate::per_hour(0.5));
        let s = combine_series(&[t]);
        assert!((s.unavailability() - 0.01).abs() < 1e-15);
        assert!((s.down_event_rate().per_hour_value() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn series_downtime_is_near_additive_for_small_unavailability() {
        let tiers = [
            TierAvailability::new(1e-4, Rate::per_hour(0.001)),
            TierAvailability::new(2e-4, Rate::per_hour(0.002)),
            TierAvailability::new(3e-4, Rate::per_hour(0.003)),
        ];
        let s = combine_series(&tiers);
        let additive = 6e-4;
        assert!((s.unavailability() - additive).abs() / additive < 1e-3);
        // Downtime in minutes per year, roughly the sum of the parts.
        let sum_minutes: f64 = tiers.iter().map(|t| t.annual_downtime().minutes()).sum();
        assert!((s.annual_downtime().minutes() - sum_minutes).abs() / sum_minutes < 1e-3);
    }

    #[test]
    fn event_rate_discounts_overlap() {
        let heavy = TierAvailability::new(0.5, Rate::per_hour(1.0));
        let s = combine_series(&[heavy, heavy]);
        // Each tier's outages only start service outages half the time
        // (when the other tier is up).
        assert!((s.down_event_rate().per_hour_value() - 1.0).abs() < 1e-12);
        assert!((s.availability() - 0.25).abs() < 1e-12);
    }
}
