//! Discrete-event Monte Carlo availability simulator.
//!
//! A fully independent implementation of the tier failure/repair/failover
//! dynamics, used to cross-validate the analytic engines and to explore
//! assumptions they cannot express (deterministic repair and failover
//! times instead of exponential ones).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aved_units::{Rate, HOURS_PER_YEAR};

use crate::{AvailError, AvailabilityEngine, TierAvailability, TierModel};

/// The distribution family used for repair and failover completion times.
///
/// Failure inter-arrivals are always exponential (an MTBF is a rate);
/// repairs and failovers can be modeled as exponential (matching the Markov
/// engines' assumption) or deterministic (fixed duration equal to the
/// mean), which the paper's Markov tooling cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RepairDistribution {
    /// Exponentially distributed with the class mean (Markov assumption).
    #[default]
    Exponential,
    /// Always exactly the class mean.
    Deterministic,
}

/// A simulation result: the availability estimate plus statistical quality
/// measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationReport {
    availability: TierAvailability,
    relative_half_width: f64,
    simulated_years: f64,
    n_down_events: u64,
}

impl SimulationReport {
    /// The availability estimate.
    #[must_use]
    pub fn availability(&self) -> TierAvailability {
        self.availability
    }

    /// Approximate 95% relative half-width of the unavailability estimate,
    /// from batch means.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        self.relative_half_width
    }

    /// Total simulated time in years.
    #[must_use]
    pub fn simulated_years(&self) -> f64 {
        self.simulated_years
    }

    /// Number of observed service-down events.
    #[must_use]
    pub fn n_down_events(&self) -> u64 {
        self.n_down_events
    }
}

/// Monte Carlo availability engine.
///
/// Simulates the tier at per-event granularity: exponential failures over
/// the currently-exposed resources, per-resource repairs, spare startups on
/// failover-class failures. Service downtime accrues whenever fewer than
/// `m` resources are working. The estimate improves as `O(1/√years)`; the
/// default 4000 simulated years resolves annual downtimes down to a few
/// seconds.
///
/// # Examples
///
/// ```
/// use aved_avail::{AvailabilityEngine, SimulationEngine, FailureClass, TierModel};
/// use aved_units::Duration;
///
/// let model = TierModel::new(1, 1, 0).with_class(FailureClass::new(
///     "hw",
///     Duration::from_hours(1000.0).rate(),
///     Duration::from_hours(10.0),
///     Duration::ZERO,
///     false,
/// ));
/// let engine = SimulationEngine::new(42).with_years(500.0);
/// let result = engine.evaluate(&model)?;
/// let expect = 10.0 / 1010.0;
/// assert!((result.unavailability() - expect).abs() / expect < 0.2);
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationEngine {
    seed: u64,
    years: f64,
    distribution: RepairDistribution,
}

impl SimulationEngine {
    /// Creates a simulator with the given RNG seed, the default horizon
    /// (4000 simulated years) and exponential repairs.
    #[must_use]
    pub fn new(seed: u64) -> SimulationEngine {
        SimulationEngine {
            seed,
            years: 4000.0,
            distribution: RepairDistribution::Exponential,
        }
    }

    /// Sets the simulated horizon in years.
    ///
    /// # Panics
    ///
    /// Panics if `years` is not positive.
    #[must_use]
    pub fn with_years(mut self, years: f64) -> SimulationEngine {
        assert!(years > 0.0, "simulation horizon must be positive");
        self.years = years;
        self
    }

    /// Sets the repair/failover time distribution.
    #[must_use]
    pub fn with_distribution(mut self, d: RepairDistribution) -> SimulationEngine {
        self.distribution = d;
        self
    }

    /// Runs the simulation and returns the estimate with quality measures.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for inconsistent models.
    pub fn run(&self, model: &TierModel) -> Result<SimulationReport, AvailError> {
        model.check()?;
        let mut sim = Sim::new(model, self.seed, self.distribution);
        let horizon_h = self.years * HOURS_PER_YEAR;
        let n_batches = 10;
        let batch_h = horizon_h / n_batches as f64;
        let mut batch_unavail = Vec::with_capacity(n_batches);
        for b in 0..n_batches {
            let end = batch_h * (b + 1) as f64;
            let down_before = sim.down_time_h;
            sim.run_until(end);
            batch_unavail.push((sim.down_time_h - down_before) / batch_h);
        }
        let mean: f64 = batch_unavail.iter().sum::<f64>() / n_batches as f64;
        let var: f64 = batch_unavail
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n_batches - 1) as f64;
        let half_width = 1.96 * (var / n_batches as f64).sqrt();
        let relative_half_width = if mean > 0.0 { half_width / mean } else { 0.0 };
        let event_rate = sim.down_events as f64 / horizon_h;
        Ok(SimulationReport {
            availability: TierAvailability::new(mean.clamp(0.0, 1.0), Rate::per_hour(event_rate)),
            relative_half_width,
            simulated_years: self.years,
            n_down_events: sim.down_events,
        })
    }
}

impl AvailabilityEngine for SimulationEngine {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        Ok(self.run(model)?.availability())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A failure strikes (class chosen at firing time); version guards
    /// against stale exposure.
    Failure { version: u64 },
    /// A repair of one resource failed in `class` completes.
    RepairDone { class: usize },
    /// A spare being started for a `class` failover becomes active.
    StartupDone { class: usize },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time_h: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Event) -> std::cmp::Ordering {
        self.time_h
            .total_cmp(&other.time_h)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Sim<'m> {
    model: &'m TierModel,
    rng: StdRng,
    distribution: RepairDistribution,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now_h: f64,
    // Counts; invariant: working + starting + free + sum(failed) == n + s.
    working: u32,
    free_spares: u32,
    starting: Vec<u32>,
    failed: Vec<u32>,
    failure_version: u64,
    down_time_h: f64,
    down_events: u64,
    was_down: bool,
}

impl<'m> Sim<'m> {
    fn new(model: &'m TierModel, seed: u64, distribution: RepairDistribution) -> Sim<'m> {
        let n_classes = model.classes().len();
        let mut sim = Sim {
            model,
            rng: StdRng::seed_from_u64(seed),
            distribution,
            heap: BinaryHeap::new(),
            seq: 0,
            now_h: 0.0,
            working: model.n(),
            free_spares: model.s(),
            starting: vec![0; n_classes],
            failed: vec![0; n_classes],
            failure_version: 0,
            down_time_h: 0.0,
            down_events: 0,
            was_down: false,
        };
        sim.schedule_next_failure();
        sim
    }

    fn exposure(&self) -> f64 {
        let exposed = f64::from(self.working)
            + if self.model.spares_exposed() {
                f64::from(self.free_spares)
            } else {
                0.0
            };
        exposed * self.model.per_resource_failure_rate().per_hour_value()
    }

    fn push(&mut self, time_h: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time_h,
            seq: self.seq,
            kind,
        }));
    }

    fn exp(&mut self, mean_h: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean_h * u.ln()
    }

    fn service_time(&mut self, mean_h: f64) -> f64 {
        match self.distribution {
            RepairDistribution::Exponential => self.exp(mean_h),
            RepairDistribution::Deterministic => mean_h,
        }
    }

    fn schedule_next_failure(&mut self) {
        self.failure_version += 1;
        let rate = self.exposure();
        if rate > 0.0 {
            let dt = self.exp(1.0 / rate);
            self.push(
                self.now_h + dt,
                EventKind::Failure {
                    version: self.failure_version,
                },
            );
        }
    }

    fn advance_to(&mut self, time_h: f64) {
        let down = self.working < self.model.m();
        if down {
            self.down_time_h += time_h - self.now_h;
        }
        self.now_h = time_h;
    }

    fn note_down_transition(&mut self) {
        let down = self.working < self.model.m();
        if down && !self.was_down {
            self.down_events += 1;
        }
        self.was_down = down;
    }

    fn run_until(&mut self, end_h: f64) {
        while let Some(&Reverse(ev)) = self.heap.peek() {
            if ev.time_h > end_h {
                break;
            }
            let ev = self.heap.pop().expect("peeked").0;
            self.advance_to(ev.time_h);
            match ev.kind {
                EventKind::Failure { version } => {
                    if version != self.failure_version {
                        continue; // stale exposure snapshot
                    }
                    self.handle_failure();
                    self.schedule_next_failure();
                }
                EventKind::RepairDone { class } => {
                    self.failed[class] -= 1;
                    if self.working < self.model.n() {
                        self.working += 1;
                    } else {
                        self.free_spares += 1;
                    }
                    self.schedule_next_failure();
                }
                EventKind::StartupDone { class } => {
                    self.starting[class] -= 1;
                    if self.working < self.model.n() {
                        self.working += 1;
                    } else {
                        self.free_spares += 1;
                    }
                    self.schedule_next_failure();
                }
            }
            self.note_down_transition();
        }
        self.advance_to(end_h);
    }

    fn handle_failure(&mut self) {
        // Choose the failure class proportionally to its rate.
        let total: f64 = self
            .model
            .classes()
            .iter()
            .map(|c| c.rate().per_hour_value())
            .sum();
        let mut pick: f64 = self.rng.gen_range(0.0..total);
        let mut class = self.model.classes().len() - 1;
        for (i, c) in self.model.classes().iter().enumerate() {
            pick -= c.rate().per_hour_value();
            if pick <= 0.0 {
                class = i;
                break;
            }
        }
        // Choose the victim: a working resource or an exposed idle spare.
        let exposed_spares = if self.model.spares_exposed() {
            self.free_spares
        } else {
            0
        };
        let victims = self.working + exposed_spares;
        if victims == 0 {
            return;
        }
        let hits_spare = exposed_spares > 0 && self.rng.gen_range(0..victims) >= self.working;
        if hits_spare {
            self.free_spares -= 1;
        } else {
            self.working -= 1;
            // Failover-class failures pull in a spare (when one is free).
            let c = &self.model.classes()[class];
            if c.uses_failover() && self.free_spares > 0 {
                self.free_spares -= 1;
                self.starting[class] += 1;
                let dt = self.service_time(c.failover_time().hours());
                self.push(self.now_h + dt, EventKind::StartupDone { class });
            }
        }
        self.failed[class] += 1;
        let mttr_h = self.model.classes()[class].mttr().hours();
        let dt = self.service_time(mttr_h);
        self.push(self.now_h + dt, EventKind::RepairDone { class });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtmcEngine, FailureClass};
    use aved_units::Duration;

    fn class(mtbf_h: f64, mttr_h: f64) -> FailureClass {
        FailureClass::new(
            "c",
            Duration::from_hours(mtbf_h).rate(),
            Duration::from_hours(mttr_h),
            Duration::ZERO,
            false,
        )
    }

    #[test]
    fn matches_two_state_closed_form() {
        let model = TierModel::new(1, 1, 0).with_class(class(100.0, 2.0));
        let r = SimulationEngine::new(1)
            .with_years(300.0)
            .run(&model)
            .unwrap();
        let expect = 2.0 / 102.0;
        let got = r.availability().unavailability();
        assert!(
            (got - expect).abs() / expect < 0.1,
            "got {got}, expect {expect}"
        );
        assert!(r.n_down_events() > 100);
        assert!(r.simulated_years() == 300.0);
    }

    #[test]
    fn matches_ctmc_on_redundant_tier() {
        let model = TierModel::new(3, 2, 0).with_class(class(200.0, 8.0));
        let sim = SimulationEngine::new(7)
            .with_years(20_000.0)
            .run(&model)
            .unwrap();
        let exact = CtmcEngine::default().evaluate(&model).unwrap();
        let (a, b) = (sim.availability().unavailability(), exact.unavailability());
        assert!((a - b).abs() / b < 0.1, "sim {a} vs ctmc {b}");
    }

    #[test]
    fn matches_ctmc_with_failover_spares() {
        let model = TierModel::new(2, 2, 1).with_class(FailureClass::new(
            "hw/hard",
            Duration::from_hours(2000.0).rate(),
            Duration::from_hours(38.0),
            Duration::from_mins(5.0),
            true,
        ));
        let sim = SimulationEngine::new(11)
            .with_years(50_000.0)
            .run(&model)
            .unwrap();
        let exact = CtmcEngine::default().evaluate(&model).unwrap();
        let (a, b) = (sim.availability().unavailability(), exact.unavailability());
        assert!((a - b).abs() / b < 0.15, "sim {a} vs ctmc {b}");
    }

    #[test]
    fn deterministic_repairs_reduce_variance_of_downtime() {
        // With deterministic repairs the unavailability mean is unchanged
        // (PASTA-like insensitivity does not hold exactly here, but the
        // mean must be in the same ballpark).
        let model = TierModel::new(1, 1, 0).with_class(class(100.0, 2.0));
        let exp = SimulationEngine::new(3)
            .with_years(2000.0)
            .run(&model)
            .unwrap();
        let det = SimulationEngine::new(3)
            .with_years(2000.0)
            .with_distribution(RepairDistribution::Deterministic)
            .run(&model)
            .unwrap();
        let (a, b) = (
            exp.availability().unavailability(),
            det.availability().unavailability(),
        );
        assert!((a - b).abs() / a < 0.1, "exp {a} vs det {b}");
    }

    #[test]
    fn seeds_are_deterministic() {
        let model = TierModel::new(2, 1, 0).with_class(class(50.0, 1.0));
        let a = SimulationEngine::new(99)
            .with_years(100.0)
            .run(&model)
            .unwrap();
        let b = SimulationEngine::new(99)
            .with_years(100.0)
            .run(&model)
            .unwrap();
        assert_eq!(
            a.availability().unavailability(),
            b.availability().unavailability()
        );
        let c = SimulationEngine::new(100)
            .with_years(100.0)
            .run(&model)
            .unwrap();
        assert_ne!(
            a.availability().unavailability(),
            c.availability().unavailability()
        );
    }

    #[test]
    fn half_width_shrinks_with_horizon() {
        let model = TierModel::new(1, 1, 0).with_class(class(100.0, 2.0));
        let short = SimulationEngine::new(5)
            .with_years(50.0)
            .run(&model)
            .unwrap();
        let long = SimulationEngine::new(5)
            .with_years(5000.0)
            .run(&model)
            .unwrap();
        assert!(long.relative_half_width() < short.relative_half_width());
    }

    #[test]
    fn rejects_invalid_model() {
        let bad = TierModel::new(1, 2, 0).with_class(class(1.0, 1.0));
        assert!(SimulationEngine::new(0).run(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_horizon_panics() {
        let _ = SimulationEngine::new(0).with_years(0.0);
    }
}
