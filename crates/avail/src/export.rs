//! Exporting availability models for external evaluation engines.
//!
//! The paper's Aved "generates representations of this availability model
//! that can be used with Avanto and our own simplified Markov Model (this
//! can be easily translated to work with other engines)". This module
//! provides that interoperability surface:
//!
//! * [`export_parameters`] — the §4.2 parameter list (n, m, s, and per
//!   failure mode the MTBF, MTTR and failover time) as a human-readable
//!   document, the lingua franca any availability tool can consume;
//! * [`export_sharpe_markov`] — the fully-expanded tier CTMC in the style
//!   of SHARPE's `markov` input format (state list, transition rates, and
//!   the down-state reward), ready to feed a classical evaluator.

use std::fmt::Write as _;

use crate::{AvailError, CtmcEngine, TierModel};

/// Renders the §4.2 availability-model parameter list.
///
/// # Examples
///
/// ```
/// use aved_avail::{export_parameters, FailureClass, TierModel};
/// use aved_units::Duration;
///
/// let model = TierModel::new(2, 2, 1).with_class(FailureClass::new(
///     "machineA/hard",
///     Duration::from_days(650.0).rate(),
///     Duration::from_hours(38.0),
///     Duration::from_mins(5.0),
///     true,
/// ));
/// let doc = export_parameters(&model);
/// assert!(doc.contains("n = 2"));
/// assert!(doc.contains("machineA/hard"));
/// ```
#[must_use]
pub fn export_parameters(model: &TierModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\\\\ Aved tier availability model (paper section 4.2)");
    let _ = writeln!(out, "n = {}  \\\\ active resources", model.n());
    let _ = writeln!(
        out,
        "m = {}  \\\\ minimum active for the tier to be up",
        model.m()
    );
    let _ = writeln!(out, "s = {}  \\\\ spare resources", model.s());
    let _ = writeln!(
        out,
        "spares_exposed = {}",
        if model.spares_exposed() { "yes" } else { "no" }
    );
    let _ = writeln!(out, "failure_modes = {}", model.classes().len());
    for class in model.classes() {
        let _ = writeln!(out, "failure_mode={}", class.label());
        let _ = writeln!(out, "  mtbf={}", class.rate().mean_time());
        let _ = writeln!(out, "  mttr={}", class.mttr());
        let _ = writeln!(out, "  failover_time={}", class.failover_time());
        let _ = writeln!(
            out,
            "  failover={}",
            if class.uses_failover() { "yes" } else { "no" }
        );
    }
    out
}

/// Renders the expanded tier chain in the style of SHARPE's `markov`
/// format: one `S<i> S<j> <rate>` line per transition (rates per hour),
/// and a trailing reward block assigning 1 to down states — so computing
/// the expected steady-state reward in the external tool yields the
/// unavailability directly.
///
/// The chain is expanded by the given engine (its truncation depth
/// applies). State `S0` is the all-up state.
///
/// # Errors
///
/// Returns [`AvailError`] for inconsistent models.
pub fn export_sharpe_markov(engine: &CtmcEngine, model: &TierModel) -> Result<String, AvailError> {
    model.check()?;
    let explored = engine.explore_chain(model)?;
    let ctmc = explored.ctmc();
    let down = engine.down_mask(model, &explored);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "* Aved tier model: n={} m={} s={}",
        model.n(),
        model.m(),
        model.s()
    );
    let _ = writeln!(
        out,
        "* {} states, {} transitions; rates per hour",
        ctmc.n_states(),
        ctmc.n_transitions()
    );
    let _ = writeln!(out, "markov tier");
    for t in ctmc.transitions() {
        let _ = writeln!(out, "S{} S{} {:.12e}", t.from, t.to, t.rate);
    }
    let _ = writeln!(out, "reward");
    for (i, &d) in down.iter().enumerate() {
        if d {
            let _ = writeln!(out, "S{i} 1.0");
        }
    }
    let _ = writeln!(out, "end");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureClass;
    use aved_units::Duration;

    fn model() -> TierModel {
        TierModel::new(2, 2, 1)
            .with_class(FailureClass::new(
                "hw/hard",
                Duration::from_days(650.0).rate(),
                Duration::from_hours(38.0),
                Duration::from_mins(5.0),
                true,
            ))
            .with_class(FailureClass::new(
                "os/soft",
                Duration::from_days(60.0).rate(),
                Duration::from_mins(4.0),
                Duration::from_mins(5.0),
                false,
            ))
    }

    #[test]
    fn parameters_document_lists_everything() {
        let doc = export_parameters(&model());
        for needle in [
            "n = 2",
            "m = 2",
            "s = 1",
            "failure_modes = 2",
            "failure_mode=hw/hard",
            "mtbf=650d",
            "mttr=38",
            "failover=yes",
            "failure_mode=os/soft",
            "failover=no",
        ] {
            assert!(doc.contains(needle), "missing {needle:?} in:\n{doc}");
        }
    }

    #[test]
    fn sharpe_export_has_consistent_structure() {
        let engine = CtmcEngine::default();
        let text = export_sharpe_markov(&engine, &model()).unwrap();
        assert!(text.contains("markov tier"));
        assert!(text.contains("reward"));
        assert!(text.trim_end().ends_with("end"));
        // Transition count in the header matches the body.
        let n_transitions = text
            .lines()
            .filter(|l| l.starts_with('S') && l.split_whitespace().count() == 3)
            .filter(|l| l.split_whitespace().nth(2).unwrap().contains('e'))
            .count();
        let explored = engine.explore_chain(&model()).unwrap();
        assert_eq!(n_transitions, explored.ctmc().n_transitions());
        // At least one down state is rewarded (the failover transient).
        let reward_lines = text
            .lines()
            .skip_while(|l| *l != "reward")
            .skip(1)
            .take_while(|l| *l != "end")
            .count();
        assert!(reward_lines > 0);
    }

    #[test]
    fn export_rejects_invalid_models() {
        let engine = CtmcEngine::default();
        let bad = TierModel::new(1, 1, 0); // no classes
        assert!(export_sharpe_markov(&engine, &bad).is_err());
    }
}
