//! The engine trait and the common result type.

use aved_units::{Duration, Rate, MINUTES_PER_YEAR};
use serde::{Deserialize, Serialize};

use crate::{AvailError, EvalSession, TierModel};

/// The result of evaluating one tier's availability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierAvailability {
    unavailability: f64,
    down_event_rate: Rate,
}

impl TierAvailability {
    /// Creates a result from steady-state unavailability (fraction of time
    /// down, in `[0, 1]`) and the rate of up→down transitions.
    ///
    /// # Panics
    ///
    /// Panics if `unavailability` is outside `[0, 1]` or NaN.
    #[must_use]
    pub fn new(unavailability: f64, down_event_rate: Rate) -> TierAvailability {
        assert!(
            (0.0..=1.0).contains(&unavailability),
            "unavailability must be a probability, got {unavailability}"
        );
        TierAvailability {
            unavailability,
            down_event_rate,
        }
    }

    /// Creates a result **without validating** the unavailability.
    ///
    /// Exists for the fault-injection harness, which must be able to hand
    /// downstream code deliberately-broken values (NaN, ∞) to prove the
    /// search layer's guards reject them. Production engines must use
    /// [`TierAvailability::new`].
    #[must_use]
    pub fn new_unchecked(unavailability: f64, down_event_rate: Rate) -> TierAvailability {
        TierAvailability {
            unavailability,
            down_event_rate,
        }
    }

    /// Steady-state probability of being down.
    #[must_use]
    pub fn unavailability(&self) -> f64 {
        self.unavailability
    }

    /// Steady-state probability of being up.
    #[must_use]
    pub fn availability(&self) -> f64 {
        1.0 - self.unavailability
    }

    /// Expected downtime per year (the paper's headline metric).
    #[must_use]
    pub fn annual_downtime(&self) -> Duration {
        Duration::from_mins(self.unavailability * MINUTES_PER_YEAR)
    }

    /// Expected uptime per year (`T_up` in the paper's job analysis).
    #[must_use]
    pub fn annual_uptime(&self) -> Duration {
        Duration::from_mins((1.0 - self.unavailability) * MINUTES_PER_YEAR)
    }

    /// Rate of service-down events (up→down transitions) — the frequency
    /// of outages, as opposed to their total duration.
    #[must_use]
    pub fn down_event_rate(&self) -> Rate {
        self.down_event_rate
    }
}

/// How degraded one availability evaluation was: solver fallbacks taken and
/// the worst accepted balance residual, aggregated by the search layer into
/// its `SearchHealth` report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalHealth {
    /// Solver fallbacks taken (attempts beyond the first, summed over every
    /// steady-state solve this evaluation ran).
    pub fallbacks: u32,
    /// Worst accepted balance residual `‖πQ‖∞` across those solves, when
    /// the engine measures one.
    pub worst_residual: Option<f64>,
}

impl EvalHealth {
    /// Folds another evaluation's health into this one.
    pub fn absorb(&mut self, other: EvalHealth) {
        self.fallbacks += other.fallbacks;
        self.worst_residual = match (self.worst_residual, other.worst_residual) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// An availability evaluation engine: maps a [`TierModel`] to a
/// [`TierAvailability`].
///
/// The paper treats the engine as pluggable (Avanto, Mobius, Sharpe, or its
/// own simplified Markov model); this trait is that plug point. All three
/// engines in this crate implement it, so the design-search code is
/// engine-agnostic.
///
/// Engines are required to be `Send + Sync`: the search layer fans
/// candidate evaluations out across scoped threads, all sharing one
/// `&dyn AvailabilityEngine`. Stateless engines satisfy this for free;
/// decorators with interior state (caches, call counters) must use atomics
/// or locks rather than `Cell`/`RefCell`.
pub trait AvailabilityEngine: Send + Sync {
    /// Evaluates the steady-state availability of a tier.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for inconsistent models or solver failures.
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError>;

    /// Evaluates the tier and also reports how degraded the evaluation was
    /// (solver fallbacks, worst accepted residual).
    ///
    /// The default implementation reports a clean [`EvalHealth`]; engines
    /// with internal fallback machinery override it.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for inconsistent models or solver failures.
    fn evaluate_with_health(
        &self,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        self.evaluate(model).map(|r| (r, EvalHealth::default()))
    }

    /// Evaluates the tier using a caller-owned [`EvalSession`] that carries
    /// reusable solver scratch, cached chain structures, and warm-start
    /// state between calls.
    ///
    /// The default implementation ignores the session and delegates to
    /// [`evaluate_with_health`](Self::evaluate_with_health), so engines
    /// without per-call reusable state (the simulator, the fault injector)
    /// stay correct for free; engines with solver state override it. Each
    /// session must only be used from one thread at a time — the engine
    /// itself stays `Send + Sync` because all mutation lives in the
    /// session.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for inconsistent models or solver failures.
    fn evaluate_with_session(
        &self,
        model: &TierModel,
        _session: &mut EvalSession,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        self.evaluate_with_health(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let r = TierAvailability::new(0.001, Rate::per_hour(0.01));
        assert!((r.availability() - 0.999).abs() < 1e-15);
        // 0.1% of a year in minutes:
        assert!((r.annual_downtime().minutes() - 525.6).abs() < 1e-9);
        assert!((r.annual_uptime().minutes() - 0.999 * 525_600.0).abs() < 1e-6);
        assert_eq!(r.down_event_rate(), Rate::per_hour(0.01));
    }

    #[test]
    fn perfect_and_broken_extremes() {
        let perfect = TierAvailability::new(0.0, Rate::ZERO);
        assert_eq!(perfect.annual_downtime(), Duration::ZERO);
        let broken = TierAvailability::new(1.0, Rate::ZERO);
        assert!((broken.annual_downtime().minutes() - 525_600.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_unavailability_panics() {
        let _ = TierAvailability::new(1.5, Rate::ZERO);
    }
}
