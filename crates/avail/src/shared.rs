//! Shared-subsystem availability: the paper's future-work extension.
//!
//! The paper's §7 plans "to extend Aved to factor LAN topologies and
//! network failures". The dominant availability effect of the network (and
//! of other shared infrastructure such as storage heads or load balancers)
//! is a set of *shared elements in series with the tier*: the tier is up
//! only if, additionally, at least `k` of the `n` redundant shared
//! elements are up. This module models exactly that:
//!
//! * [`SharedSubsystem`] — `n` identical shared elements (switches,
//!   uplinks, array controllers) with their own failure classes, of which
//!   `k` must be up;
//! * [`SharedSubsystem::evaluate`] — closed-form k-of-n availability via
//!   the birth–death solution of the underlying repair chain;
//! * composition with tier results through
//!   [`combine_series`](crate::combine_series), since a shared subsystem
//!   produces an ordinary [`TierAvailability`].

use aved_units::{Duration, Rate};
use serde::{Deserialize, Serialize};

use crate::{AvailError, TierAvailability};

/// A redundant shared subsystem: `n` identical elements, up while at least
/// `k` are operational.
///
/// # Examples
///
/// ```
/// use aved_avail::SharedSubsystem;
/// use aved_units::Duration;
///
/// // Two redundant switches, either one suffices; MTBF 2 years, 4-hour
/// // replacement.
/// let network = SharedSubsystem::new("lan", 2, 1)
///     .with_failure(Duration::from_days(730.0), Duration::from_hours(4.0));
/// let avail = network.evaluate()?;
/// // Duplexing pushes downtime to the double-failure regime: well under a
/// // minute a year.
/// assert!(avail.annual_downtime().minutes() < 1.0);
/// # Ok::<(), aved_avail::AvailError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedSubsystem {
    name: String,
    n: u32,
    k: u32,
    failures: Vec<(Rate, Duration)>,
}

impl SharedSubsystem {
    /// Creates a subsystem of `n` elements requiring `k` up.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, `k > n`, or the name is empty.
    #[must_use]
    pub fn new<S: Into<String>>(name: S, n: u32, k: u32) -> SharedSubsystem {
        let name = name.into();
        assert!(!name.is_empty(), "subsystem name must not be empty");
        assert!(k >= 1 && k <= n, "need 1 <= k <= n, got k={k}, n={n}");
        SharedSubsystem {
            name,
            n,
            k,
            failures: Vec::new(),
        }
    }

    /// Adds a per-element failure mode (MTBF and full MTTR).
    ///
    /// # Panics
    ///
    /// Panics if `mtbf` or `mttr` is zero.
    #[must_use]
    pub fn with_failure(mut self, mtbf: Duration, mttr: Duration) -> SharedSubsystem {
        assert!(!mtbf.is_zero(), "MTBF must be positive");
        assert!(!mttr.is_zero(), "MTTR must be positive");
        self.failures.push((mtbf.rate(), mttr));
        self
    }

    /// The subsystem's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Required up count.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Evaluates steady-state availability.
    ///
    /// Each element is a two-state (up/down) unit with the aggregate
    /// failure rate of its modes and the rate-weighted mean repair time;
    /// elements are independent with per-element repair, so the k-of-n
    /// availability follows from the binomial/birth–death closed form.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError::InvalidModel`] when no failure modes are
    /// declared.
    pub fn evaluate(&self) -> Result<TierAvailability, AvailError> {
        if self.failures.is_empty() {
            return Err(AvailError::InvalidModel {
                detail: format!("shared subsystem {} has no failure modes", self.name),
            });
        }
        let lambda: f64 = self.failures.iter().map(|(r, _)| r.per_hour_value()).sum();
        // Rate-weighted mean repair time (the stationary mix of repairs).
        let weighted_mttr: f64 = self
            .failures
            .iter()
            .map(|(r, mttr)| r.per_hour_value() * mttr.hours())
            .sum::<f64>()
            / lambda;
        let mu = 1.0 / weighted_mttr;
        let availability = aved_markov::birth_death::k_of_n_availability(
            self.n as usize,
            self.k as usize,
            lambda,
            mu,
        )?;
        // Down events begin when the (n-k+1)-th element fails; the rate of
        // that transition is the stationary flow across the k-boundary.
        let pi = aved_markov::birth_death::steady_state(
            &(0..self.n as usize)
                .map(|j| (self.n as usize - j) as f64 * lambda)
                .collect::<Vec<_>>(),
            &(0..self.n as usize)
                .map(|j| (j + 1) as f64 * mu)
                .collect::<Vec<_>>(),
        )?;
        let boundary = (self.n - self.k) as usize;
        let event_rate = pi[boundary] * (self.n as usize - boundary) as f64 * lambda;
        Ok(TierAvailability::new(
            (1.0 - availability).clamp(0.0, 1.0),
            Rate::per_hour(event_rate),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine_series;

    #[test]
    fn single_element_matches_two_state_form() {
        let s = SharedSubsystem::new("switch", 1, 1)
            .with_failure(Duration::from_hours(1000.0), Duration::from_hours(10.0));
        let r = s.evaluate().unwrap();
        assert!((r.unavailability() - 10.0 / 1010.0).abs() < 1e-12);
    }

    #[test]
    fn duplexing_slashes_downtime() {
        let single = SharedSubsystem::new("lan", 1, 1)
            .with_failure(Duration::from_days(365.0), Duration::from_hours(8.0));
        let duplex = SharedSubsystem::new("lan", 2, 1)
            .with_failure(Duration::from_days(365.0), Duration::from_hours(8.0));
        let (a, b) = (
            single.evaluate().unwrap().annual_downtime(),
            duplex.evaluate().unwrap().annual_downtime(),
        );
        assert!(
            b.minutes() < a.minutes() / 100.0,
            "{} vs {}",
            a.minutes(),
            b.minutes()
        );
    }

    #[test]
    fn multiple_failure_modes_aggregate() {
        let s = SharedSubsystem::new("switch", 1, 1)
            .with_failure(Duration::from_hours(2000.0), Duration::from_hours(24.0))
            .with_failure(Duration::from_hours(500.0), Duration::from_mins(10.0));
        let r = s.evaluate().unwrap();
        // Aggregate unavailability ~ sum of per-mode lambda*mttr.
        let expect = 24.0 / 2000.0 + (10.0 / 60.0) / 500.0;
        assert!(
            (r.unavailability() - expect).abs() / expect < 0.05,
            "got {}, expect ~{expect}",
            r.unavailability()
        );
    }

    #[test]
    fn series_with_a_tier_result() {
        let network = SharedSubsystem::new("lan", 2, 1)
            .with_failure(Duration::from_days(365.0), Duration::from_hours(8.0))
            .evaluate()
            .unwrap();
        let tier = TierAvailability::new(1e-4, Rate::per_hour(0.001));
        let service = combine_series(&[tier, network]);
        assert!(service.unavailability() >= tier.unavailability());
        assert!(service.unavailability() < 1.1e-4 + network.unavailability());
    }

    #[test]
    fn needs_failure_modes() {
        assert!(SharedSubsystem::new("x", 2, 1).evaluate().is_err());
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn bad_k_panics() {
        let _ = SharedSubsystem::new("x", 2, 3);
    }

    #[test]
    fn accessors() {
        let s = SharedSubsystem::new("san", 3, 2);
        assert_eq!(s.name(), "san");
        assert_eq!(s.n(), 3);
        assert_eq!(s.k(), 2);
    }
}
