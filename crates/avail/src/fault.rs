//! Deterministic fault injection for resilience testing.
//!
//! [`FaultInjectingEngine`] wraps any [`AvailabilityEngine`] (mirroring the
//! search crate's `CachingEngine` decorator) and injects failures into
//! chosen evaluations: solver non-convergence errors, NaN availability
//! results, and artificial delays. Faults are selected **deterministically**
//! — by the 0-based index of the `evaluate` call (which, in an uncached
//! serial search, is the candidate index), by a structural predicate on the
//! model being evaluated, or by a seeded pseudo-random schedule — so a
//! failing search reproduces exactly.
//!
//! Call-index schedules are only deterministic for serial searches: a
//! parallel search interleaves calls from several workers, so the call at
//! index `k` lands on a nondeterministic candidate. Model-predicate faults
//! ([`FaultInjectingEngine::with_fault_when`]) stay deterministic under any
//! parallelism — the fault follows the model, not the schedule — which is
//! what the parallel-determinism test suite uses.
//!
//! This is the harness that proves the evaluation path degrades gracefully:
//! the fallback chain, the per-candidate isolation in the search loop, and
//! the NaN guards in front of the Pareto frontier are all exercised through
//! it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aved_markov::MarkovError;
use aved_units::Rate;

use crate::{AvailError, AvailabilityEngine, EvalHealth, TierAvailability, TierModel};

/// The failure a [`FaultInjectingEngine`] injects into an evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// The evaluation fails with a solver non-convergence error.
    NonConvergence,
    /// The evaluation "succeeds" but returns a NaN unavailability —
    /// modeling a silently-wrong engine that downstream guards must catch.
    NanResult,
    /// The evaluation is delayed by the given duration, then forwarded to
    /// the inner engine unchanged.
    Delay(Duration),
}

/// A deterministic fault-injecting decorator around an availability engine.
///
/// # Examples
///
/// ```
/// use aved_avail::{
///     AvailabilityEngine, CtmcEngine, FailureClass, FaultInjectingEngine, InjectedFault,
///     TierModel,
/// };
/// use aved_units::Duration;
///
/// let model = TierModel::new(1, 1, 0).with_class(FailureClass::new(
///     "hw",
///     Duration::from_hours(1000.0).rate(),
///     Duration::from_hours(10.0),
///     Duration::ZERO,
///     false,
/// ));
/// let inner = CtmcEngine::default();
/// let engine = FaultInjectingEngine::new(&inner)
///     .with_fault_at(1, InjectedFault::NonConvergence);
/// assert!(engine.evaluate(&model).is_ok()); // call 0: forwarded
/// assert!(engine.evaluate(&model).is_err()); // call 1: injected
/// assert_eq!(engine.injected(), 1);
/// ```
pub struct FaultInjectingEngine<'a> {
    inner: &'a dyn AvailabilityEngine,
    faults_by_call: BTreeMap<u64, InjectedFault>,
    faults_by_model: Vec<(ModelPredicate, InjectedFault)>,
    seeded: Option<SeededFaults>,
    // Atomics, not `Cell`s: the engine trait is `Send + Sync` so one
    // decorator can be shared across the parallel search's workers.
    calls: AtomicU64,
    injected: AtomicU64,
}

/// A model-keyed fault schedule: plain `fn` so the decorator stays
/// `Send + Sync` without bounds bookkeeping.
type ModelPredicate = fn(&TierModel) -> bool;

#[derive(Debug, Clone, Copy)]
struct SeededFaults {
    seed: u64,
    one_in: u64,
    fault: InjectedFault,
}

impl<'a> FaultInjectingEngine<'a> {
    /// Wraps `inner` with no faults scheduled; every call is forwarded.
    #[must_use]
    pub fn new(inner: &'a dyn AvailabilityEngine) -> FaultInjectingEngine<'a> {
        FaultInjectingEngine {
            inner,
            faults_by_call: BTreeMap::new(),
            faults_by_model: Vec::new(),
            seeded: None,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Schedules `fault` for the evaluation with the given 0-based call
    /// index (later schedules for the same index replace earlier ones).
    #[must_use]
    pub fn with_fault_at(mut self, call: u64, fault: InjectedFault) -> FaultInjectingEngine<'a> {
        self.faults_by_call.insert(call, fault);
        self
    }

    /// Schedules `fault` for every evaluation whose model satisfies
    /// `predicate`. Unlike call-index schedules, model-keyed faults hit the
    /// same candidates no matter how evaluations interleave across threads
    /// or how a cache reorders them — the deterministic choice for testing
    /// parallel searches. Explicit [`Self::with_fault_at`] schedules take
    /// precedence on calls matching both.
    #[must_use]
    pub fn with_fault_when(
        mut self,
        predicate: ModelPredicate,
        fault: InjectedFault,
    ) -> FaultInjectingEngine<'a> {
        self.faults_by_model.push((predicate, fault));
        self
    }

    /// Additionally injects `fault` on a pseudo-random ~`1/one_in` fraction
    /// of calls, chosen by a deterministic hash of `(seed, call index)`.
    /// Explicit [`Self::with_fault_at`] schedules take precedence.
    ///
    /// # Panics
    ///
    /// Panics if `one_in` is zero.
    #[must_use]
    pub fn with_seeded_faults(
        mut self,
        seed: u64,
        one_in: u64,
        fault: InjectedFault,
    ) -> FaultInjectingEngine<'a> {
        assert!(one_in > 0, "one_in must be positive");
        self.seeded = Some(SeededFaults {
            seed,
            one_in,
            fault,
        });
        self
    }

    /// Number of evaluations seen so far.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn fault_for(&self, call: u64, model: &TierModel) -> Option<InjectedFault> {
        if let Some(f) = self.faults_by_call.get(&call) {
            return Some(*f);
        }
        for (predicate, fault) in &self.faults_by_model {
            if predicate(model) {
                return Some(*fault);
            }
        }
        let seeded = self.seeded?;
        // splitmix64 of (seed ^ call): deterministic, well-mixed.
        let mut z = (seeded.seed ^ call).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z.is_multiple_of(seeded.one_in).then_some(seeded.fault)
    }

    fn apply(
        &self,
        fault: Option<InjectedFault>,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        match fault {
            None => self.inner.evaluate_with_health(model),
            Some(InjectedFault::Delay(d)) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.evaluate_with_health(model)
            }
            Some(InjectedFault::NonConvergence) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(AvailError::Markov(MarkovError::NoConvergence {
                    iterations: 0,
                    residual: f64::INFINITY,
                }))
            }
            Some(InjectedFault::NanResult) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Ok((
                    TierAvailability::new_unchecked(f64::NAN, Rate::ZERO),
                    EvalHealth::default(),
                ))
            }
        }
    }
}

impl AvailabilityEngine for FaultInjectingEngine<'_> {
    fn evaluate(&self, model: &TierModel) -> Result<TierAvailability, AvailError> {
        self.evaluate_with_health(model).map(|(r, _)| r)
    }

    fn evaluate_with_health(
        &self,
        model: &TierModel,
    ) -> Result<(TierAvailability, EvalHealth), AvailError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        self.apply(self.fault_for(call, model), model)
    }
}

impl std::fmt::Debug for FaultInjectingEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingEngine")
            .field("faults_by_call", &self.faults_by_call)
            .field("seeded", &self.seeded)
            .field("calls", &self.calls())
            .field("injected", &self.injected())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtmcEngine, FailureClass};
    use aved_units::Duration;

    fn model() -> TierModel {
        TierModel::new(1, 1, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(1000.0).rate(),
            Duration::from_hours(10.0),
            Duration::ZERO,
            false,
        ))
    }

    #[test]
    fn forwards_when_no_fault_scheduled() {
        let inner = CtmcEngine::default();
        let engine = FaultInjectingEngine::new(&inner);
        let direct = inner.evaluate(&model()).unwrap();
        let via = engine.evaluate(&model()).unwrap();
        assert_eq!(direct, via);
        assert_eq!(engine.calls(), 1);
        assert_eq!(engine.injected(), 0);
    }

    #[test]
    fn injects_non_convergence_at_the_scheduled_call() {
        let inner = CtmcEngine::default();
        let engine =
            FaultInjectingEngine::new(&inner).with_fault_at(1, InjectedFault::NonConvergence);
        assert!(engine.evaluate(&model()).is_ok());
        let err = engine.evaluate(&model()).unwrap_err();
        assert!(matches!(
            err,
            AvailError::Markov(MarkovError::NoConvergence { .. })
        ));
        assert!(engine.evaluate(&model()).is_ok());
        assert_eq!(engine.injected(), 1);
    }

    #[test]
    fn injects_nan_results_without_panicking() {
        let inner = CtmcEngine::default();
        let engine = FaultInjectingEngine::new(&inner).with_fault_at(0, InjectedFault::NanResult);
        let r = engine.evaluate(&model()).unwrap();
        assert!(r.unavailability().is_nan());
    }

    #[test]
    fn delay_faults_forward_the_inner_result() {
        let inner = CtmcEngine::default();
        let engine = FaultInjectingEngine::new(&inner)
            .with_fault_at(0, InjectedFault::Delay(std::time::Duration::from_millis(5)));
        let started = std::time::Instant::now();
        let r = engine.evaluate(&model()).unwrap();
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(r, inner.evaluate(&model()).unwrap());
        assert_eq!(engine.injected(), 1);
    }

    #[test]
    fn model_predicate_faults_follow_the_model_not_the_call_order() {
        let inner = CtmcEngine::default();
        let engine = FaultInjectingEngine::new(&inner)
            .with_fault_when(|m| m.n() >= 2, InjectedFault::NonConvergence);
        let small = model();
        let big = TierModel::new(2, 2, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(1000.0).rate(),
            Duration::from_hours(10.0),
            Duration::ZERO,
            false,
        ));
        // Whatever order the calls come in, only the matching model fails.
        assert!(engine.evaluate(&big).is_err());
        assert!(engine.evaluate(&small).is_ok());
        assert!(engine.evaluate(&big).is_err());
        assert!(engine.evaluate(&small).is_ok());
        assert_eq!(engine.injected(), 2);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let inner = CtmcEngine::default();
        let engine = FaultInjectingEngine::new(&inner);
        let m = model();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let _ = engine.evaluate(&m);
                    }
                });
            }
        });
        assert_eq!(engine.calls(), 32);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_sparse() {
        let inner = CtmcEngine::default();
        let run = |seed: u64| {
            let engine = FaultInjectingEngine::new(&inner).with_seeded_faults(
                seed,
                4,
                InjectedFault::NonConvergence,
            );
            (0..64)
                .map(|_| engine.evaluate(&model()).is_err())
                .collect::<Vec<bool>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        assert_ne!(a, run(8), "different seed, different schedule");
        let hits = a.iter().filter(|&&h| h).count();
        assert!((4..=28).contains(&hits), "~1/4 of 64 calls, got {hits}");
    }
}
