//! Errors produced while building or solving availability models.

use std::error::Error;
use std::fmt;

/// Error from availability model construction or evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AvailError {
    /// The tier model parameters are inconsistent (e.g. `m > n`).
    InvalidModel {
        /// Explanation.
        detail: String,
    },
    /// The underlying Markov solver failed.
    Markov(aved_markov::MarkovError),
    /// Deriving a model from the design failed.
    Model(aved_model::ModelError),
}

impl fmt::Display for AvailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailError::InvalidModel { detail } => write!(f, "invalid tier model: {detail}"),
            AvailError::Markov(e) => write!(f, "markov solver error: {e}"),
            AvailError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for AvailError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AvailError::Markov(e) => Some(e),
            AvailError::Model(e) => Some(e),
            AvailError::InvalidModel { .. } => None,
        }
    }
}

impl From<aved_markov::MarkovError> for AvailError {
    fn from(e: aved_markov::MarkovError) -> AvailError {
        AvailError::Markov(e)
    }
}

impl From<aved_model::ModelError> for AvailError {
    fn from(e: aved_model::ModelError) -> AvailError {
        AvailError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e = AvailError::InvalidModel {
            detail: "m > n".into(),
        };
        assert!(e.to_string().contains("m > n"));
        let e: AvailError = aved_markov::MarkovError::Singular.into();
        assert!(Error::source(&e).is_some());
        let e: AvailError = aved_model::ModelError::Invalid { detail: "x".into() }.into();
        assert!(Error::source(&e).is_some());
    }
}
