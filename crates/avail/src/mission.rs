//! Transient (mission-time) availability measures.
//!
//! The paper evaluates steady-state annual downtime only; its future-work
//! section calls for managing a service "throughout its lifetime". These
//! measures cover the lifetime questions steady state cannot answer:
//!
//! * [`CtmcEngine::mean_time_to_first_outage`] — starting from all-up, how
//!   long until the tier first drops below `m` working resources (the
//!   MTTF of the tier as a system);
//! * [`CtmcEngine::mission_downtime`] — the expected downtime accumulated
//!   during a finite mission window starting from all-up, which is lower
//!   than the steady-state pro-rata during the early life of a deployment
//!   (the chain starts in its best state).

use aved_markov::{transient, CtmcBuilder};
use aved_units::Duration;

use crate::{AvailError, CtmcEngine, TierModel};

impl CtmcEngine {
    /// The mean time from all-up until the tier's first outage.
    ///
    /// Computed by first-passage analysis on the tier chain with all down
    /// states made absorbing. For a 1-of-1 tier this is exactly the
    /// resource MTBF; redundancy multiplies it by orders of magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for invalid models or if the chain has no
    /// reachable down state within the truncation depth (infinite MTTF at
    /// this resolution).
    pub fn mean_time_to_first_outage(&self, model: &TierModel) -> Result<Duration, AvailError> {
        model.check()?;
        let explored = self.explore_chain(model)?;
        let ctmc = explored.ctmc();
        let down = self.down_mask(model, &explored);
        if !down.iter().any(|&d| d) {
            return Err(AvailError::InvalidModel {
                detail: "no down state is reachable within the truncation depth".into(),
            });
        }
        // Rebuild with down states absorbing.
        let mut builder = CtmcBuilder::new(ctmc.n_states());
        for t in ctmc.transitions() {
            if !down[t.from] {
                builder.rate(t.from, t.to, t.rate);
            }
        }
        let absorbing_chain = builder.build_lenient()?;
        let hours = transient::mean_time_to_absorption(&absorbing_chain, 0, &down)?;
        Ok(Duration::from_hours(hours))
    }

    /// Expected downtime accumulated during the first `mission` of
    /// operation, starting from all resources up.
    ///
    /// Uses uniformization-based transient analysis; `steps` Simpson
    /// panels control the time-integration accuracy (a few dozen suffice
    /// for smooth availability trajectories).
    ///
    /// # Errors
    ///
    /// Returns [`AvailError`] for invalid models or transient-solver
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or `mission` is zero.
    pub fn mission_downtime(
        &self,
        model: &TierModel,
        mission: Duration,
        steps: usize,
    ) -> Result<Duration, AvailError> {
        assert!(!mission.is_zero(), "mission must have positive length");
        model.check()?;
        let explored = self.explore_chain(model)?;
        let ctmc = explored.ctmc();
        let down = self.down_mask(model, &explored);
        let reward: Vec<f64> = down.iter().map(|&d| if d { 1.0 } else { 0.0 }).collect();
        let mut initial = vec![0.0; ctmc.n_states()];
        initial[0] = 1.0; // exploration starts from the all-up state
        let hours =
            transient::accumulated_reward(ctmc, &initial, &reward, mission.hours(), steps, 1e-10)?;
        Ok(Duration::from_hours(hours.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AvailabilityEngine, FailureClass};
    use aved_units::Duration;

    fn single(mtbf_h: f64, mttr_h: f64) -> TierModel {
        TierModel::new(1, 1, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(mtbf_h).rate(),
            Duration::from_hours(mttr_h),
            Duration::ZERO,
            false,
        ))
    }

    #[test]
    fn mttf_of_single_machine_is_its_mtbf() {
        let model = single(1000.0, 10.0);
        let mttf = CtmcEngine::default()
            .mean_time_to_first_outage(&model)
            .unwrap();
        assert!((mttf.hours() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn redundancy_multiplies_mttf() {
        // 2-of-3: first outage needs two overlapping failures.
        let model = TierModel::new(3, 2, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(1000.0).rate(),
            Duration::from_hours(10.0),
            Duration::ZERO,
            false,
        ));
        let mttf = CtmcEngine::default()
            .mean_time_to_first_outage(&model)
            .unwrap();
        // Known result for 2-of-3 with repair: MTTF ~ mu/(6 lambda^2)
        // (leading order) = 1000^2/(10*6) ~ 16,667 h; allow the exact
        // chain's constant factors.
        assert!(
            mttf.hours() > 10_000.0,
            "redundant MTTF should be >> MTBF, got {}",
            mttf.hours()
        );
    }

    #[test]
    fn spares_extend_time_to_first_outage_of_m_of_n() {
        // m = n = 2 with a failover spare: the first outage is only
        // deferred by the transient being fast, but a *repair-in-place*
        // class at m < n benefits directly.
        let no_spare = TierModel::new(3, 2, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(500.0).rate(),
            Duration::from_hours(24.0),
            Duration::ZERO,
            false,
        ));
        let more_redundant = TierModel::new(4, 2, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(500.0).rate(),
            Duration::from_hours(24.0),
            Duration::ZERO,
            false,
        ));
        let e = CtmcEngine::default();
        let a = e.mean_time_to_first_outage(&no_spare).unwrap();
        let b = e.mean_time_to_first_outage(&more_redundant).unwrap();
        assert!(b > a * 2.0, "{} vs {}", a.hours(), b.hours());
    }

    #[test]
    fn long_mission_downtime_approaches_steady_state() {
        let model = single(100.0, 2.0);
        let engine = CtmcEngine::default();
        let steady = engine.evaluate(&model).unwrap().unavailability();
        let mission = Duration::from_hours(5000.0);
        let downtime = engine.mission_downtime(&model, mission, 64).unwrap();
        let expect = steady * mission.hours();
        assert!(
            (downtime.hours() - expect).abs() / expect < 0.05,
            "mission {} vs steady prorata {}",
            downtime.hours(),
            expect
        );
    }

    #[test]
    fn early_mission_downtime_is_below_steady_prorata() {
        // Starting all-up, the system spends its early life better than
        // steady state.
        let model = single(100.0, 10.0);
        let engine = CtmcEngine::default();
        let steady = engine.evaluate(&model).unwrap().unavailability();
        let mission = Duration::from_hours(20.0);
        let downtime = engine.mission_downtime(&model, mission, 64).unwrap();
        assert!(downtime.hours() < steady * mission.hours());
    }

    #[test]
    fn unreachable_outage_is_reported() {
        // m = 1 of n = 3 with truncation depth 1: down states (3 failed)
        // are outside the explored space.
        let model = TierModel::new(3, 1, 0).with_class(FailureClass::new(
            "hw",
            Duration::from_hours(1000.0).rate(),
            Duration::from_hours(1.0),
            Duration::ZERO,
            false,
        ));
        let engine = CtmcEngine::default().with_max_concurrent(1);
        assert!(engine.mean_time_to_first_outage(&model).is_err());
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_mission_panics() {
        let _ = CtmcEngine::default().mission_downtime(&single(10.0, 1.0), Duration::ZERO, 8);
    }
}
