//! Property-based cross-validation of the availability engines on
//! randomized tier models: the exact CTMC, the decomposition engine and
//! analytical invariants must stay consistent over the whole input space,
//! not just hand-picked examples.

use aved_avail::{AvailabilityEngine, CtmcEngine, DecompositionEngine, FailureClass, TierModel};
use aved_units::Duration;
use proptest::prelude::*;

/// Random paper-like failure classes: MTBF of weeks to years, repairs of
/// minutes to days, failover of minutes.
fn arb_class(idx: usize, uses_failover: bool) -> impl Strategy<Value = FailureClass> {
    (
        10.0_f64..2000.0, // MTBF days
        0.05_f64..48.0,   // MTTR hours
        1.0_f64..30.0,    // failover minutes
    )
        .prop_map(move |(mtbf_d, mttr_h, fo_m)| {
            let mttr = Duration::from_hours(mttr_h);
            let failover = Duration::from_mins(fo_m);
            let usable = uses_failover && mttr > failover;
            FailureClass::new(
                format!("class{idx}"),
                Duration::from_days(mtbf_d).rate(),
                mttr,
                failover,
                usable,
            )
        })
}

fn arb_model() -> impl Strategy<Value = TierModel> {
    (
        1_u32..8, // m
        0_u32..4, // extra actives
        0_u32..3, // spares
        proptest::collection::vec(prop::bool::ANY, 1..4),
    )
        .prop_flat_map(|(m, extra, spares, failover_flags)| {
            let classes: Vec<BoxedStrategy<FailureClass>> = failover_flags
                .iter()
                .enumerate()
                .map(|(i, &fo)| arb_class(i, fo && spares > 0).boxed())
                .collect();
            (Just(m), Just(extra), Just(spares), classes)
        })
        .prop_map(|(m, extra, spares, classes)| {
            let mut model = TierModel::new(m + extra, m, spares);
            for c in classes {
                model = model.with_class(c);
            }
            model
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact engine always yields a valid probability and rate.
    #[test]
    fn ctmc_results_are_well_formed(model in arb_model()) {
        let r = CtmcEngine::default().evaluate(&model).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.unavailability()));
        prop_assert!(r.down_event_rate().per_hour_value() >= 0.0);
        prop_assert!(r.annual_downtime().minutes() >= 0.0);
    }

    /// The decomposition's error is second-order in the unavailability:
    /// it double-counts overlapping down states when m = n (union bound,
    /// overestimate) and misses cross-class overlaps under redundancy
    /// (underestimate). Both effects scale with the square of the
    /// per-class unavailabilities, so in the rare-failure regime the two
    /// engines agree tightly, and in general the gap is bounded by a
    /// quadratic term.
    #[test]
    fn decomposition_error_is_second_order(model in arb_model()) {
        let exact = CtmcEngine::default().evaluate(&model).unwrap().unavailability();
        let fast = DecompositionEngine::default().evaluate(&model).unwrap().unavailability();
        prop_assert!((0.0..=1.0).contains(&fast));
        let gap = (exact - fast).abs();
        // The overlap terms the decomposition mistreats involve pairs of
        // concurrent failures; each class contributes a single-failure
        // probability mass of roughly n_total * lambda_i * mttr_i, so the
        // gap is bounded by a constant times the square of their sum.
        let q_sum: f64 = model
            .classes()
            .iter()
            .map(|c| {
                f64::from(model.n_total()) * c.rate().per_hour_value() * c.mttr().hours()
            })
            .sum();
        let budget = 0.02 * exact + 4.0 * q_sum * q_sum + 1e-12;
        prop_assert!(
            gap <= budget,
            "gap {gap} exceeds second-order budget {budget} (exact {exact}, fast {fast}, q_sum {q_sum})"
        );
    }

    /// Availability is monotone in redundancy: adding an extra active
    /// resource (m fixed) never increases unavailability.
    #[test]
    fn extra_actives_never_hurt(
        m in 1_u32..5,
        mtbf_d in 20.0_f64..500.0,
        mttr_h in 0.1_f64..24.0,
    ) {
        let class = || FailureClass::new(
            "c",
            Duration::from_days(mtbf_d).rate(),
            Duration::from_hours(mttr_h),
            Duration::ZERO,
            false,
        );
        let base = TierModel::new(m, m, 0).with_class(class());
        let more = TierModel::new(m + 1, m, 0).with_class(class());
        let e = CtmcEngine::default();
        let a = e.evaluate(&base).unwrap().unavailability();
        let b = e.evaluate(&more).unwrap().unavailability();
        prop_assert!(b <= a * 1.0001, "extra active hurt: {a} -> {b}");
    }

    /// Faster repairs never increase unavailability.
    #[test]
    fn faster_repair_never_hurts(
        n in 1_u32..6,
        mtbf_d in 20.0_f64..500.0,
        mttr_h in 1.0_f64..24.0,
    ) {
        let mk = |mttr: f64| {
            TierModel::new(n, n, 0).with_class(FailureClass::new(
                "c",
                Duration::from_days(mtbf_d).rate(),
                Duration::from_hours(mttr),
                Duration::ZERO,
                false,
            ))
        };
        let e = CtmcEngine::default();
        let slow = e.evaluate(&mk(mttr_h)).unwrap().unavailability();
        let fast = e.evaluate(&mk(mttr_h / 2.0)).unwrap().unavailability();
        prop_assert!(fast <= slow * 1.0001);
    }

    /// A failover spare never increases unavailability for m = n tiers
    /// with slow repairs.
    #[test]
    fn failover_spare_never_hurts(
        n in 1_u32..5,
        mtbf_d in 50.0_f64..1000.0,
        mttr_h in 4.0_f64..48.0,
    ) {
        let mk = |s: u32| {
            TierModel::new(n, n, s).with_class(FailureClass::new(
                "hw",
                Duration::from_days(mtbf_d).rate(),
                Duration::from_hours(mttr_h),
                Duration::from_mins(5.0),
                s > 0,
            ))
        };
        let e = CtmcEngine::default();
        let without = e.evaluate(&mk(0)).unwrap().unavailability();
        let with = e.evaluate(&mk(1)).unwrap().unavailability();
        prop_assert!(with <= without * 1.0001, "spare hurt: {without} -> {with}");
    }
}
