//! Parse errors with line information.

use std::error::Error;
use std::fmt;

/// The category of a specification parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecErrorKind {
    /// A token could not be lexed (unterminated bracket, missing `=`, ...).
    Lex(String),
    /// A value had the wrong shape (expected a duration, list, ...).
    Value(String),
    /// An attribute appeared in the wrong context or a required attribute
    /// is missing.
    Structure(String),
    /// The parsed model failed semantic validation.
    Model(aved_model::ModelError),
}

/// An error produced while parsing a specification document.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    line: usize,
    column: Option<usize>,
    kind: SpecErrorKind,
}

impl SpecError {
    /// Creates an error at a 1-based line number (0 for whole-document
    /// errors).
    #[must_use]
    pub fn new(line: usize, kind: SpecErrorKind) -> SpecError {
        SpecError {
            line,
            column: None,
            kind,
        }
    }

    /// Attaches a 1-based column. For logical lines joined from several
    /// physical lines, the column counts within the joined text.
    #[must_use]
    pub fn with_column(mut self, column: usize) -> SpecError {
        self.column = Some(column);
        self
    }

    /// The 1-based line number (0 when not tied to a line).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based column, when the error is tied to one.
    #[must_use]
    pub fn column(&self) -> Option<usize> {
        self.column
    }

    /// The error category and message.
    #[must_use]
    pub fn kind(&self) -> &SpecErrorKind {
        &self.kind
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            match self.column {
                Some(c) => write!(f, "line {}, column {c}: ", self.line)?,
                None => write!(f, "line {}: ", self.line)?,
            }
        }
        match &self.kind {
            SpecErrorKind::Lex(m) => write!(f, "lex error: {m}"),
            SpecErrorKind::Value(m) => write!(f, "value error: {m}"),
            SpecErrorKind::Structure(m) => write!(f, "structure error: {m}"),
            SpecErrorKind::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            SpecErrorKind::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aved_model::ModelError> for SpecError {
    fn from(e: aved_model::ModelError) -> SpecError {
        SpecError::new(0, SpecErrorKind::Model(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = SpecError::new(42, SpecErrorKind::Lex("bad token".into()));
        assert!(e.to_string().contains("line 42"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn display_includes_column_when_present() {
        let e = SpecError::new(7, SpecErrorKind::Lex("missing '='".into())).with_column(12);
        assert_eq!(e.column(), Some(12));
        assert!(e.to_string().contains("line 7, column 12"), "{e}");
    }

    #[test]
    fn document_level_errors_omit_line() {
        let e = SpecError::new(0, SpecErrorKind::Structure("no application".into()));
        assert!(!e.to_string().contains("line"));
    }

    #[test]
    fn model_errors_chain_as_source() {
        let e: SpecError = aved_model::ModelError::Invalid { detail: "x".into() }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
