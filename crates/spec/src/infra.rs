//! Parser for infrastructure model documents (paper Fig. 3).

use aved_model::{
    ComponentType, DurationSpec, EffectValue, FailureMode, Infrastructure, Mechanism, ParamRange,
    Parameter, ResourceComponent, ResourceType,
};
use aved_units::{Duration, Money};

use crate::{Attr, Line, SpecError, SpecErrorKind, Value};

/// Parses an infrastructure model and validates its cross-references.
///
/// # Errors
///
/// Returns [`SpecError`] on syntax errors, values of the wrong shape,
/// attributes in the wrong context, or semantic validation failures.
pub fn parse_infrastructure(text: &str) -> Result<Infrastructure, SpecError> {
    let lines = crate::lex_document(text)?;
    let mut parser = InfraParser::default();
    for line in &lines {
        parser.line(line)?;
    }
    let infra = parser.finish();
    infra.validate().map_err(SpecError::from)?;
    Ok(infra)
}

#[derive(Default)]
struct InfraParser {
    infra: Infrastructure,
    component: Option<ComponentType>,
    mechanism: Option<Mechanism>,
    resource: Option<ResourceType>,
}

impl InfraParser {
    fn line(&mut self, line: &Line) -> Result<(), SpecError> {
        let kw = line.keyword();
        match kw.name.as_str() {
            "component" if self.resource.is_some() => self.resource_slot(line),
            "component" => self.start_component(line),
            "failure" => self.failure_mode(line),
            "mechanism" => self.start_mechanism(line),
            "param" => self.mechanism_param(line),
            "cost" => self.mechanism_cost(line),
            "mtbf" if self.mechanism.is_some() => self.mechanism_effect(line, EffectKind::Mtbf),
            "mttr" => self.mechanism_effect(line, EffectKind::Mttr),
            "loss_window" => self.mechanism_effect(line, EffectKind::LossWindow),
            "resource" => self.start_resource(line),
            other => Err(structure(
                line.number,
                format!("unexpected attribute {other} in infrastructure model"),
            )),
        }
    }

    fn finish(mut self) -> Infrastructure {
        self.flush();
        self.infra
    }

    fn flush(&mut self) {
        if let Some(c) = self.component.take() {
            self.infra = std::mem::take(&mut self.infra).with_component(c);
        }
        if let Some(m) = self.mechanism.take() {
            self.infra = std::mem::take(&mut self.infra).with_mechanism(m);
        }
        if let Some(r) = self.resource.take() {
            self.infra = std::mem::take(&mut self.infra).with_resource(r);
        }
    }

    fn start_component(&mut self, line: &Line) -> Result<(), SpecError> {
        self.flush();
        let name = word(line.number, line.keyword())?;
        let mut c = ComponentType::new(name);
        for attr in &line.attrs[1..] {
            match attr.name.as_str() {
                "cost" => {
                    c = apply_component_cost(c, line.number, attr)?;
                }
                "max_instances" => {
                    let n: usize = word(line.number, attr)?
                        .parse()
                        .map_err(|_| value_err(line.number, "max_instances must be an integer"))?;
                    c = c.with_max_instances(n);
                }
                "loss_window" => {
                    let spec = duration_spec(line.number, attr)?;
                    c = c.with_loss_window(spec);
                }
                other => {
                    return Err(structure(
                        line.number,
                        format!("unexpected component attribute {other}"),
                    ))
                }
            }
        }
        self.component = Some(c);
        Ok(())
    }

    fn failure_mode(&mut self, line: &Line) -> Result<(), SpecError> {
        let component = self
            .component
            .as_mut()
            .ok_or_else(|| structure(line.number, "failure= outside a component section".into()))?;
        let name = word(line.number, line.keyword())?.to_owned();
        let mtbf_attr = line
            .attr("mtbf")
            .ok_or_else(|| structure(line.number, "failure mode is missing mtbf".into()))?;
        let mtbf = duration_spec(line.number, mtbf_attr)?;
        let detect = duration_attr(line, "detect_time")?;
        let mttr_attr = line
            .attr("mttr")
            .ok_or_else(|| structure(line.number, "failure mode is missing mttr".into()))?;
        let repair = duration_spec(line.number, mttr_attr)?;
        let mode = FailureMode::new(name, mtbf, repair, detect);
        // ComponentType uses a by-value builder; rebuild in place.
        let rebuilt = component.clone().with_failure_mode(mode);
        *component = rebuilt;
        Ok(())
    }

    fn start_mechanism(&mut self, line: &Line) -> Result<(), SpecError> {
        // `mechanism=` also appears in service models (attached to resource
        // options); in an infrastructure document it always declares one.
        self.flush();
        let name = word(line.number, line.keyword())?;
        self.mechanism = Some(Mechanism::new(name));
        Ok(())
    }

    fn mechanism_param(&mut self, line: &Line) -> Result<(), SpecError> {
        let mech = self
            .mechanism
            .as_mut()
            .ok_or_else(|| structure(line.number, "param= outside a mechanism section".into()))?;
        let name = word(line.number, line.keyword())?.to_owned();
        let range_attr = line
            .attr("range")
            .ok_or_else(|| structure(line.number, "param is missing range".into()))?;
        let body = range_attr
            .value
            .as_bracket()
            .ok_or_else(|| value_err(line.number, "range must be a bracketed body"))?;
        let range = parse_param_range(line.number, body)?;
        let rebuilt = mech.clone().with_param(Parameter::new(name, range));
        *mech = rebuilt;
        Ok(())
    }

    fn mechanism_cost(&mut self, line: &Line) -> Result<(), SpecError> {
        let mech = self
            .mechanism
            .as_mut()
            .ok_or_else(|| structure(line.number, "cost= outside a mechanism section".into()))?;
        let attr = line.keyword();
        let rebuilt = if attr.args.is_empty() {
            let m = money(line.number, word(line.number, attr)?)?;
            mech.clone().with_fixed_cost(m)
        } else {
            let param = attr.args[0].clone();
            let values = attr
                .value
                .bracket_items()
                .iter()
                .map(|s| money(line.number, s))
                .collect::<Result<Vec<_>, _>>()?;
            mech.clone().with_cost_table(param, values)
        };
        *mech = rebuilt;
        Ok(())
    }

    fn mechanism_effect(&mut self, line: &Line, kind: EffectKind) -> Result<(), SpecError> {
        let mech = self.mechanism.as_mut().ok_or_else(|| {
            structure(
                line.number,
                format!("{}= outside a mechanism section", kind.name()),
            )
        })?;
        let attr = line.keyword();
        let effect = if attr.args.is_empty() {
            // e.g. `loss_window=checkpoint_interval`: value is a parameter
            // name.
            EffectValue::Param(word(line.number, attr)?.into())
        } else {
            let param = attr.args[0].clone();
            let values = attr
                .value
                .bracket_items()
                .iter()
                .map(|s| duration(line.number, s))
                .collect::<Result<Vec<_>, _>>()?;
            EffectValue::Table {
                param: param.into(),
                values,
            }
        };
        let rebuilt = match kind {
            EffectKind::Mtbf => mech.clone().with_mtbf_effect(effect),
            EffectKind::Mttr => mech.clone().with_mttr_effect(effect),
            EffectKind::LossWindow => mech.clone().with_loss_window_effect(effect),
        };
        *mech = rebuilt;
        Ok(())
    }

    fn start_resource(&mut self, line: &Line) -> Result<(), SpecError> {
        self.flush();
        let name = word(line.number, line.keyword())?;
        let reconfig = duration_attr(line, "reconfig_time")?;
        self.resource = Some(ResourceType::new(name, reconfig));
        Ok(())
    }

    fn resource_slot(&mut self, line: &Line) -> Result<(), SpecError> {
        let resource = self.resource.as_mut().ok_or_else(|| {
            structure(
                line.number,
                "resource component outside a resource declaration".into(),
            )
        })?;
        let component = word(line.number, line.keyword())?.to_owned();
        let depend_attr = line
            .attr("depend")
            .ok_or_else(|| structure(line.number, "resource component is missing depend".into()))?;
        let depend = match word(line.number, depend_attr)? {
            "null" => None,
            other => Some(other.into()),
        };
        let startup = duration_attr(line, "startup")?;
        let rebuilt = resource
            .clone()
            .with_component(ResourceComponent::new(component, depend, startup));
        *resource = rebuilt;
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum EffectKind {
    Mtbf,
    Mttr,
    LossWindow,
}

impl EffectKind {
    fn name(self) -> &'static str {
        match self {
            EffectKind::Mtbf => "mtbf",
            EffectKind::Mttr => "mttr",
            EffectKind::LossWindow => "loss_window",
        }
    }
}

fn apply_component_cost(
    c: ComponentType,
    number: usize,
    attr: &Attr,
) -> Result<ComponentType, SpecError> {
    if attr.args.is_empty() {
        let m = money(number, word(number, attr)?)?;
        Ok(c.with_cost(m))
    } else {
        // cost([inactive,active])=[a b]
        let items = attr.value.bracket_items();
        if items.len() != 2 {
            return Err(value_err(
                number,
                "per-mode cost needs exactly two values [inactive active]",
            ));
        }
        let inactive = money(number, &items[0])?;
        let active = money(number, &items[1])?;
        Ok(c.with_costs(inactive, active))
    }
}

/// The most values a geometric range may enumerate. The search walks the
/// cross product of every parameter's values, so a spec like
/// `[1s-36500d;*1.0001]` (hundreds of thousands of settings in one knob)
/// is a state-space bomb; reject it at parse time with the arithmetic
/// spelled out instead of letting the sweep absorb it.
pub const MAX_GEOMETRIC_RANGE_VALUES: usize = 10_000;

/// Parses `[bronze,silver,gold]` or `[1m-24h;*1.05]`.
pub(crate) fn parse_param_range(number: usize, body: &str) -> Result<ParamRange, SpecError> {
    if let Some((span, step)) = body.split_once(';') {
        let (lo, hi) = span
            .split_once('-')
            .ok_or_else(|| value_err(number, "geometric range must look like [min-max;*factor]"))?;
        let factor_str = step
            .trim()
            .strip_prefix('*')
            .ok_or_else(|| value_err(number, "geometric range step must look like *factor"))?;
        let factor: f64 = factor_str
            .parse()
            .map_err(|_| value_err(number, "geometric range factor must be a number"))?;
        if !factor.is_finite() || factor <= 1.0 {
            return Err(value_err(number, "geometric range factor must exceed 1"));
        }
        let min = duration(number, lo.trim())?;
        let max = duration(number, hi.trim())?;
        if min.seconds() <= 0.0 {
            return Err(value_err(number, "geometric range min must be positive"));
        }
        if max < min {
            return Err(value_err(number, "geometric range needs min <= max"));
        }
        let count = (max.seconds() / min.seconds()).ln() / factor.ln() + 1.0;
        if count > MAX_GEOMETRIC_RANGE_VALUES as f64 {
            return Err(value_err(
                number,
                &format!(
                    "geometric range enumerates ~{count:.0} values \
                     (cap {MAX_GEOMETRIC_RANGE_VALUES}); raise the factor or narrow the span"
                ),
            ));
        }
        Ok(ParamRange::GeometricDuration { min, max, factor })
    } else {
        let levels: Vec<String> = body
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if levels.is_empty() {
            return Err(value_err(number, "parameter range must not be empty"));
        }
        Ok(ParamRange::Levels(levels))
    }
}

pub(crate) fn word(number: usize, attr: &Attr) -> Result<&str, SpecError> {
    attr.value.as_word().ok_or_else(|| {
        value_err(
            number,
            &format!("attribute {} expects a bare word value", attr.name),
        )
    })
}

pub(crate) fn duration(number: usize, s: &str) -> Result<Duration, SpecError> {
    s.parse()
        .map_err(|e: aved_units::ParseDurationError| value_err(number, &e.to_string()))
}

pub(crate) fn duration_attr(line: &Line, name: &str) -> Result<Duration, SpecError> {
    let attr = line
        .attr(name)
        .ok_or_else(|| structure(line.number, format!("missing required attribute {name}")))?;
    duration(line.number, word(line.number, attr)?)
}

fn duration_spec(number: usize, attr: &Attr) -> Result<DurationSpec, SpecError> {
    match &attr.value {
        Value::Ref(m) => Ok(DurationSpec::FromMechanism(m.as_str().into())),
        Value::Word(w) => Ok(DurationSpec::Fixed(duration(number, w)?)),
        Value::Bracket(_) => Err(value_err(
            number,
            &format!("attribute {} expects a duration or <mechanism>", attr.name),
        )),
    }
}

fn money(number: usize, s: &str) -> Result<Money, SpecError> {
    let v: f64 = s
        .parse()
        .map_err(|_| value_err(number, &format!("{s:?} is not a monetary amount")))?;
    Ok(Money::from_dollars(v))
}

pub(crate) fn value_err(number: usize, msg: &str) -> SpecError {
    SpecError::new(number, SpecErrorKind::Value(msg.to_owned()))
}

pub(crate) fn structure(number: usize, msg: String) -> SpecError {
    SpecError::new(number, SpecErrorKind::Structure(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
\\\\ Units - s:seconds, m:minutes, h:hours, d:days
component=machineA cost([inactive,active])=[2400 2640]
  failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m
  failure=soft mtbf=75d mttr=0 detect_time=0
component=linux cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
component=webserver cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
mechanism=maintenanceA
  param=level range=[bronze,silver,gold,platinum]
  cost(level)=[380 580 760 1500]
  mttr(level)=[38h 15h 8h 6h]
resource=rA reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=webserver depend=linux startup=30s
";

    #[test]
    fn parses_components() {
        let i = parse_infrastructure(SMALL).unwrap();
        let machine = i.component("machineA").unwrap();
        assert_eq!(machine.cost_inactive(), Money::from_dollars(2400.0));
        assert_eq!(machine.cost_active(), Money::from_dollars(2640.0));
        assert_eq!(machine.failure_modes().len(), 2);
        let hard = &machine.failure_modes()[0];
        assert_eq!(hard.name(), "hard");
        assert_eq!(hard.mtbf(), Some(Duration::from_days(650.0)));
        assert_eq!(
            hard.repair().mechanism().map(AsRef::as_ref),
            Some("maintenanceA")
        );
        assert_eq!(hard.detect_time(), Duration::from_mins(2.0));
        let soft = &machine.failure_modes()[1];
        assert_eq!(soft.repair().as_fixed(), Some(Duration::ZERO));
    }

    #[test]
    fn parses_mechanism() {
        let i = parse_infrastructure(SMALL).unwrap();
        let m = i.mechanism("maintenanceA").unwrap();
        assert_eq!(m.params().len(), 1);
        let p = m.param("level").unwrap();
        assert_eq!(p.range().len(), 4);
        assert!(m.mttr_effect().is_some());
    }

    #[test]
    fn parses_resource_with_dependencies() {
        let i = parse_infrastructure(SMALL).unwrap();
        let r = i.resource("rA").unwrap();
        assert_eq!(r.components().len(), 3);
        assert_eq!(r.reconfig_time(), Duration::ZERO);
        assert_eq!(r.components()[0].depends_on(), None);
        assert_eq!(
            r.components()[1].depends_on().map(AsRef::as_ref),
            Some("machineA")
        );
        assert_eq!(r.full_startup_time(), Duration::from_mins(3.0));
    }

    #[test]
    fn checkpoint_mechanism_round_trip() {
        let text = "\
component=mpi cost=0 loss_window=<checkpoint>
  failure=soft mtbf=60d mttr=0 detect_time=0
mechanism=checkpoint
  param=storage_location range=[central,peer]
  param=checkpoint_interval range=[1m-24h;*1.05]
  cost=0
  loss_window=checkpoint_interval
";
        let i = parse_infrastructure(text).unwrap();
        let mpi = i.component("mpi").unwrap();
        assert_eq!(
            mpi.loss_window()
                .and_then(DurationSpec::mechanism)
                .map(AsRef::as_ref),
            Some("checkpoint")
        );
        let c = i.mechanism("checkpoint").unwrap();
        assert_eq!(c.params().len(), 2);
        assert!(matches!(
            c.param("checkpoint_interval").unwrap().range(),
            ParamRange::GeometricDuration { .. }
        ));
        assert!(matches!(
            c.loss_window_effect(),
            Some(EffectValue::Param(p)) if p.as_str() == "checkpoint_interval"
        ));
    }

    #[test]
    fn dangling_mechanism_reference_fails_validation() {
        let text = "\
component=machineA cost=0
  failure=hard mtbf=650d mttr=<ghost> detect_time=2m
";
        let err = parse_infrastructure(text).unwrap_err();
        assert!(matches!(err.kind(), SpecErrorKind::Model(_)));
    }

    #[test]
    fn failure_outside_component_is_error() {
        let err = parse_infrastructure("failure=hard mtbf=1d mttr=0 detect_time=0\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(matches!(err.kind(), SpecErrorKind::Structure(_)));
    }

    #[test]
    fn param_outside_mechanism_is_error() {
        let err = parse_infrastructure("param=level range=[a,b]\n").unwrap_err();
        assert!(matches!(err.kind(), SpecErrorKind::Structure(_)));
    }

    #[test]
    fn bad_duration_is_reported_with_line() {
        let text = "component=x cost=0\n  failure=soft mtbf=60q mttr=0 detect_time=0\n";
        let err = parse_infrastructure(text).unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn bad_geometric_factor_is_error() {
        let err = parse_param_range(1, "1m-24h;*0.9").unwrap_err();
        assert!(matches!(err.kind(), SpecErrorKind::Value(_)));
        assert!(parse_param_range(1, "1m-24h;+5").is_err());
        assert!(parse_param_range(1, "1m;*1.05").is_err());
        assert!(parse_param_range(1, "1m-24h;*inf").is_err());
    }

    #[test]
    fn degenerate_geometric_bounds_are_errors() {
        let zero_min = parse_param_range(1, "0s-24h;*1.05").unwrap_err();
        assert!(zero_min.to_string().contains("positive"), "{zero_min}");
        let inverted = parse_param_range(1, "24h-1m;*1.05").unwrap_err();
        assert!(inverted.to_string().contains("min <= max"), "{inverted}");
    }

    #[test]
    fn state_space_bomb_ranges_are_capped_at_parse_time() {
        // ~220k values: fine-grained factor over a ten-decade span.
        let err = parse_param_range(1, "1s-36500d;*1.0001").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cap 10000"), "{msg}");
        // The paper's own range (~150 values) stays well under the cap.
        assert!(parse_param_range(1, "1m-24h;*1.05").is_ok());
    }

    #[test]
    fn max_instances_parses() {
        let text =
            "component=db cost=0 max_instances=2\n  failure=soft mtbf=60d mttr=0 detect_time=0\n";
        let i = parse_infrastructure(text).unwrap();
        assert_eq!(i.component("db").unwrap().max_instances(), Some(2));
    }

    #[test]
    fn per_mode_cost_needs_two_values() {
        let err =
            parse_infrastructure("component=x cost([inactive,active])=[1 2 3]\n").unwrap_err();
        assert!(matches!(err.kind(), SpecErrorKind::Value(_)));
    }
}
