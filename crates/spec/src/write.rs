//! Writers: render models back into the specification syntax.
//!
//! Useful for dumping programmatically-constructed models, for golden-file
//! tests and for the `spec_dump` tool. `parse(write(x)) == x` round-trip
//! holds for every model expressible in the syntax (tested here and by
//! property tests in the integration suite).

use std::fmt::Write as _;

use aved_model::{
    DurationSpec, EffectValue, FailureScope, Infrastructure, MechanismCost, NActiveSpec, PerfRef,
    Service, Sizing,
};

/// Renders an infrastructure model in the Fig.-3 syntax.
#[must_use]
pub fn write_infrastructure(infra: &Infrastructure) -> String {
    let mut out = String::new();
    out.push_str("\\\\ Units - s:seconds, m:minutes, h:hours, d:days\n");
    out.push_str("\\\\ COMPONENTS DESCRIPTION\n");
    for c in infra.components() {
        if c.cost_inactive() == c.cost_active() {
            let _ = write!(
                out,
                "component={} cost={}",
                c.name(),
                c.cost_active().dollars()
            );
        } else {
            let _ = write!(
                out,
                "component={} cost([inactive,active])=[{} {}]",
                c.name(),
                c.cost_inactive().dollars(),
                c.cost_active().dollars()
            );
        }
        if let Some(max) = c.max_instances() {
            let _ = write!(out, " max_instances={max}");
        }
        if let Some(lw) = c.loss_window() {
            match lw {
                DurationSpec::Fixed(d) => {
                    let _ = write!(out, " loss_window={d}");
                }
                DurationSpec::FromMechanism(m) => {
                    let _ = write!(out, " loss_window=<{m}>");
                }
            }
        }
        out.push('\n');
        for fm in c.failure_modes() {
            let spec = |d: &DurationSpec| match d {
                DurationSpec::Fixed(d) => d.to_string(),
                DurationSpec::FromMechanism(m) => format!("<{m}>"),
            };
            let _ = writeln!(
                out,
                "  failure={} mtbf={} mttr={} detect_time={}",
                fm.name(),
                spec(fm.mtbf_spec()),
                spec(fm.repair()),
                fm.detect_time()
            );
        }
    }
    out.push_str("\\\\ AVAILABILITY MECHANISMS\n");
    for m in infra.mechanisms() {
        let _ = writeln!(out, "mechanism={}", m.name());
        for p in m.params() {
            match p.range() {
                aved_model::ParamRange::Levels(levels) => {
                    let _ = writeln!(out, "  param={} range=[{}]", p.name(), levels.join(","));
                }
                aved_model::ParamRange::GeometricDuration { min, max, factor } => {
                    let _ = writeln!(out, "  param={} range=[{min}-{max};*{factor}]", p.name());
                }
            }
        }
        match m.cost_spec() {
            MechanismCost::Fixed(money) => {
                let _ = writeln!(out, "  cost={}", money.dollars());
            }
            MechanismCost::Table { param, values } => {
                let vals: Vec<String> = values.iter().map(|v| v.dollars().to_string()).collect();
                let _ = writeln!(out, "  cost({param})=[{}]", vals.join(" "));
            }
        }
        if let Some(e) = m.mtbf_effect() {
            write_effect(&mut out, "mtbf", e);
        }
        if let Some(e) = m.mttr_effect() {
            write_effect(&mut out, "mttr", e);
        }
        if let Some(e) = m.loss_window_effect() {
            write_effect(&mut out, "loss_window", e);
        }
    }
    out.push_str("\\\\ RESOURCES DESCRIPTION\n");
    for r in infra.resources() {
        let _ = writeln!(
            out,
            "resource={} reconfig_time={}",
            r.name(),
            r.reconfig_time()
        );
        for slot in r.components() {
            let depend = slot
                .depends_on()
                .map_or_else(|| "null".to_owned(), ToString::to_string);
            let _ = writeln!(
                out,
                "  component={} depend={} startup={}",
                slot.component(),
                depend,
                slot.startup()
            );
        }
    }
    out
}

fn write_effect(out: &mut String, name: &str, effect: &EffectValue) {
    match effect {
        EffectValue::Table { param, values } => {
            let vals: Vec<String> = values.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "  {name}({param})=[{}]", vals.join(" "));
        }
        EffectValue::Param(param) => {
            let _ = writeln!(out, "  {name}={param}");
        }
    }
}

/// Renders a service model in the Fig.-4/5 syntax.
#[must_use]
pub fn write_service(service: &Service) -> String {
    let mut out = String::new();
    let _ = write!(out, "application={}", service.name());
    if let Some(js) = service.job_size() {
        let _ = write!(out, " jobsize={js}");
    }
    out.push('\n');
    for tier in service.tiers() {
        let _ = writeln!(out, "  tier={}", tier.name());
        for opt in tier.options() {
            let sizing = match opt.sizing() {
                Sizing::Static => "static",
                Sizing::Dynamic => "dynamic",
            };
            let scope = match opt.failure_scope() {
                FailureScope::Resource => "resource",
                FailureScope::Tier => "tier",
            };
            let _ = writeln!(
                out,
                "    resource={} sizing={sizing} failurescope={scope}",
                opt.resource()
            );
            let n_active = match opt.n_active() {
                NActiveSpec::Arithmetic { min, max, step } => format!("{min}-{max},+{step}"),
                NActiveSpec::Geometric { min, max, factor } => format!("{min}-{max},*{factor}"),
                NActiveSpec::List(v) => v
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            };
            let perf = match opt.performance() {
                PerfRef::Const(v) => format!("performance={v}"),
                PerfRef::Named(n) => format!("performance(nActive)={n}"),
            };
            let _ = writeln!(out, "      nActive=[{n_active}] {perf}");
            for m in opt.mechanisms() {
                match m.mperformance() {
                    Some(mp) => {
                        let _ = writeln!(
                            out,
                            "      mechanism={} mperformance(storage_location,checkpoint_interval,nActive)={mp}",
                            m.mechanism()
                        );
                    }
                    None => {
                        let _ = writeln!(out, "      mechanism={}", m.mechanism());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_model::{
        ComponentType, FailureMode, Mechanism, ParamRange, Parameter, ResourceComponent,
        ResourceOption, ResourceType, Tier,
    };
    use aved_units::{Duration, Money};

    fn sample_infra() -> Infrastructure {
        Infrastructure::new()
            .with_component(
                ComponentType::new("machineA")
                    .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
                    .with_failure_mode(FailureMode::new(
                        "hard",
                        Duration::from_days(650.0),
                        DurationSpec::FromMechanism("maintenanceA".into()),
                        Duration::from_mins(2.0),
                    ))
                    .with_failure_mode(FailureMode::new(
                        "soft",
                        Duration::from_days(75.0),
                        Duration::ZERO,
                        Duration::ZERO,
                    )),
            )
            .with_component(
                ComponentType::new("linux")
                    .with_cost(Money::ZERO)
                    .with_failure_mode(FailureMode::new(
                        "soft",
                        Duration::from_days(60.0),
                        Duration::ZERO,
                        Duration::ZERO,
                    )),
            )
            .with_mechanism(
                Mechanism::new("maintenanceA")
                    .with_param(Parameter::new(
                        "level",
                        ParamRange::Levels(vec!["bronze".into(), "gold".into()]),
                    ))
                    .with_cost_table(
                        "level",
                        vec![Money::from_dollars(380.0), Money::from_dollars(760.0)],
                    )
                    .with_mttr_effect(EffectValue::Table {
                        param: "level".into(),
                        values: vec![Duration::from_hours(38.0), Duration::from_hours(8.0)],
                    }),
            )
            .with_resource(
                ResourceType::new("rA", Duration::ZERO)
                    .with_component(ResourceComponent::new(
                        "machineA",
                        None,
                        Duration::from_secs(30.0),
                    ))
                    .with_component(ResourceComponent::new(
                        "linux",
                        Some("machineA".into()),
                        Duration::from_mins(2.0),
                    )),
            )
    }

    #[test]
    fn infrastructure_round_trip() {
        let infra = sample_infra();
        let text = write_infrastructure(&infra);
        let reparsed = crate::parse_infrastructure(&text).unwrap();
        assert_eq!(infra, reparsed, "text was:\n{text}");
    }

    #[test]
    fn service_round_trip() {
        let svc = Service::new("scientific")
            .with_job_size(10_000.0)
            .with_tier(
                Tier::new("computation")
                    .with_option(
                        ResourceOption::new(
                            "rH",
                            aved_model::Sizing::Static,
                            FailureScope::Tier,
                            NActiveSpec::Arithmetic {
                                min: 1,
                                max: 1000,
                                step: 1,
                            },
                            PerfRef::Named("perfH.dat".into()),
                        )
                        .with_mechanism(aved_model::MechanismUse::new(
                            "checkpoint",
                            Some("mperfH.dat".into()),
                        )),
                    )
                    .with_option(ResourceOption::new(
                        "rG",
                        aved_model::Sizing::Dynamic,
                        FailureScope::Resource,
                        NActiveSpec::List(vec![1, 2, 4]),
                        PerfRef::Const(10_000.0),
                    )),
            );
        let text = write_service(&svc);
        let reparsed = crate::parse_service(&text).unwrap();
        assert_eq!(svc, reparsed, "text was:\n{text}");
    }

    #[test]
    fn geometric_param_round_trip() {
        let infra = Infrastructure::new().with_mechanism(
            Mechanism::new("checkpoint")
                .with_param(Parameter::new(
                    "storage_location",
                    ParamRange::Levels(vec!["central".into(), "peer".into()]),
                ))
                .with_param(Parameter::new(
                    "checkpoint_interval",
                    ParamRange::GeometricDuration {
                        min: Duration::from_mins(1.0),
                        max: Duration::from_hours(24.0),
                        factor: 1.05,
                    },
                ))
                .with_loss_window_effect(EffectValue::Param("checkpoint_interval".into())),
        );
        let text = write_infrastructure(&infra);
        let reparsed = crate::parse_infrastructure(&text).unwrap();
        assert_eq!(infra, reparsed, "text was:\n{text}");
    }
}
