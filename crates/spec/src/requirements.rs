//! Parsing service requirements in the attribute-value syntax.
//!
//! The paper describes requirements textually; for tooling (the `aved`
//! CLI, batch sweeps) we give them the same syntax as the other models:
//!
//! ```text
//! requirement=enterprise throughput=1000 downtime=100m
//! requirement=job execution_time=20h
//! ```

use aved_model::ServiceRequirement;

use crate::infra::{duration_attr, structure, word};
use crate::{SpecError, SpecErrorKind};

/// Parses a single-requirement document.
///
/// # Errors
///
/// Returns [`SpecError`] for syntax errors, unknown requirement kinds, or
/// missing attributes.
///
/// # Examples
///
/// ```
/// let req = aved_spec::parse_requirement(
///     "requirement=enterprise throughput=1000 downtime=100m",
/// )?;
/// assert_eq!(req.min_throughput(), Some(1000.0));
/// # Ok::<(), aved_spec::SpecError>(())
/// ```
pub fn parse_requirement(text: &str) -> Result<ServiceRequirement, SpecError> {
    let lines = crate::lex_document(text)?;
    let [line] = lines.as_slice() else {
        return Err(SpecError::new(
            0,
            SpecErrorKind::Structure(format!(
                "expected exactly one requirement line, found {}",
                lines.len()
            )),
        ));
    };
    if line.keyword().name != "requirement" {
        return Err(structure(
            line.number,
            format!("expected requirement=..., found {}=", line.keyword().name),
        ));
    }
    match word(line.number, line.keyword())? {
        "enterprise" => {
            let throughput_attr = line.attr("throughput").ok_or_else(|| {
                structure(
                    line.number,
                    "enterprise requirement needs throughput=".into(),
                )
            })?;
            let throughput: f64 = word(line.number, throughput_attr)?.parse().map_err(|_| {
                SpecError::new(
                    line.number,
                    SpecErrorKind::Value("throughput must be a number".into()),
                )
            })?;
            if throughput <= 0.0 {
                return Err(SpecError::new(
                    line.number,
                    SpecErrorKind::Value("throughput must be positive".into()),
                ));
            }
            let downtime = duration_attr(line, "downtime")?;
            Ok(ServiceRequirement::enterprise(throughput, downtime))
        }
        "job" => {
            let t = duration_attr(line, "execution_time")?;
            if t.is_zero() {
                return Err(SpecError::new(
                    line.number,
                    SpecErrorKind::Value("execution_time must be positive".into()),
                ));
            }
            Ok(ServiceRequirement::job(t))
        }
        other => Err(structure(
            line.number,
            format!("unknown requirement kind {other:?} (expected enterprise or job)"),
        )),
    }
}

/// Renders a requirement in the same syntax.
#[must_use]
pub fn write_requirement(req: &ServiceRequirement) -> String {
    match req {
        ServiceRequirement::Enterprise {
            min_throughput,
            max_annual_downtime,
        } => format!(
            "requirement=enterprise throughput={min_throughput} downtime={max_annual_downtime}\n"
        ),
        ServiceRequirement::Job { max_execution_time } => {
            format!("requirement=job execution_time={max_execution_time}\n")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_units::Duration;

    #[test]
    fn parses_enterprise() {
        let r = parse_requirement("requirement=enterprise throughput=1000 downtime=100m").unwrap();
        assert_eq!(r.min_throughput(), Some(1000.0));
        assert_eq!(r.max_annual_downtime(), Some(Duration::from_mins(100.0)));
    }

    #[test]
    fn parses_job() {
        let r = parse_requirement("requirement=job execution_time=20h").unwrap();
        assert_eq!(r.max_execution_time(), Some(Duration::from_hours(20.0)));
    }

    #[test]
    fn round_trips() {
        for req in [
            aved_model::ServiceRequirement::enterprise(400.0, Duration::from_mins(10.0)),
            aved_model::ServiceRequirement::job(Duration::from_hours(100.0)),
        ] {
            let text = write_requirement(&req);
            assert_eq!(parse_requirement(&text).unwrap(), req, "text: {text}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_requirement("").is_err());
        assert!(parse_requirement("requirement=slo latency=5m").is_err());
        assert!(parse_requirement("requirement=enterprise downtime=100m").is_err());
        assert!(parse_requirement("requirement=enterprise throughput=abc downtime=100m").is_err());
        assert!(parse_requirement("requirement=enterprise throughput=-5 downtime=100m").is_err());
        assert!(parse_requirement("requirement=job").is_err());
        assert!(parse_requirement("requirement=job execution_time=0").is_err());
        assert!(parse_requirement("component=x cost=0").is_err());
        // Two lines is also an error.
        assert!(parse_requirement(
            "requirement=job execution_time=1h\nrequirement=job execution_time=2h"
        )
        .is_err());
    }
}
