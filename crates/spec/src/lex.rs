//! Line-oriented lexer for the specification language.
//!
//! Each (logical) line is a sequence of attributes
//! `name(args)?=value`, where a value is a bare word (`dynamic`, `30s`,
//! `perfA.dat`), a mechanism reference (`<maintenanceA>`) or a bracketed
//! body (`[2400 2640]`, `[bronze,silver,gold,platinum]`, `[1m-24h;*1.05]`).
//! `\\` starts a comment running to the end of the line. Physical lines
//! with unbalanced `(`/`[` continue onto the next line, which is how the
//! paper wraps long `mperformance(...)` attributes.

use crate::{SpecError, SpecErrorKind};

/// An attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A bare word: identifier, number, duration or filename.
    Word(String),
    /// A mechanism reference `<name>`.
    Ref(String),
    /// The raw interior of a bracketed body `[...]` (brackets stripped,
    /// inner whitespace collapsed to single spaces).
    Bracket(String),
}

impl Value {
    /// The bare word, if this is a `Word`.
    #[must_use]
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Value::Word(w) => Some(w),
            _ => None,
        }
    }

    /// The referenced name, if this is a `Ref`.
    #[must_use]
    pub fn as_ref_name(&self) -> Option<&str> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// The bracket body, if this is a `Bracket`.
    #[must_use]
    pub fn as_bracket(&self) -> Option<&str> {
        match self {
            Value::Bracket(b) => Some(b),
            _ => None,
        }
    }

    /// Splits a bracket body into items on commas and/or whitespace:
    /// `[2400 2640]` and `[bronze,silver]` both yield two items.
    #[must_use]
    pub fn bracket_items(&self) -> Vec<String> {
        match self {
            Value::Bracket(b) => b
                .split(|c: char| c == ',' || c.is_whitespace())
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// One `name(args)?=value` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name (`component`, `mtbf`, `cost`, ...).
    pub name: String,
    /// Parenthesized argument list, split on top-level commas
    /// (`cost([inactive,active])` has the single argument
    /// `[inactive,active]`).
    pub args: Vec<String>,
    /// The value after `=`.
    pub value: Value,
}

/// A logical line: its 1-based number (of its first physical line) and its
/// attributes in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// 1-based number of the first physical line.
    pub number: usize,
    /// The attributes, in source order. Never empty.
    pub attrs: Vec<Attr>,
}

impl Line {
    /// The first attribute — the line's "keyword" that determines what the
    /// line declares.
    #[must_use]
    pub fn keyword(&self) -> &Attr {
        &self.attrs[0]
    }

    /// Finds an attribute by name.
    #[must_use]
    pub fn attr(&self, name: &str) -> Option<&Attr> {
        self.attrs.iter().find(|a| a.name == name)
    }
}

/// Lexes a whole document into logical lines.
///
/// # Errors
///
/// Returns [`SpecError`] with the offending line number for malformed
/// attributes, unterminated brackets or references.
pub fn lex_document(text: &str) -> Result<Vec<Line>, SpecError> {
    // First pass: strip comments, join continuation lines.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let without_comment = match raw.find("\\\\") {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = without_comment.trim();
        if trimmed.is_empty() && pending.is_none() {
            continue;
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(trimmed);
                if unbalanced(&acc) {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if unbalanced(trimmed) {
                    pending = Some((number, trimmed.to_owned()));
                } else {
                    logical.push((number, trimmed.to_owned()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        return Err(SpecError::new(
            start,
            SpecErrorKind::Lex(format!("unterminated bracket or parenthesis in {acc:?}")),
        ));
    }

    logical
        .into_iter()
        .map(|(number, body)| {
            let attrs = lex_line(&body).map_err(|e| {
                SpecError::new(number, SpecErrorKind::Lex(e.message)).with_column(e.column)
            })?;
            if attrs.is_empty() {
                return Err(SpecError::new(
                    number,
                    SpecErrorKind::Lex("empty line after comment stripping".into()),
                ));
            }
            Ok(Line { number, attrs })
        })
        .collect()
}

/// Whether parens/brackets are unbalanced (more opens than closes).
fn unbalanced(s: &str) -> bool {
    let mut depth = 0_i32;
    for c in s.chars() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

/// A lexing failure within one logical line: where (1-based column into
/// the joined logical text) and what.
struct LexFailure {
    column: usize,
    message: String,
}

impl LexFailure {
    fn at(column: usize, message: String) -> LexFailure {
        LexFailure { column, message }
    }
}

fn lex_line(body: &str) -> Result<Vec<Attr>, LexFailure> {
    let mut attrs = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    let n = chars.len();
    loop {
        while i < n && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= n {
            break;
        }
        // Attribute name: up to '(', '=' or whitespace.
        let name_start = i;
        while i < n && chars[i] != '(' && chars[i] != '=' && !chars[i].is_whitespace() {
            i += 1;
        }
        let name: String = chars[name_start..i].iter().collect();
        if name.is_empty() {
            return Err(LexFailure::at(i + 1, "expected attribute name".into()));
        }
        // Optional (args).
        let mut args = Vec::new();
        if i < n && chars[i] == '(' {
            let mut depth = 1;
            let args_start = i + 1;
            i += 1;
            while i < n && depth > 0 {
                match chars[i] {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            if depth > 0 {
                return Err(LexFailure::at(
                    args_start,
                    format!("unterminated argument list for {name}"),
                ));
            }
            let inner: String = chars[args_start..i - 1].iter().collect();
            args = split_top_level_commas(&inner);
        }
        // '='
        if i >= n || chars[i] != '=' {
            return Err(LexFailure::at(
                i + 1,
                format!("expected '=' after attribute {name}"),
            ));
        }
        i += 1;
        // Value.
        if i >= n {
            return Err(LexFailure::at(
                i + 1,
                format!("missing value for attribute {name}"),
            ));
        }
        let value = match chars[i] {
            '<' => {
                let ref_open = i + 1;
                let start = i + 1;
                while i < n && chars[i] != '>' {
                    i += 1;
                }
                if i >= n {
                    return Err(LexFailure::at(
                        ref_open,
                        format!("unterminated reference for attribute {name}"),
                    ));
                }
                let r: String = chars[start..i].iter().collect();
                i += 1;
                Value::Ref(r.trim().to_owned())
            }
            '[' => {
                let bracket_open = i + 1;
                let mut depth = 1;
                let start = i + 1;
                i += 1;
                while i < n && depth > 0 {
                    match chars[i] {
                        '[' => depth += 1,
                        ']' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth > 0 {
                    return Err(LexFailure::at(
                        bracket_open,
                        format!("unterminated bracket for attribute {name}"),
                    ));
                }
                let inner: String = chars[start..i - 1].iter().collect();
                Value::Bracket(inner.split_whitespace().collect::<Vec<_>>().join(" "))
            }
            _ => {
                let start = i;
                while i < n && !chars[i].is_whitespace() {
                    i += 1;
                }
                Value::Word(chars[start..i].iter().collect())
            }
        };
        attrs.push(Attr { name, args, value });
    }
    Ok(attrs)
}

fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0_i32;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '[' | '(' => {
                depth += 1;
                current.push(c);
            }
            ']' | ')' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(current.trim().to_owned());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex1(s: &str) -> Line {
        let lines = lex_document(s).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        lines.into_iter().next().unwrap()
    }

    #[test]
    fn component_line_with_mode_costs() {
        let l = lex1("component=machineA cost([inactive,active])=[2400 2640]");
        assert_eq!(l.attrs.len(), 2);
        assert_eq!(l.keyword().name, "component");
        assert_eq!(l.keyword().value, Value::Word("machineA".into()));
        let cost = l.attr("cost").unwrap();
        assert_eq!(cost.args, vec!["[inactive,active]"]);
        assert_eq!(cost.value, Value::Bracket("2400 2640".into()));
        assert_eq!(cost.value.bracket_items(), vec!["2400", "2640"]);
    }

    #[test]
    fn failure_line_with_reference() {
        let l = lex1("failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m");
        assert_eq!(l.attrs.len(), 4);
        assert_eq!(
            l.attr("mttr").unwrap().value,
            Value::Ref("maintenanceA".into())
        );
        assert_eq!(l.attr("mtbf").unwrap().value, Value::Word("650d".into()));
    }

    #[test]
    fn comma_list_bracket() {
        let l = lex1("param=level range=[bronze,silver,gold,platinum]");
        let range = l.attr("range").unwrap();
        assert_eq!(
            range.value.bracket_items(),
            vec!["bronze", "silver", "gold", "platinum"]
        );
    }

    #[test]
    fn geometric_range_is_preserved_raw() {
        let l = lex1("param=checkpoint_interval range=[1m-24h;*1.05]");
        assert_eq!(
            l.attr("range").unwrap().value,
            Value::Bracket("1m-24h;*1.05".into())
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let lines = lex_document(
            "\\\\ COMPONENTS DESCRIPTION\n\
             \n\
             component=linux cost=0 \\\\ trailing comment\n",
        )
        .unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].number, 3);
        assert_eq!(lines[0].attrs.len(), 2);
    }

    #[test]
    fn continuation_lines_are_joined() {
        let lines = lex_document(
            "mechanism=checkpoint mperformance(storage_location,\n\
             \tcheckpoint_interval,nActive)=mperfH.dat\n",
        )
        .unwrap();
        assert_eq!(lines.len(), 1);
        let mp = lines[0].attr("mperformance").unwrap();
        assert_eq!(
            mp.args,
            vec!["storage_location", "checkpoint_interval", "nActive"]
        );
        assert_eq!(mp.value, Value::Word("mperfH.dat".into()));
    }

    #[test]
    fn unterminated_bracket_is_reported_with_line() {
        let err = lex_document("cost(level)=[380 580\n").unwrap_err();
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn missing_equals_is_error() {
        let err = lex_document("component machineA\n").unwrap_err();
        // "component" is followed by whitespace, not '='; the complaint
        // points at the column right after the name.
        assert_eq!(err.column(), Some(10), "{err}");
        assert!(err.to_string().contains("expected '='"), "{err}");
    }

    #[test]
    fn missing_value_is_error() {
        let err = lex_document("component=\n").unwrap_err();
        assert_eq!(err.column(), Some(11), "{err}");
        assert!(err.to_string().contains("missing value"), "{err}");
    }

    #[test]
    fn unterminated_ref_is_error() {
        let err = lex_document("mttr=<maintenanceA\n").unwrap_err();
        assert_eq!(err.column(), Some(6), "{err}");
        assert!(err.to_string().contains("unterminated reference"), "{err}");
    }

    #[test]
    fn nested_brackets_in_args() {
        let l = lex1("cost([a,b],x)=[1 2]");
        assert_eq!(l.keyword().args, vec!["[a,b]", "x"]);
    }

    #[test]
    fn multiple_attrs_whitespace_robust() {
        let l = lex1("  resource=rA   reconfig_time=0  ");
        assert_eq!(l.attrs.len(), 2);
        assert_eq!(
            l.attr("reconfig_time").unwrap().value,
            Value::Word("0".into())
        );
    }

    #[test]
    fn line_numbers_are_physical() {
        let lines = lex_document("a=1\n\nb=2\nc=3\n").unwrap();
        let nums: Vec<usize> = lines.iter().map(|l| l.number).collect();
        assert_eq!(nums, vec![1, 3, 4]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Word("x".into()).as_word(), Some("x"));
        assert_eq!(Value::Word("x".into()).as_ref_name(), None);
        assert_eq!(Value::Ref("m".into()).as_ref_name(), Some("m"));
        assert_eq!(Value::Bracket("1 2".into()).as_bracket(), Some("1 2"));
        assert!(Value::Word("x".into()).bracket_items().is_empty());
    }
}
