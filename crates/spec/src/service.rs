//! Parser for service model documents (paper Figs. 4 and 5).

use aved_model::{
    FailureScope, MechanismUse, NActiveSpec, PerfRef, ResourceOption, Service, Sizing, Tier,
};

use crate::infra::{structure, value_err, word};
use crate::{Line, SpecError};

/// Parses a document containing one or more `application=` sections.
///
/// # Errors
///
/// Returns [`SpecError`] on syntax errors, unknown attribute values
/// (`sizing=sometimes`), or structurally misplaced attributes.
pub fn parse_services(text: &str) -> Result<Vec<Service>, SpecError> {
    let lines = crate::lex_document(text)?;
    let mut parser = ServiceParser::default();
    for line in &lines {
        parser.line(line)?;
    }
    parser.finish()
}

#[derive(Default)]
struct ServiceParser {
    done: Vec<Service>,
    service: Option<Service>,
    tier: Option<Tier>,
    option: Option<OptionBuilder>,
}

struct OptionBuilder {
    line: usize,
    resource: String,
    sizing: Sizing,
    failure_scope: FailureScope,
    n_active: Option<NActiveSpec>,
    performance: Option<PerfRef>,
    mechanisms: Vec<MechanismUse>,
}

impl OptionBuilder {
    fn build(self) -> Result<ResourceOption, SpecError> {
        let n_active = self.n_active.ok_or_else(|| {
            structure(
                self.line,
                format!("resource option {} is missing nActive", self.resource),
            )
        })?;
        let performance = self.performance.ok_or_else(|| {
            structure(
                self.line,
                format!("resource option {} is missing performance", self.resource),
            )
        })?;
        let mut opt = ResourceOption::new(
            self.resource,
            self.sizing,
            self.failure_scope,
            n_active,
            performance,
        );
        for m in self.mechanisms {
            opt = opt.with_mechanism(m);
        }
        Ok(opt)
    }
}

impl ServiceParser {
    fn line(&mut self, line: &Line) -> Result<(), SpecError> {
        match line.keyword().name.as_str() {
            "application" => self.start_application(line),
            "tier" => self.start_tier(line),
            "resource" => self.start_option(line),
            "nActive" | "nactive" => self.option_attrs(line),
            "performance" => self.option_attrs(line),
            "mechanism" => self.option_mechanism(line),
            other => Err(structure(
                line.number,
                format!("unexpected attribute {other} in service model"),
            )),
        }
    }

    fn finish(mut self) -> Result<Vec<Service>, SpecError> {
        self.flush_service()?;
        Ok(self.done)
    }

    fn flush_option(&mut self) -> Result<(), SpecError> {
        if let Some(ob) = self.option.take() {
            let line = ob.line;
            let opt = ob.build()?;
            let tier = self
                .tier
                .take()
                .ok_or_else(|| structure(line, "resource option outside a tier".into()))?;
            self.tier = Some(tier.with_option(opt));
        }
        Ok(())
    }

    fn flush_tier(&mut self) -> Result<(), SpecError> {
        self.flush_option()?;
        if let Some(t) = self.tier.take() {
            let svc = self.service.take().ok_or_else(|| {
                structure(
                    0,
                    format!("tier {} has no enclosing application", t.name().as_str()),
                )
            })?;
            self.service = Some(svc.with_tier(t));
        }
        Ok(())
    }

    fn flush_service(&mut self) -> Result<(), SpecError> {
        self.flush_tier()?;
        if let Some(s) = self.service.take() {
            self.done.push(s);
        }
        Ok(())
    }

    fn start_application(&mut self, line: &Line) -> Result<(), SpecError> {
        self.flush_service()?;
        let name = word(line.number, line.keyword())?;
        let mut svc = Service::new(name);
        if let Some(js) = line.attr("jobsize") {
            let size: f64 = word(line.number, js)?
                .parse()
                .map_err(|_| value_err(line.number, "jobsize must be a number"))?;
            if size <= 0.0 {
                return Err(value_err(line.number, "jobsize must be positive"));
            }
            svc = svc.with_job_size(size);
        }
        self.service = Some(svc);
        Ok(())
    }

    fn start_tier(&mut self, line: &Line) -> Result<(), SpecError> {
        if self.service.is_none() {
            return Err(structure(
                line.number,
                "tier= outside an application".into(),
            ));
        }
        self.flush_tier()?;
        let name = word(line.number, line.keyword())?;
        self.tier = Some(Tier::new(name));
        Ok(())
    }

    fn start_option(&mut self, line: &Line) -> Result<(), SpecError> {
        if self.tier.is_none() {
            return Err(structure(line.number, "resource= outside a tier".into()));
        }
        self.flush_option()?;
        let resource = word(line.number, line.keyword())?.to_owned();
        let sizing = match line.attr("sizing") {
            Some(a) => match word(line.number, a)? {
                "static" => Sizing::Static,
                "dynamic" => Sizing::Dynamic,
                other => {
                    return Err(value_err(
                        line.number,
                        &format!("sizing must be static or dynamic, got {other}"),
                    ))
                }
            },
            None => {
                return Err(structure(
                    line.number,
                    "resource option missing sizing".into(),
                ))
            }
        };
        let failure_scope = match line.attr("failurescope") {
            Some(a) => match word(line.number, a)? {
                "resource" => FailureScope::Resource,
                "tier" => FailureScope::Tier,
                other => {
                    return Err(value_err(
                        line.number,
                        &format!("failurescope must be resource or tier, got {other}"),
                    ))
                }
            },
            None => {
                return Err(structure(
                    line.number,
                    "resource option missing failurescope".into(),
                ))
            }
        };
        self.option = Some(OptionBuilder {
            line: line.number,
            resource,
            sizing,
            failure_scope,
            n_active: None,
            performance: None,
            mechanisms: Vec::new(),
        });
        // nActive/performance may share the resource line.
        self.apply_option_attrs(line)
    }

    fn option_attrs(&mut self, line: &Line) -> Result<(), SpecError> {
        if self.option.is_none() {
            return Err(structure(
                line.number,
                format!("{}= outside a resource option", line.keyword().name),
            ));
        }
        self.apply_option_attrs(line)
    }

    fn apply_option_attrs(&mut self, line: &Line) -> Result<(), SpecError> {
        let ob = self.option.as_mut().ok_or_else(|| {
            structure(
                line.number,
                format!("{}= outside a resource option", line.keyword().name),
            )
        })?;
        for attr in &line.attrs {
            match attr.name.as_str() {
                "nActive" | "nactive" => {
                    let body = attr.value.as_bracket().ok_or_else(|| {
                        value_err(line.number, "nActive must be a bracketed body")
                    })?;
                    ob.n_active = Some(parse_n_active(line.number, body)?);
                }
                "performance" => {
                    let w = word(line.number, attr)?;
                    ob.performance = Some(match w.parse::<f64>() {
                        Ok(v) if attr.args.is_empty() => PerfRef::Const(v),
                        _ => PerfRef::Named(w.to_owned()),
                    });
                }
                // attributes already consumed by start_option
                "resource" | "sizing" | "failurescope" => {}
                other => {
                    return Err(structure(
                        line.number,
                        format!("unexpected resource-option attribute {other}"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn option_mechanism(&mut self, line: &Line) -> Result<(), SpecError> {
        let ob = self
            .option
            .as_mut()
            .ok_or_else(|| structure(line.number, "mechanism= outside a resource option".into()))?;
        let name = word(line.number, line.keyword())?.to_owned();
        let mperf = match line.attr("mperformance") {
            Some(a) => Some(word(line.number, a)?.to_owned()),
            None => None,
        };
        ob.mechanisms.push(MechanismUse::new(name, mperf));
        Ok(())
    }
}

/// Parses `1-1000,+1`, `1-1024,*2`, `1` or `1,2,4`.
fn parse_n_active(number: usize, body: &str) -> Result<NActiveSpec, SpecError> {
    let parts: Vec<&str> = body
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .collect();
    if parts.is_empty() {
        return Err(value_err(number, "nActive must not be empty"));
    }
    let parse_u32 = |s: &str| -> Result<u32, SpecError> {
        s.parse()
            .map_err(|_| value_err(number, &format!("{s:?} is not a resource count")))
    };
    let last = parts[parts.len() - 1];
    let step: Option<(char, u32)> = if let Some(rest) = last.strip_prefix('+') {
        Some(('+', parse_u32(rest)?))
    } else if let Some(rest) = last.strip_prefix('*') {
        Some(('*', parse_u32(rest)?))
    } else {
        None
    };
    let value_parts = if step.is_some() {
        &parts[..parts.len() - 1]
    } else {
        &parts[..]
    };
    // A span `min-max` or a list of explicit counts.
    if value_parts.len() == 1 && value_parts[0].contains('-') {
        let Some((lo, hi)) = value_parts[0].split_once('-') else {
            return Err(value_err(
                number,
                &format!("{:?} is not an nActive span", value_parts[0]),
            ));
        };
        let min = parse_u32(lo)?;
        let max = parse_u32(hi)?;
        if min == 0 || max < min {
            return Err(value_err(
                number,
                "nActive span must satisfy 1 <= min <= max",
            ));
        }
        Ok(match step {
            None | Some(('+', 1)) => NActiveSpec::Arithmetic { min, max, step: 1 },
            Some(('+', s)) => {
                if s == 0 {
                    return Err(value_err(number, "nActive step must be positive"));
                }
                NActiveSpec::Arithmetic { min, max, step: s }
            }
            Some(('*', f)) => {
                if f < 2 {
                    return Err(value_err(number, "nActive factor must be at least 2"));
                }
                NActiveSpec::Geometric {
                    min,
                    max,
                    factor: f,
                }
            }
            Some(_) => unreachable!("step prefix is + or *"),
        })
    } else {
        if step.is_some() {
            return Err(value_err(
                number,
                "nActive step requires a min-max span (e.g. [1-1000,+1])",
            ));
        }
        let list = value_parts
            .iter()
            .map(|s| parse_u32(s))
            .collect::<Result<Vec<_>, _>>()?;
        if list.contains(&0) {
            return Err(value_err(number, "nActive counts must be positive"));
        }
        Ok(NActiveSpec::List(list))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECOMMERCE: &str = "\
application=ecommerce
  tier=web
    resource=rA sizing=dynamic failurescope=resource
      nActive=[1-1000,+1] performance(nActive)=perfA.dat
    resource=rB sizing=dynamic failurescope=resource
      nActive=[1-1000,+1] performance(nActive)=perfB.dat
  tier=application
    resource=rC sizing=dynamic failurescope=resource
      nActive=[1-1000,+1] performance(nActive)=perfC.dat
    resource=rD sizing=dynamic failurescope=resource
      nActive=[1-1000,+1] performance(nActive)=perfD.dat
  tier=database
    resource=rG sizing=static failurescope=resource
      nActive=[1] performance=10000
";

    const SCIENTIFIC: &str = "\
application=scientific jobsize=10000
  tier=computation
    resource=rH sizing=static failurescope=tier
      nActive=[1-1000,+1] performance(nActive)=perfH.dat
      mechanism=checkpoint mperformance(storage_location,
        checkpoint_interval,nActive)=mperfH.dat
    resource=rI sizing=static failurescope=tier
      nActive=[1-1000,+1] performance(nActive)=perfI.dat
      mechanism=checkpoint mperformance(storage_location,
        checkpoint_interval,nActive)=mperfI.dat
";

    #[test]
    fn parses_ecommerce_structure() {
        let svc = crate::parse_service(ECOMMERCE).unwrap();
        assert_eq!(svc.name(), "ecommerce");
        assert_eq!(svc.job_size(), None);
        assert_eq!(svc.tiers().len(), 3);
        let web = svc.tier("web").unwrap();
        assert_eq!(web.options().len(), 2);
        let ra = web.option_for("rA").unwrap();
        assert_eq!(ra.sizing(), Sizing::Dynamic);
        assert_eq!(ra.failure_scope(), FailureScope::Resource);
        assert_eq!(
            ra.n_active(),
            &NActiveSpec::Arithmetic {
                min: 1,
                max: 1000,
                step: 1
            }
        );
        assert_eq!(ra.performance(), &PerfRef::Named("perfA.dat".into()));
        let db = svc.tier("database").unwrap().option_for("rG").unwrap();
        assert_eq!(db.n_active(), &NActiveSpec::List(vec![1]));
        assert_eq!(db.performance(), &PerfRef::Const(10_000.0));
    }

    #[test]
    fn parses_scientific_with_mechanisms() {
        let svc = crate::parse_service(SCIENTIFIC).unwrap();
        assert_eq!(svc.job_size(), Some(10_000.0));
        let comp = svc.tier("computation").unwrap();
        assert_eq!(comp.options().len(), 2);
        for (res, mperf) in [("rH", "mperfH.dat"), ("rI", "mperfI.dat")] {
            let opt = comp.option_for(res).unwrap();
            assert_eq!(opt.failure_scope(), FailureScope::Tier);
            assert_eq!(opt.mechanisms().len(), 1);
            let m = &opt.mechanisms()[0];
            assert_eq!(m.mechanism().as_str(), "checkpoint");
            assert_eq!(m.mperformance(), Some(mperf));
        }
    }

    #[test]
    fn parses_multiple_applications() {
        let both = format!("{ECOMMERCE}\n{SCIENTIFIC}");
        let services = parse_services(&both).unwrap();
        assert_eq!(services.len(), 2);
        assert_eq!(services[0].name(), "ecommerce");
        assert_eq!(services[1].name(), "scientific");
    }

    #[test]
    fn parse_service_rejects_multiple() {
        let both = format!("{ECOMMERCE}\n{SCIENTIFIC}");
        assert!(crate::parse_service(&both).is_err());
    }

    #[test]
    fn n_active_forms() {
        assert_eq!(
            parse_n_active(1, "1-1000,+1").unwrap(),
            NActiveSpec::Arithmetic {
                min: 1,
                max: 1000,
                step: 1
            }
        );
        assert_eq!(
            parse_n_active(1, "2-64,*2").unwrap(),
            NActiveSpec::Geometric {
                min: 2,
                max: 64,
                factor: 2
            }
        );
        assert_eq!(
            parse_n_active(1, "4-20,+4").unwrap(),
            NActiveSpec::Arithmetic {
                min: 4,
                max: 20,
                step: 4
            }
        );
        assert_eq!(parse_n_active(1, "1").unwrap(), NActiveSpec::List(vec![1]));
        assert_eq!(
            parse_n_active(1, "1,2,4").unwrap(),
            NActiveSpec::List(vec![1, 2, 4])
        );
    }

    #[test]
    fn n_active_rejects_bad_forms() {
        assert!(parse_n_active(1, "").is_err());
        assert!(parse_n_active(1, "0-5,+1").is_err());
        assert!(parse_n_active(1, "5-2,+1").is_err());
        assert!(parse_n_active(1, "1-10,*1").is_err());
        assert!(parse_n_active(1, "1-10,+0").is_err());
        assert!(parse_n_active(1, "1,+2").is_err());
        assert!(parse_n_active(1, "x").is_err());
        assert!(parse_n_active(1, "0").is_err());
    }

    #[test]
    fn tier_outside_application_is_error() {
        assert!(parse_services("tier=web\n").is_err());
    }

    #[test]
    fn resource_outside_tier_is_error() {
        assert!(parse_services(
            "application=x\nresource=rA sizing=dynamic failurescope=resource\n"
        )
        .is_err());
    }

    #[test]
    fn missing_sizing_is_error() {
        let err = parse_services(
            "application=x\ntier=t\nresource=rA failurescope=resource\nnActive=[1] performance=1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("sizing"));
    }

    #[test]
    fn missing_n_active_is_error() {
        let err = parse_services(
            "application=x\ntier=t\nresource=rA sizing=static failurescope=tier\nperformance=1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("nActive"));
    }

    #[test]
    fn bad_sizing_value_is_error() {
        let err = parse_services(
            "application=x\ntier=t\nresource=rA sizing=sometimes failurescope=tier\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("sometimes"));
    }

    #[test]
    fn negative_jobsize_is_error() {
        assert!(parse_services("application=x jobsize=-5\n").is_err());
        assert!(parse_services("application=x jobsize=abc\n").is_err());
    }

    #[test]
    fn numeric_performance_with_args_is_named() {
        // performance(nActive)=10000 would be a (weird) named table "10000";
        // the args make it a function reference, not a constant.
        let svc = crate::parse_service(
            "application=x\ntier=t\nresource=rA sizing=static failurescope=tier\nnActive=[1] performance(nActive)=10000\n",
        )
        .unwrap();
        let opt = svc.tier("t").unwrap().option_for("rA").unwrap();
        assert_eq!(opt.performance(), &PerfRef::Named("10000".into()));
    }
}
