//! Parser for the Aved specification language.
//!
//! The paper specifies infrastructure and service models "as a structured
//! list of attribute-value pairs" (Figs. 3–5). This crate parses that
//! syntax into the `aved-model` types, and can write models back out in the
//! same syntax.
//!
//! # Syntax overview
//!
//! ```text
//! \\ comment to end of line
//! component=machineA cost([inactive,active])=[2400 2640]
//!   failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m
//!   failure=soft mtbf=75d mttr=0 detect_time=0
//! mechanism=maintenanceA
//!   param=level range=[bronze,silver,gold,platinum]
//!   cost(level)=[380 580 760 1500]
//!   mttr(level)=[38h 15h 8h 6h]
//! resource=rA reconfig_time=0
//!   component=machineA depend=null startup=30s
//! ```
//!
//! and, for services,
//!
//! ```text
//! application=scientific jobsize=10000
//!   tier=computation
//!     resource=rH sizing=static failurescope=tier
//!       nActive=[1-1000,+1] performance(nActive)=perfH.dat
//!       mechanism=checkpoint mperformance(storage_location,
//!         checkpoint_interval,nActive)=mperfH.dat
//! ```
//!
//! Indentation is not significant; structure follows from the leading
//! attribute of each line (`component=`, `failure=`, `mechanism=`, ...),
//! exactly as in the paper's figures.
//!
//! # Examples
//!
//! ```
//! let text = "\
//! component=node cost([inactive,active])=[100 110]
//!   failure=soft mtbf=30d mttr=0 detect_time=30s
//! resource=rX reconfig_time=0
//!   component=node depend=null startup=1m
//! ";
//! let infra = aved_spec::parse_infrastructure(text)?;
//! assert!(infra.component("node").is_some());
//! assert!(infra.resource("rX").is_some());
//! # Ok::<(), aved_spec::SpecError>(())
//! ```

mod error;
mod infra;
mod lex;
mod requirements;
mod service;
mod write;

pub use error::{SpecError, SpecErrorKind};
pub use infra::{parse_infrastructure, MAX_GEOMETRIC_RANGE_VALUES};
pub use lex::{lex_document, Attr, Line, Value};
pub use requirements::{parse_requirement, write_requirement};
pub use service::parse_services;
pub use write::{write_infrastructure, write_service};

/// Parses a document containing exactly one service/application model.
///
/// # Errors
///
/// Returns [`SpecError`] on syntax errors or if the document does not
/// contain exactly one `application=` section.
pub fn parse_service(text: &str) -> Result<aved_model::Service, SpecError> {
    let mut services = parse_services(text)?;
    if services.len() != 1 {
        return Err(SpecError::new(
            0,
            SpecErrorKind::Structure(format!(
                "expected exactly one application, found {}",
                services.len()
            )),
        ));
    }
    Ok(services.remove(0))
}
