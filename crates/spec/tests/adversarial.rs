//! Adversarial inputs for the specification parser: random byte soup,
//! recombined spec fragments, truncated documents, state-space-bomb
//! ranges and cyclic references. The property under test is always the
//! same — the parser returns a bounded, structured [`SpecError`]; it
//! never panics and never hangs.

use aved_spec::{
    lex_document, parse_infrastructure, parse_requirement, parse_service, parse_services,
    SpecErrorKind, MAX_GEOMETRIC_RANGE_VALUES,
};
use proptest::prelude::*;

/// Every entry point must accept arbitrary text without panicking; the
/// Ok/Err outcome itself is unconstrained.
fn parses_without_panicking(text: &str) {
    let _ = lex_document(text);
    let _ = parse_infrastructure(text);
    let _ = parse_service(text);
    let _ = parse_services(text);
    let _ = parse_requirement(text);
}

/// Fragments of real spec syntax; random recombinations reach far deeper
/// into the parsers than uniform byte soup does.
const FRAGMENTS: &[&str] = &[
    "component=machineA",
    "cost([inactive,active])=[2400 2640]",
    "cost=0",
    "failure=hard",
    "mtbf=650d",
    "mtbf=<maintenanceA>",
    "mttr=<maintenanceA>",
    "mttr=0",
    "detect_time=2m",
    "mechanism=maintenanceA",
    "param=level",
    "range=[bronze,silver,gold,platinum]",
    "range=[1m-24h;*1.05]",
    "range=[1s-36500d;*1.0001]",
    "range=[0s-24h;*1.05]",
    "range=[]",
    "cost(level)=[380 580 760 1500]",
    "mttr(level)=[38h 15h 8h 6h]",
    "loss_window=checkpoint_interval",
    "resource=rA",
    "reconfig_time=0",
    "component=linux depend=machineA startup=2m",
    "depend=null",
    "depend=rA",
    "startup=30s",
    "application=shop",
    "jobsize=10000",
    "tier=web",
    "sizing=static",
    "failurescope=tier",
    "nActive=[1-1000,+1]",
    "performance(nActive)=perfC.dat",
    "performance=400",
    "mperformance(storage_location,checkpoint_interval,nActive)=mperfH.dat",
    "requirement=shop",
    "throughput=400",
    "maxAnnualDowntime=100m",
    "maxExecutionTime=20h",
    "=",
    "==",
    "[",
    "]",
    "<",
    ">",
    ";",
    "*",
    "-",
    "\\\\ comment",
];

const SEPARATORS: &[&str] = &[" ", "  ", "\n", "\n  ", "\t", ""];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Uniform soup of printable text plus structure characters.
    #[test]
    fn random_text_never_panics(text in ".{0,200}") {
        parses_without_panicking(&text);
    }

    /// Valid tokens in invalid orders: sections opened twice, attributes
    /// out of context, unterminated brackets mid-document.
    #[test]
    fn recombined_fragments_never_panic(
        picks in proptest::collection::vec((0usize..FRAGMENTS.len(), 0usize..SEPARATORS.len()), 0..40),
    ) {
        let mut doc = String::new();
        for (frag, sep) in picks {
            doc.push_str(FRAGMENTS[frag]);
            doc.push_str(SEPARATORS[sep]);
        }
        parses_without_panicking(&doc);
    }

    /// Random mutilation of a known-good document: overwrite a window
    /// with garbage and reparse.
    #[test]
    fn mutated_bundled_spec_never_panics(
        offset in 0usize..3000,
        garbage in ".{1,40}",
    ) {
        let base = include_str!("../../../data/infrastructure.aved");
        let cut = floor_char_boundary(base, offset.min(base.len()));
        let mut doc = String::new();
        doc.push_str(&base[..cut]);
        doc.push_str(&garbage);
        let rest = floor_char_boundary(base, (cut + garbage.len()).min(base.len()));
        doc.push_str(&base[rest..]);
        parses_without_panicking(&doc);
    }
}

/// Largest byte index `<= i` that lands on a char boundary.
fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Every prefix of the bundled models — a truncated download or a spec
/// cut off mid-write — parses to a clean result, and the full documents
/// still parse.
#[test]
fn truncated_bundled_specs_error_cleanly() {
    type FullParse = fn(&str) -> bool;
    let specs: &[(&str, FullParse)] = &[
        (include_str!("../../../data/infrastructure.aved"), |t| {
            parse_infrastructure(t).is_ok()
        }),
        (include_str!("../../../data/ecommerce.aved"), |t| {
            parse_service(t).is_ok()
        }),
        (include_str!("../../../data/scientific.aved"), |t| {
            parse_service(t).is_ok()
        }),
    ];
    for (text, parses) in specs {
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            // Must not panic; truncation may or may not be an error
            // (cutting at a line boundary can leave a valid document).
            parses_without_panicking(&text[..cut]);
        }
        assert!(parses(text), "the untruncated document must still parse");
    }
}

/// A spec whose one geometric range would enumerate hundreds of
/// thousands of values is rejected at parse time with the cardinality
/// spelled out, instead of detonating in the search.
#[test]
fn state_space_bomb_range_is_rejected_at_parse_time() {
    let text = "\
component=mpi cost=0 loss_window=<checkpoint>
  failure=soft mtbf=60d mttr=0 detect_time=0
mechanism=checkpoint
  param=checkpoint_interval range=[1s-36500d;*1.0001]
  cost=0
  loss_window=checkpoint_interval
";
    let err = parse_infrastructure(text).unwrap_err();
    assert_eq!(err.line(), 4);
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("cap {MAX_GEOMETRIC_RANGE_VALUES}")),
        "the cap should be named: {msg}"
    );
    assert!(matches!(err.kind(), SpecErrorKind::Value(_)));
}

/// Zero-minimum geometric ranges (`0 * factor = 0` never advances) are
/// rejected before they can hang enumeration.
#[test]
fn zero_min_geometric_range_is_rejected() {
    let text = "\
mechanism=checkpoint
  param=checkpoint_interval range=[0s-24h;*1.05]
  cost=0
";
    let err = parse_infrastructure(text).unwrap_err();
    assert!(err.to_string().contains("positive"), "{err}");
}

/// Cyclic and self-referential component dependencies inside a resource
/// fail validation with a structured model error, not a hang or panic.
#[test]
fn cyclic_dependency_refs_error_cleanly() {
    let cyclic = "\
component=a cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
component=b cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
resource=rX reconfig_time=0
  component=a depend=b startup=30s
  component=b depend=a startup=30s
";
    let err = parse_infrastructure(cyclic).unwrap_err();
    assert!(matches!(err.kind(), SpecErrorKind::Model(_)), "{err}");

    let self_dep = "\
component=a cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
resource=rX reconfig_time=0
  component=a depend=a startup=30s
";
    let err = parse_infrastructure(self_dep).unwrap_err();
    assert!(matches!(err.kind(), SpecErrorKind::Model(_)), "{err}");
}
