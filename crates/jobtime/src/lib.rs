//! Expected job-completion-time analysis (paper §4.2, Eq. 1).
//!
//! For applications of finite duration, Aved estimates the expected time to
//! complete the job, accounting for work lost to failures and re-executed.
//! The paper's Eq. (1) gives the mean computation time `T_lw` needed to
//! bank one *loss window* `lw` of useful work when failures arrive as a
//! Poisson process with mean spacing `mtbf`:
//!
//! ```text
//! P_f  = 1 − e^(−lw/mtbf)                (failure within a window)
//! T_lw = mtbf · P_f / (1 − P_f)          = mtbf · (e^(lw/mtbf) − 1)
//! ```
//!
//! The useful fraction of computation time is `lw / T_lw`; combined with
//! the uptime fraction `T_up` from the availability engine, the effective
//! useful time per wall-clock unit is `(T_up/T) · (lw/T_lw)`, and the
//! expected job execution time follows from the performance model and job
//! size. The no-checkpoint case falls out of the same closed form with the
//! loss window equal to the whole job (the classic restart-from-scratch
//! formula).
//!
//! # Examples
//!
//! ```
//! use aved_jobtime::JobParams;
//! use aved_units::Duration;
//!
//! // 100 h of computation, 30-minute checkpoints, one failure per 10 days.
//! let params = JobParams::new(Duration::from_hours(100.0))
//!     .with_loss_window(Duration::from_mins(30.0))
//!     .with_system_mtbf(Duration::from_days(10.0))
//!     .with_uptime_fraction(0.999);
//! let t = params.expected_completion();
//! assert!(t > Duration::from_hours(100.0));
//! assert!(t < Duration::from_hours(101.0));
//! ```

use aved_units::Duration;
use serde::{Deserialize, Serialize};

/// The probability that at least one failure occurs within a window of
/// length `lw`, for exponential inter-failure times with mean `mtbf`
/// (Eq. 1's `P_f`).
///
/// # Panics
///
/// Panics if `mtbf` is zero.
#[must_use]
pub fn failure_probability(lw: Duration, mtbf: Duration) -> f64 {
    assert!(!mtbf.is_zero(), "MTBF must be positive");
    -(-(lw / mtbf)).exp_m1()
}

/// The mean computation time needed to complete one loss window of useful
/// work (Eq. 1's `T_lw`): `mtbf · (e^(lw/mtbf) − 1)`.
///
/// Evaluated via `exp_m1` so that the common regime `lw ≪ mtbf` (where
/// `T_lw → lw`) stays fully accurate.
///
/// # Panics
///
/// Panics if `mtbf` is zero.
#[must_use]
pub fn mean_time_per_loss_window(lw: Duration, mtbf: Duration) -> Duration {
    assert!(!mtbf.is_zero(), "MTBF must be positive");
    let ratio = lw / mtbf;
    Duration::from_secs(mtbf.seconds() * ratio.exp_m1())
}

/// The fraction of computation time that is useful work, `lw / T_lw`.
///
/// Approaches 1 as `lw/mtbf → 0` (frequent checkpoints relative to
/// failures) and 0 as `lw/mtbf → ∞`.
///
/// # Panics
///
/// Panics if `mtbf` or `lw` is zero.
#[must_use]
pub fn useful_fraction(lw: Duration, mtbf: Duration) -> f64 {
    assert!(!lw.is_zero(), "loss window must be positive");
    let t_lw = mean_time_per_loss_window(lw, mtbf);
    lw / t_lw
}

/// Inputs to the expected-completion-time computation.
///
/// `work_time` is the failure-free computation time of the job *including*
/// any checkpoint overhead (i.e. `job_size / performance(n)` scaled by the
/// mperformance multiplier). The loss window, system MTBF and uptime
/// fraction describe the failure environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobParams {
    work_time: Duration,
    loss_window: Option<Duration>,
    system_mtbf: Duration,
    uptime_fraction: f64,
}

impl JobParams {
    /// Creates parameters for a job needing `work_time` of failure-free
    /// computation, with no checkpointing (whole job lost on failure), no
    /// failures (infinite MTBF) and perfect uptime until configured
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `work_time` is zero.
    #[must_use]
    pub fn new(work_time: Duration) -> JobParams {
        assert!(!work_time.is_zero(), "work time must be positive");
        JobParams {
            work_time,
            loss_window: None,
            system_mtbf: Duration::from_secs(f64::INFINITY),
            uptime_fraction: 1.0,
        }
    }

    /// Sets the loss window (e.g. the checkpoint interval).
    ///
    /// # Panics
    ///
    /// Panics if `lw` is zero.
    #[must_use]
    pub fn with_loss_window(mut self, lw: Duration) -> JobParams {
        assert!(!lw.is_zero(), "loss window must be positive");
        self.loss_window = Some(lw);
        self
    }

    /// Sets the system-level mean time between work-losing failures (for a
    /// `failurescope=tier` application, the tier failure rate's mean).
    ///
    /// # Panics
    ///
    /// Panics if `mtbf` is zero.
    #[must_use]
    pub fn with_system_mtbf(mut self, mtbf: Duration) -> JobParams {
        assert!(!mtbf.is_zero(), "system MTBF must be positive");
        self.system_mtbf = mtbf;
        self
    }

    /// Sets the fraction of wall-clock time the system is up (from the
    /// availability engine).
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1]`.
    #[must_use]
    pub fn with_uptime_fraction(mut self, f: f64) -> JobParams {
        assert!(f > 0.0 && f <= 1.0, "uptime fraction must be in (0, 1]");
        self.uptime_fraction = f;
        self
    }

    /// The failure-free computation time.
    #[must_use]
    pub fn work_time(&self) -> Duration {
        self.work_time
    }

    /// The effective loss window: the configured one, or the whole job
    /// when no checkpointing is in place.
    #[must_use]
    pub fn effective_loss_window(&self) -> Duration {
        self.loss_window
            .unwrap_or(self.work_time)
            .min(self.work_time)
    }

    /// The expected wall-clock completion time.
    ///
    /// Computation time inflates by `T_lw / lw` for re-execution of lost
    /// work, and wall-clock time further inflates by the reciprocal of the
    /// uptime fraction for time spent down. With an infinite MTBF this
    /// reduces to `work_time / uptime_fraction`.
    #[must_use]
    pub fn expected_completion(&self) -> Duration {
        let computation = if self.system_mtbf.seconds().is_infinite() {
            self.work_time
        } else {
            let lw = self.effective_loss_window();
            let frac = useful_fraction(lw, self.system_mtbf);
            Duration::from_secs(self.work_time.seconds() / frac)
        };
        computation / self.uptime_fraction
    }
}

/// Scans candidate checkpoint intervals and returns the one minimizing the
/// expected completion time, together with that time.
///
/// `work_time_at(interval)` must return the failure-free computation time
/// including the checkpoint overhead at that interval (the interval trades
/// normal-operation overhead against re-execution after failures — the
/// optimum balances the two, and shrinks as failures become more frequent,
/// exactly the behaviour the paper's Fig. 7 shows).
///
/// Returns `None` when `candidates` is empty.
pub fn optimal_checkpoint_interval<F>(
    candidates: &[Duration],
    system_mtbf: Duration,
    uptime_fraction: f64,
    mut work_time_at: F,
) -> Option<(Duration, Duration)>
where
    F: FnMut(Duration) -> Duration,
{
    let mut best: Option<(Duration, Duration)> = None;
    for &interval in candidates {
        let params = JobParams::new(work_time_at(interval))
            .with_loss_window(interval)
            .with_system_mtbf(system_mtbf)
            .with_uptime_fraction(uptime_fraction);
        let t = params.expected_completion();
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((interval, t));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn failure_probability_limits() {
        let mtbf = Duration::from_hours(100.0);
        assert_eq!(failure_probability(Duration::ZERO, mtbf), 0.0);
        let p = failure_probability(Duration::from_hours(1e9), mtbf);
        assert!((p - 1.0).abs() < 1e-12);
        // lw = mtbf: P = 1 - 1/e.
        let p = failure_probability(mtbf, mtbf);
        assert!((p - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn t_lw_matches_eq1_form() {
        // Check mtbf·P/(1−P) == mtbf·(e^x − 1) numerically.
        let mtbf = Duration::from_hours(50.0);
        for lw_h in [0.01, 0.5, 5.0, 50.0, 200.0] {
            let lw = Duration::from_hours(lw_h);
            let p = failure_probability(lw, mtbf);
            let direct = mtbf.hours() * p / (1.0 - p);
            let ours = mean_time_per_loss_window(lw, mtbf).hours();
            assert!(
                (direct - ours).abs() / ours < 1e-9,
                "lw={lw_h}: {direct} vs {ours}"
            );
        }
    }

    #[test]
    fn rare_failures_make_t_lw_approach_lw() {
        let lw = Duration::from_mins(30.0);
        let mtbf = Duration::from_days(365.0);
        let t = mean_time_per_loss_window(lw, mtbf);
        assert!((t / lw - 1.0).abs() < 1e-3);
        assert!(useful_fraction(lw, mtbf) > 0.999);
    }

    #[test]
    fn frequent_failures_crush_useful_fraction() {
        let lw = Duration::from_hours(10.0);
        let mtbf = Duration::from_hours(1.0);
        assert!(useful_fraction(lw, mtbf) < 5e-4);
    }

    #[test]
    fn no_failures_reduces_to_uptime_scaling() {
        let p = JobParams::new(Duration::from_hours(100.0)).with_uptime_fraction(0.5);
        assert!((p.expected_completion().hours() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn no_checkpoint_uses_whole_job_as_window() {
        let p =
            JobParams::new(Duration::from_hours(10.0)).with_system_mtbf(Duration::from_hours(10.0));
        assert_eq!(p.effective_loss_window(), Duration::from_hours(10.0));
        // Restart-from-scratch: E[T] = mtbf (e^{T/mtbf} - 1) = 10 (e - 1).
        let expect = 10.0 * (1.0_f64.exp() - 1.0);
        assert!((p.expected_completion().hours() - expect).abs() < 1e-9);
    }

    #[test]
    fn loss_window_never_exceeds_job() {
        let p = JobParams::new(Duration::from_hours(1.0))
            .with_loss_window(Duration::from_hours(100.0))
            .with_system_mtbf(Duration::from_hours(50.0));
        assert_eq!(p.effective_loss_window(), Duration::from_hours(1.0));
    }

    #[test]
    fn checkpointing_beats_no_checkpointing_under_failures() {
        let mtbf = Duration::from_hours(20.0);
        let work = Duration::from_hours(100.0);
        let without = JobParams::new(work)
            .with_system_mtbf(mtbf)
            .expected_completion();
        let with = JobParams::new(work)
            .with_loss_window(Duration::from_mins(30.0))
            .with_system_mtbf(mtbf)
            .expected_completion();
        assert!(
            with < without / 10.0,
            "with={} without={}",
            with.hours(),
            without.hours()
        );
    }

    #[test]
    fn optimal_interval_balances_overhead_and_loss() {
        // Checkpoint cost of 1 minute per checkpoint: work time scales by
        // max(cost/cpi, 1) + ... model multiplicative overhead 1 + 1/cpi_min.
        let base = Duration::from_hours(100.0);
        let candidates: Vec<Duration> = (0..60)
            .map(|i| Duration::from_mins(1.0) * 1.3_f64.powi(i))
            .take_while(|d| *d <= Duration::from_hours(24.0))
            .collect();
        let mtbf = Duration::from_hours(10.0);
        let (best, t_best) = optimal_checkpoint_interval(&candidates, mtbf, 1.0, |cpi| {
            let overhead = 1.0 + 1.0 / cpi.minutes();
            base * overhead
        })
        .unwrap();
        // The optimum is interior: better than both extremes.
        let eval = |cpi: Duration| {
            JobParams::new(base * (1.0 + 1.0 / cpi.minutes()))
                .with_loss_window(cpi)
                .with_system_mtbf(mtbf)
                .expected_completion()
        };
        assert!(t_best <= eval(candidates[0]));
        assert!(t_best <= eval(*candidates.last().unwrap()));
        assert!(best > candidates[0] && best < *candidates.last().unwrap());
        // Classic Young approximation: optimum ~ sqrt(2 * cost * mtbf)
        // = sqrt(2 * 1min * 600min) ~ 35 min; accept a broad band.
        assert!(
            best.minutes() > 10.0 && best.minutes() < 120.0,
            "optimal interval {} min",
            best.minutes()
        );
    }

    #[test]
    fn optimal_interval_shrinks_with_failure_rate() {
        let base = Duration::from_hours(100.0);
        let candidates: Vec<Duration> = (0..80)
            .map(|i| Duration::from_mins(1.0) * 1.2_f64.powi(i))
            .take_while(|d| *d <= Duration::from_hours(24.0))
            .collect();
        let work = |cpi: Duration| base * (1.0 + 1.0 / cpi.minutes());
        let (frequent, _) =
            optimal_checkpoint_interval(&candidates, Duration::from_hours(2.0), 1.0, work).unwrap();
        let (rare, _) =
            optimal_checkpoint_interval(&candidates, Duration::from_hours(200.0), 1.0, work)
                .unwrap();
        assert!(
            frequent < rare,
            "optimal interval should shrink as failures become frequent: {} vs {}",
            frequent.minutes(),
            rare.minutes()
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(
            optimal_checkpoint_interval(&[], Duration::from_hours(1.0), 1.0, |_| {
                Duration::from_hours(1.0)
            })
            .is_none()
        );
    }

    #[test]
    #[should_panic(expected = "uptime fraction")]
    fn zero_uptime_panics() {
        let _ = JobParams::new(Duration::from_hours(1.0)).with_uptime_fraction(0.0);
    }

    proptest! {
        #[test]
        fn completion_time_is_at_least_work_time(
            work_h in 0.1_f64..1e4,
            lw_mins in 1.0_f64..1000.0,
            mtbf_h in 0.5_f64..1e5,
            uptime in 0.5_f64..1.0,
        ) {
            let p = JobParams::new(Duration::from_hours(work_h))
                .with_loss_window(Duration::from_mins(lw_mins))
                .with_system_mtbf(Duration::from_hours(mtbf_h))
                .with_uptime_fraction(uptime);
            prop_assert!(p.expected_completion() >= p.work_time());
        }

        #[test]
        fn completion_monotone_in_mtbf(
            work_h in 1.0_f64..1e3,
            lw_mins in 1.0_f64..500.0,
            mtbf_h in 1.0_f64..1e4,
        ) {
            let mk = |mtbf: f64| {
                JobParams::new(Duration::from_hours(work_h))
                    .with_loss_window(Duration::from_mins(lw_mins))
                    .with_system_mtbf(Duration::from_hours(mtbf))
                    .expected_completion()
            };
            // More reliable system -> no slower completion.
            prop_assert!(mk(mtbf_h * 2.0) <= mk(mtbf_h));
        }

        #[test]
        fn useful_fraction_in_unit_interval(
            lw_mins in 0.1_f64..1e5,
            mtbf_h in 0.1_f64..1e5,
        ) {
            let f = useful_fraction(
                Duration::from_mins(lw_mins),
                Duration::from_hours(mtbf_h),
            );
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }
}
