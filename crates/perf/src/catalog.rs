//! Name → function registry resolving the symbolic references of service
//! models.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aved_model::{PerfRef, Service};

use crate::{CheckpointOverhead, PerfFunction};

/// Error produced when resolving a symbolic performance reference fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogError {
    name: String,
    kind: &'static str,
}

impl CatalogError {
    fn new(name: &str, kind: &'static str) -> CatalogError {
        CatalogError {
            name: name.to_owned(),
            kind,
        }
    }

    /// The unresolved name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no {} function named {:?} in catalog",
            self.kind, self.name
        )
    }
}

impl Error for CatalogError {}

/// A service tier references a function its catalog cannot resolve.
///
/// Produced by [`Catalog::validate_service`]. Carries the name of the
/// offending tier; the unresolved reference itself is the
/// [`source`](Error::source), so walking the error chain yields both the
/// *where* (tier) and the *what* (missing function name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageError {
    tier: String,
    source: CatalogError,
}

impl CoverageError {
    /// The tier whose reference failed to resolve.
    #[must_use]
    pub fn tier(&self) -> &str {
        &self.tier
    }
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tier {:?} references a function missing from the catalog",
            self.tier
        )
    }
}

impl Error for CoverageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// A registry of performance and checkpoint-overhead functions.
///
/// The service model references functions by name (the paper's `.dat`
/// files); the engine resolves them through a catalog. The paper's own
/// functions are available via [`crate::paper::catalog`].
///
/// # Examples
///
/// ```
/// use aved_perf::{Catalog, PerfFunction};
/// use aved_model::PerfRef;
///
/// let mut catalog = Catalog::new();
/// catalog.insert_perf("perfX.dat", PerfFunction::linear(50.0));
/// let f = catalog.resolve_perf(&PerfRef::Named("perfX.dat".into()))?;
/// assert_eq!(f.throughput(2), 100.0);
/// // Constants resolve without catalog entries.
/// let c = catalog.resolve_perf(&PerfRef::Const(10_000.0))?;
/// assert_eq!(c.throughput(1), 10_000.0);
/// # Ok::<(), aved_perf::CatalogError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    perf: HashMap<String, PerfFunction>,
    mperf: HashMap<String, CheckpointOverhead>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a performance function under a name.
    pub fn insert_perf<N: Into<String>>(&mut self, name: N, f: PerfFunction) -> &mut Catalog {
        self.perf.insert(name.into(), f);
        self
    }

    /// Registers a checkpoint-overhead function under a name.
    pub fn insert_mperf<N: Into<String>>(
        &mut self,
        name: N,
        f: CheckpointOverhead,
    ) -> &mut Catalog {
        self.mperf.insert(name.into(), f);
        self
    }

    /// Looks up a performance function by name.
    #[must_use]
    pub fn perf(&self, name: &str) -> Option<&PerfFunction> {
        self.perf.get(name)
    }

    /// Looks up a checkpoint-overhead function by name.
    #[must_use]
    pub fn mperf(&self, name: &str) -> Option<&CheckpointOverhead> {
        self.mperf.get(name)
    }

    /// Resolves a [`PerfRef`] from a service model to a concrete function.
    ///
    /// `PerfRef::Const` needs no catalog entry; `PerfRef::Named` must be
    /// registered.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for an unregistered name.
    pub fn resolve_perf(&self, perf_ref: &PerfRef) -> Result<PerfFunction, CatalogError> {
        match perf_ref {
            PerfRef::Const(v) => Ok(PerfFunction::constant(*v)),
            PerfRef::Named(name) => self
                .perf(name)
                .cloned()
                .ok_or_else(|| CatalogError::new(name, "performance")),
        }
    }

    /// Resolves a named mperformance function.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for an unregistered name.
    pub fn resolve_mperf(&self, name: &str) -> Result<CheckpointOverhead, CatalogError> {
        self.mperf(name)
            .copied()
            .ok_or_else(|| CatalogError::new(name, "mperformance"))
    }

    /// Verifies that this catalog resolves every performance and
    /// mperformance reference `service` makes, before any search spends
    /// time on it.
    ///
    /// # Errors
    ///
    /// Returns [`CoverageError`] naming the first tier whose reference
    /// fails, with the unresolved [`CatalogError`] as its source.
    pub fn validate_service(&self, service: &Service) -> Result<(), CoverageError> {
        let blame = |tier: &str| {
            let tier = tier.to_owned();
            move |source| CoverageError { tier, source }
        };
        for tier in service.tiers() {
            for opt in tier.options() {
                self.resolve_perf(opt.performance())
                    .map_err(blame(tier.name().as_str()))?;
                for mu in opt.mechanisms() {
                    if let Some(name) = mu.mperformance() {
                        self.resolve_mperf(name)
                            .map_err(blame(tier.name().as_str()))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of registered performance functions.
    #[must_use]
    pub fn n_perf(&self) -> usize {
        self.perf.len()
    }

    /// Number of registered mperformance functions.
    #[must_use]
    pub fn n_mperf(&self) -> usize {
        self.mperf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_resolve() {
        let mut c = Catalog::new();
        c.insert_perf("p", PerfFunction::linear(1.0));
        c.insert_mperf("m", CheckpointOverhead::new(10.0, 30, 3.0, 20.0));
        assert!(c.perf("p").is_some());
        assert!(c.mperf("m").is_some());
        assert_eq!(c.n_perf(), 1);
        assert_eq!(c.n_mperf(), 1);
        assert!(c.resolve_perf(&PerfRef::Named("p".into())).is_ok());
        assert!(c.resolve_mperf("m").is_ok());
    }

    #[test]
    fn missing_names_error_with_context() {
        let c = Catalog::new();
        let err = c
            .resolve_perf(&PerfRef::Named("ghost.dat".into()))
            .unwrap_err();
        assert_eq!(err.name(), "ghost.dat");
        assert!(err.to_string().contains("ghost.dat"));
        assert!(c.resolve_mperf("ghost").is_err());
    }

    #[test]
    fn const_ref_needs_no_entry() {
        let c = Catalog::new();
        let f = c.resolve_perf(&PerfRef::Const(5.0)).unwrap();
        assert_eq!(f.throughput(9), 5.0);
    }

    fn one_tier_service(perf: PerfRef, mperf: Option<String>) -> Service {
        use aved_model::{FailureScope, MechanismUse, NActiveSpec, ResourceOption, Sizing, Tier};

        let mut opt = ResourceOption::new(
            "rX",
            Sizing::Dynamic,
            FailureScope::Resource,
            NActiveSpec::Arithmetic {
                min: 1,
                max: 4,
                step: 1,
            },
            perf,
        );
        if let Some(name) = mperf {
            opt = opt.with_mechanism(MechanismUse::new("ckpt", Some(name)));
        }
        Service::new("svc").with_tier(Tier::new("web").with_option(opt))
    }

    #[test]
    fn coverage_errors_name_tier_and_chain_the_missing_reference() {
        let service = one_tier_service(
            PerfRef::Named("ghost.dat".into()),
            Some("mghost.dat".into()),
        );

        let empty = Catalog::new();
        let err = empty.validate_service(&service).unwrap_err();
        assert_eq!(err.tier(), "web");
        assert!(err.to_string().contains("web"), "{err}");
        let cause = Error::source(&err).expect("missing reference is the cause");
        assert!(cause.to_string().contains("ghost.dat"), "{cause}");

        let mut perf_only = Catalog::new();
        perf_only.insert_perf("ghost.dat", PerfFunction::linear(1.0));
        let err = perf_only.validate_service(&service).unwrap_err();
        assert!(
            Error::source(&err).unwrap().to_string().contains("mghost"),
            "mperformance references are covered too: {err}"
        );
    }

    #[test]
    fn coverage_accepts_fully_resolvable_services() {
        let service = one_tier_service(PerfRef::Const(100.0), None);
        Catalog::new().validate_service(&service).unwrap();
    }
}
