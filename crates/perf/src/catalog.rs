//! Name → function registry resolving the symbolic references of service
//! models.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aved_model::PerfRef;

use crate::{CheckpointOverhead, PerfFunction};

/// Error produced when resolving a symbolic performance reference fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogError {
    name: String,
    kind: &'static str,
}

impl CatalogError {
    fn new(name: &str, kind: &'static str) -> CatalogError {
        CatalogError {
            name: name.to_owned(),
            kind,
        }
    }

    /// The unresolved name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no {} function named {:?} in catalog",
            self.kind, self.name
        )
    }
}

impl Error for CatalogError {}

/// A registry of performance and checkpoint-overhead functions.
///
/// The service model references functions by name (the paper's `.dat`
/// files); the engine resolves them through a catalog. The paper's own
/// functions are available via [`crate::paper::catalog`].
///
/// # Examples
///
/// ```
/// use aved_perf::{Catalog, PerfFunction};
/// use aved_model::PerfRef;
///
/// let mut catalog = Catalog::new();
/// catalog.insert_perf("perfX.dat", PerfFunction::linear(50.0));
/// let f = catalog.resolve_perf(&PerfRef::Named("perfX.dat".into()))?;
/// assert_eq!(f.throughput(2), 100.0);
/// // Constants resolve without catalog entries.
/// let c = catalog.resolve_perf(&PerfRef::Const(10_000.0))?;
/// assert_eq!(c.throughput(1), 10_000.0);
/// # Ok::<(), aved_perf::CatalogError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    perf: HashMap<String, PerfFunction>,
    mperf: HashMap<String, CheckpointOverhead>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a performance function under a name.
    pub fn insert_perf<N: Into<String>>(&mut self, name: N, f: PerfFunction) -> &mut Catalog {
        self.perf.insert(name.into(), f);
        self
    }

    /// Registers a checkpoint-overhead function under a name.
    pub fn insert_mperf<N: Into<String>>(
        &mut self,
        name: N,
        f: CheckpointOverhead,
    ) -> &mut Catalog {
        self.mperf.insert(name.into(), f);
        self
    }

    /// Looks up a performance function by name.
    #[must_use]
    pub fn perf(&self, name: &str) -> Option<&PerfFunction> {
        self.perf.get(name)
    }

    /// Looks up a checkpoint-overhead function by name.
    #[must_use]
    pub fn mperf(&self, name: &str) -> Option<&CheckpointOverhead> {
        self.mperf.get(name)
    }

    /// Resolves a [`PerfRef`] from a service model to a concrete function.
    ///
    /// `PerfRef::Const` needs no catalog entry; `PerfRef::Named` must be
    /// registered.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for an unregistered name.
    pub fn resolve_perf(&self, perf_ref: &PerfRef) -> Result<PerfFunction, CatalogError> {
        match perf_ref {
            PerfRef::Const(v) => Ok(PerfFunction::constant(*v)),
            PerfRef::Named(name) => self
                .perf(name)
                .cloned()
                .ok_or_else(|| CatalogError::new(name, "performance")),
        }
    }

    /// Resolves a named mperformance function.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for an unregistered name.
    pub fn resolve_mperf(&self, name: &str) -> Result<CheckpointOverhead, CatalogError> {
        self.mperf(name)
            .copied()
            .ok_or_else(|| CatalogError::new(name, "mperformance"))
    }

    /// Number of registered performance functions.
    #[must_use]
    pub fn n_perf(&self) -> usize {
        self.perf.len()
    }

    /// Number of registered mperformance functions.
    #[must_use]
    pub fn n_mperf(&self) -> usize {
        self.mperf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_resolve() {
        let mut c = Catalog::new();
        c.insert_perf("p", PerfFunction::linear(1.0));
        c.insert_mperf("m", CheckpointOverhead::new(10.0, 30, 3.0, 20.0));
        assert!(c.perf("p").is_some());
        assert!(c.mperf("m").is_some());
        assert_eq!(c.n_perf(), 1);
        assert_eq!(c.n_mperf(), 1);
        assert!(c.resolve_perf(&PerfRef::Named("p".into())).is_ok());
        assert!(c.resolve_mperf("m").is_ok());
    }

    #[test]
    fn missing_names_error_with_context() {
        let c = Catalog::new();
        let err = c
            .resolve_perf(&PerfRef::Named("ghost.dat".into()))
            .unwrap_err();
        assert_eq!(err.name(), "ghost.dat");
        assert!(err.to_string().contains("ghost.dat"));
        assert!(c.resolve_mperf("ghost").is_err());
    }

    #[test]
    fn const_ref_needs_no_entry() {
        let c = Catalog::new();
        let f = c.resolve_perf(&PerfRef::Const(5.0)).unwrap();
        assert_eq!(f.throughput(9), 5.0);
    }
}
