//! The concrete performance functions of the paper's Table 1.
//!
//! Table 1 gives closed forms for the application tier (`rC`/`rD` at 200
//! units per node, `rE`/`rF` at 1600) and the scientific computation tier
//! (`rH` and `rI` with saturating `a·n/(1+0.004·n)` scaling), plus the
//! checkpoint `mperformance` functions for `rH` and `rI`.
//!
//! The paper's `.dat` file names for the *web* tier (`perfA.dat`,
//! `perfB.dat`) are not tabulated in Table 1 — the examples never exercise
//! the web tier. We supply linear functions with the same machineA:machineB
//! per-node ratio as the application tier (1:8) so the full e-commerce
//! model is evaluable; this substitution is recorded in `DESIGN.md`.

use crate::{Catalog, CheckpointOverhead, PerfFunction};

/// `perfA.dat` (web tier on machineA/linux): assumed 100 units/node.
#[must_use]
pub fn perf_a() -> PerfFunction {
    PerfFunction::linear(100.0)
}

/// `perfB.dat` (web tier on machineB/unix): assumed 800 units/node.
#[must_use]
pub fn perf_b() -> PerfFunction {
    PerfFunction::linear(800.0)
}

/// `perfC.dat` — Table 1: application tier on rC, `200·n`.
#[must_use]
pub fn perf_c() -> PerfFunction {
    PerfFunction::linear(200.0)
}

/// `perfD.dat` — Table 1: application tier on rD, `200·n`.
#[must_use]
pub fn perf_d() -> PerfFunction {
    PerfFunction::linear(200.0)
}

/// `perfE.dat` — Table 1: application tier on rE, `1600·n`.
#[must_use]
pub fn perf_e() -> PerfFunction {
    PerfFunction::linear(1600.0)
}

/// `perfF.dat` — Table 1: application tier on rF, `1600·n`.
#[must_use]
pub fn perf_f() -> PerfFunction {
    PerfFunction::linear(1600.0)
}

/// `perfH.dat` — Table 1: computation tier on rH, `(10·n)/(1+0.004·n)`.
#[must_use]
pub fn perf_h() -> PerfFunction {
    PerfFunction::saturating(10.0, 0.004)
}

/// `perfI.dat` — Table 1: computation tier on rI, `(100·n)/(1+0.004·n)`.
#[must_use]
pub fn perf_i() -> PerfFunction {
    PerfFunction::saturating(100.0, 0.004)
}

/// `mperfH.dat` — Table 1: checkpoint overhead on rH.
///
/// Central: `max(10/cpi, 100%)` for `n < 30`, `max(n/(3·cpi), 100%)` past
/// the central-storage bottleneck; peer: `max(20/cpi, 100%)`.
#[must_use]
pub fn mperf_h() -> CheckpointOverhead {
    CheckpointOverhead::new(10.0, 30, 3.0, 20.0)
}

/// `mperfI.dat` — Table 1: checkpoint overhead on rI.
///
/// Central: `max(5/cpi, 100%)` for `n < 30`, `max(n/(6·cpi), 100%)` past
/// the bottleneck; peer: `max(100/cpi, 100%)`.
#[must_use]
pub fn mperf_i() -> CheckpointOverhead {
    CheckpointOverhead::new(5.0, 30, 6.0, 100.0)
}

/// A catalog with every Table 1 function registered under the name the
/// paper's service models use.
///
/// # Examples
///
/// ```
/// use aved_model::PerfRef;
///
/// let catalog = aved_perf::paper::catalog();
/// let perf_c = catalog.resolve_perf(&PerfRef::Named("perfC.dat".into()))?;
/// assert_eq!(perf_c.throughput(5), 1000.0);
/// # Ok::<(), aved_perf::CatalogError>(())
/// ```
#[must_use]
pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert_perf("perfA.dat", perf_a())
        .insert_perf("perfB.dat", perf_b())
        .insert_perf("perfC.dat", perf_c())
        .insert_perf("perfD.dat", perf_d())
        .insert_perf("perfE.dat", perf_e())
        .insert_perf("perfF.dat", perf_f())
        .insert_perf("perfH.dat", perf_h())
        .insert_perf("perfI.dat", perf_i())
        .insert_mperf("mperfH.dat", mperf_h())
        .insert_mperf("mperfI.dat", mperf_i());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StorageLocation;
    use aved_units::Duration;

    #[test]
    fn application_tier_values_match_table1() {
        assert_eq!(perf_c().throughput(1), 200.0);
        assert_eq!(perf_d().throughput(3), 600.0);
        assert_eq!(perf_e().throughput(1), 1600.0);
        assert_eq!(perf_f().throughput(2), 3200.0);
    }

    #[test]
    fn computation_tier_values_match_table1() {
        // (10·50)/(1+0.2) and (100·50)/(1+0.2)
        assert!((perf_h().throughput(50) - 500.0 / 1.2).abs() < 1e-9);
        assert!((perf_i().throughput(50) - 5000.0 / 1.2).abs() < 1e-9);
    }

    #[test]
    fn machine_b_has_better_cost_performance_only_when_sublinear() {
        // Per unit of load, rC costs 2640+1700 per 200 units; rE costs
        // 93500+200+1700 per 1600 units: machineA wins linearly (paper's
        // Fig. 6 observation).
        let cost_per_load_a = (2640.0 + 1700.0) / perf_c().throughput(1);
        let cost_per_load_b = (93_500.0 + 200.0 + 1700.0) / perf_e().throughput(1);
        assert!(cost_per_load_a < cost_per_load_b);
    }

    #[test]
    fn rh_and_ri_saturate_at_same_node_count_scale() {
        // Both share b = 0.004, so rI is a constant 10x faster.
        for n in [1, 10, 100, 1000] {
            let ratio = perf_i().throughput(n) / perf_h().throughput(n);
            assert!((ratio - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn catalog_registers_all_names() {
        let c = catalog();
        for name in [
            "perfA.dat",
            "perfB.dat",
            "perfC.dat",
            "perfD.dat",
            "perfE.dat",
            "perfF.dat",
            "perfH.dat",
            "perfI.dat",
        ] {
            assert!(c.perf(name).is_some(), "{name} missing");
        }
        for name in ["mperfH.dat", "mperfI.dat"] {
            assert!(c.mperf(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn mperf_values_match_table1_examples() {
        let cpi = Duration::from_mins(2.0);
        // Smooth overhead form (see OverheadForm): 1 + cost/cpi.
        // rH central, small n: 1 + 10/2 = 6x.
        assert_eq!(mperf_h().multiplier(StorageLocation::Central, cpi, 10), 6.0);
        // rI peer: 1 + 100/2 = 51x.
        assert_eq!(mperf_i().multiplier(StorageLocation::Peer, cpi, 10), 51.0);
        // Per-checkpoint costs are Table 1's factors verbatim.
        assert_eq!(mperf_h().cost_minutes(StorageLocation::Central, 10), 10.0);
        assert_eq!(mperf_i().cost_minutes(StorageLocation::Peer, 10), 100.0);
    }
}
