//! Checkpoint-overhead (`mperformance`) functions.

use aved_units::Duration;
use serde::{Deserialize, Serialize};

/// Where checkpoint state is stored (paper §5.2).
///
/// `Central` writes application state to a shared, highly-reliable file
/// server — cheap per node but a bottleneck at scale. `Peer` mirrors state
/// to the local disk and a peer node's disk — higher fixed per-node
/// overhead, but no shared bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageLocation {
    /// Network-attached central storage.
    Central,
    /// Local + peer-node disk.
    Peer,
}

impl std::str::FromStr for StorageLocation {
    type Err = String;

    fn from_str(s: &str) -> Result<StorageLocation, String> {
        match s {
            "central" => Ok(StorageLocation::Central),
            "peer" => Ok(StorageLocation::Peer),
            other => Err(format!("unknown storage location {other:?}")),
        }
    }
}

impl std::fmt::Display for StorageLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageLocation::Central => "central",
            StorageLocation::Peer => "peer",
        })
    }
}

/// How the per-checkpoint cost is turned into an execution-time multiplier.
///
/// The paper's Table 1 writes `mperformance = max(c/cpi, 100%)`. Read
/// literally (`PiecewiseMax`), overhead vanishes entirely once the interval
/// exceeds the per-checkpoint cost `c` — which pins the optimal interval to
/// the knee at `cpi = c` and cannot reproduce Fig. 7's rising-interval
/// trend. The physical model it abbreviates is `Smooth`: every `cpi`
/// minutes of useful work is followed by `c` minutes of checkpointing, so
/// wall time scales by `1 + c/cpi` — a curve whose two asymptotes are
/// exactly Table 1's `max` envelope, and whose interaction with the loss
/// window yields the classic optimum `√(2·c·MTBF)` that grows as failures
/// become rarer, precisely the behaviour of Fig. 7. `Smooth` is the
/// default; `PiecewiseMax` is kept for the literal-reading ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OverheadForm {
    /// `1 + c/cpi`: the physical cost model (default).
    #[default]
    Smooth,
    /// `max(c/cpi, 1)`: Table 1 read literally.
    PiecewiseMax,
}

/// The execution-time multiplier of a checkpoint mechanism, parameterized
/// as in the paper's Table 1.
///
/// The per-checkpoint cost `c` (in minutes) depends on the storage
/// location and the node count: for central storage it is a constant below
/// the bottleneck threshold and grows linearly with the node count above
/// it (the shared file server saturates); for peer storage it is a larger
/// node-count-independent constant.
///
/// # Examples
///
/// ```
/// use aved_perf::{CheckpointOverhead, StorageLocation};
/// use aved_units::Duration;
///
/// // Table 1, resource rH: central cost 10 (n<30), n/3 after; peer 20.
/// let mperf = CheckpointOverhead::new(10.0, 30, 3.0, 20.0);
/// let cpi = Duration::from_mins(20.0);
/// // Smooth form: 1 + 10/20 = 1.5x for central, 1 + 20/20 = 2x for peer.
/// assert_eq!(mperf.multiplier(StorageLocation::Central, cpi, 10), 1.5);
/// assert_eq!(mperf.multiplier(StorageLocation::Peer, cpi, 10), 2.0);
/// // Large n: the central store becomes the bottleneck (cost 60/3 = 20).
/// assert_eq!(mperf.multiplier(StorageLocation::Central, cpi, 60), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointOverhead {
    central_base: f64,
    central_threshold: u32,
    central_divisor: f64,
    peer_base: f64,
    form: OverheadForm,
}

impl CheckpointOverhead {
    /// Creates an overhead function (smooth form).
    ///
    /// * `central_base` — central-storage per-checkpoint cost in minutes,
    ///   for `n < central_threshold` nodes;
    /// * `central_threshold` — node count where the central store
    ///   saturates;
    /// * `central_divisor` — past the threshold the cost is
    ///   `n / central_divisor` minutes;
    /// * `peer_base` — peer-storage per-checkpoint cost in minutes, for
    ///   any `n`.
    ///
    /// # Panics
    ///
    /// Panics if any factor is non-positive or the threshold is zero.
    #[must_use]
    pub fn new(
        central_base: f64,
        central_threshold: u32,
        central_divisor: f64,
        peer_base: f64,
    ) -> CheckpointOverhead {
        assert!(central_base > 0.0, "central base cost must be positive");
        assert!(central_threshold > 0, "threshold must be positive");
        assert!(central_divisor > 0.0, "central divisor must be positive");
        assert!(peer_base > 0.0, "peer base cost must be positive");
        CheckpointOverhead {
            central_base,
            central_threshold,
            central_divisor,
            peer_base,
            form: OverheadForm::Smooth,
        }
    }

    /// Selects the overhead form (see [`OverheadForm`]).
    #[must_use]
    pub fn with_form(mut self, form: OverheadForm) -> CheckpointOverhead {
        self.form = form;
        self
    }

    /// The overhead form in effect.
    #[must_use]
    pub fn form(&self) -> OverheadForm {
        self.form
    }

    /// The per-checkpoint cost in minutes for the given storage location
    /// and node count.
    #[must_use]
    pub fn cost_minutes(&self, location: StorageLocation, n: u32) -> f64 {
        match location {
            StorageLocation::Central => {
                if n < self.central_threshold {
                    self.central_base
                } else {
                    f64::from(n) / self.central_divisor
                }
            }
            StorageLocation::Peer => self.peer_base,
        }
    }

    /// The execution-time multiplier (`>= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn multiplier(&self, location: StorageLocation, interval: Duration, n: u32) -> f64 {
        assert!(!interval.is_zero(), "checkpoint interval must be positive");
        let cpi = interval.minutes();
        let cost = self.cost_minutes(location, n);
        match self.form {
            OverheadForm::Smooth => 1.0 + cost / cpi,
            OverheadForm::PiecewiseMax => (cost / cpi).max(1.0),
        }
    }

    /// The fraction of wall-clock time doing useful work under this
    /// overhead (`1 / multiplier`).
    #[must_use]
    pub fn efficiency(&self, location: StorageLocation, interval: Duration, n: u32) -> f64 {
        1.0 / self.multiplier(location, interval, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Table 1's mperf for rH.
    fn mperf_h() -> CheckpointOverhead {
        CheckpointOverhead::new(10.0, 30, 3.0, 20.0)
    }

    /// Table 1's mperf for rI.
    fn mperf_i() -> CheckpointOverhead {
        CheckpointOverhead::new(5.0, 30, 6.0, 100.0)
    }

    #[test]
    fn per_checkpoint_costs_match_table1() {
        assert_eq!(mperf_h().cost_minutes(StorageLocation::Central, 29), 10.0);
        assert_eq!(mperf_h().cost_minutes(StorageLocation::Central, 90), 30.0);
        assert_eq!(mperf_h().cost_minutes(StorageLocation::Peer, 500), 20.0);
        assert_eq!(mperf_i().cost_minutes(StorageLocation::Central, 29), 5.0);
        assert_eq!(mperf_i().cost_minutes(StorageLocation::Central, 90), 15.0);
        assert_eq!(mperf_i().cost_minutes(StorageLocation::Peer, 500), 100.0);
    }

    #[test]
    fn smooth_multiplier_values() {
        let cpi = Duration::from_mins(2.0);
        // rH central, small n: 1 + 10/2 = 6x.
        assert_eq!(mperf_h().multiplier(StorageLocation::Central, cpi, 10), 6.0);
        // rI peer: 1 + 100/2 = 51x.
        assert_eq!(mperf_i().multiplier(StorageLocation::Peer, cpi, 10), 51.0);
    }

    #[test]
    fn piecewise_form_matches_table1_literal_reading() {
        let m = mperf_h().with_form(OverheadForm::PiecewiseMax);
        let short = Duration::from_mins(2.0);
        let long = Duration::from_hours(24.0);
        assert_eq!(m.multiplier(StorageLocation::Central, short, 10), 5.0);
        assert_eq!(m.multiplier(StorageLocation::Central, long, 10), 1.0);
        assert_eq!(m.form(), OverheadForm::PiecewiseMax);
        assert_eq!(mperf_h().form(), OverheadForm::Smooth);
    }

    #[test]
    fn smooth_form_approaches_piecewise_asymptotes() {
        let smooth = mperf_h();
        let pw = mperf_h().with_form(OverheadForm::PiecewiseMax);
        // Very short intervals: both ~ cost/cpi.
        let tiny = Duration::from_secs(6.0); // 0.1 min
        let (a, b) = (
            smooth.multiplier(StorageLocation::Peer, tiny, 1),
            pw.multiplier(StorageLocation::Peer, tiny, 1),
        );
        assert!((a - b).abs() / b < 0.01);
        // Very long intervals: both ~ 1.
        let huge = Duration::from_hours(100.0);
        let (a, b) = (
            smooth.multiplier(StorageLocation::Peer, huge, 1),
            pw.multiplier(StorageLocation::Peer, huge, 1),
        );
        assert!((a - b).abs() < 0.01);
    }

    #[test]
    fn long_intervals_have_negligible_overhead() {
        let cpi = Duration::from_hours(24.0);
        let m = mperf_h().multiplier(StorageLocation::Central, cpi, 10);
        assert!(m < 1.01, "got {m}");
    }

    #[test]
    fn crossover_central_beats_peer_at_small_n() {
        // Per-checkpoint cost: central 10 vs peer 20 below threshold;
        // central n/3 vs peer 20 above -> crossover at n = 60.
        let m = mperf_h();
        let cpi = Duration::from_mins(1.0);
        for n in [1, 30, 59] {
            assert!(
                m.multiplier(StorageLocation::Central, cpi, n)
                    <= m.multiplier(StorageLocation::Peer, cpi, n)
            );
        }
        for n in [61, 100, 500] {
            assert!(
                m.multiplier(StorageLocation::Central, cpi, n)
                    > m.multiplier(StorageLocation::Peer, cpi, n)
            );
        }
    }

    #[test]
    fn peer_cost_is_independent_of_n() {
        let cpi = Duration::from_mins(10.0);
        let at_1 = mperf_h().multiplier(StorageLocation::Peer, cpi, 1);
        for n in [30, 100, 500] {
            assert_eq!(mperf_h().multiplier(StorageLocation::Peer, cpi, n), at_1);
        }
    }

    #[test]
    fn efficiency_is_reciprocal() {
        let m = mperf_h();
        let cpi = Duration::from_mins(5.0);
        let mult = m.multiplier(StorageLocation::Central, cpi, 10);
        assert!((m.efficiency(StorageLocation::Central, cpi, 10) - 1.0 / mult).abs() < 1e-12);
    }

    #[test]
    fn storage_location_parsing() {
        assert_eq!(
            "central".parse::<StorageLocation>(),
            Ok(StorageLocation::Central)
        );
        assert_eq!("peer".parse::<StorageLocation>(), Ok(StorageLocation::Peer));
        assert!("cloud".parse::<StorageLocation>().is_err());
        assert_eq!(StorageLocation::Central.to_string(), "central");
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = mperf_h().multiplier(StorageLocation::Peer, Duration::ZERO, 1);
    }

    proptest! {
        #[test]
        fn multiplier_at_least_one(
            cpi_mins in 0.1_f64..10_000.0,
            n in 1_u32..1000,
            central in prop::bool::ANY,
            piecewise in prop::bool::ANY,
        ) {
            let loc = if central { StorageLocation::Central } else { StorageLocation::Peer };
            let form = if piecewise { OverheadForm::PiecewiseMax } else { OverheadForm::Smooth };
            let m = mperf_h().with_form(form).multiplier(loc, Duration::from_mins(cpi_mins), n);
            prop_assert!(m >= 1.0);
        }

        #[test]
        fn multiplier_decreases_with_interval(
            n in 1_u32..1000,
            cpi_a in 0.1_f64..100.0,
            factor in 1.1_f64..10.0,
        ) {
            let m = mperf_h();
            let short = m.multiplier(StorageLocation::Central, Duration::from_mins(cpi_a), n);
            let long = m.multiplier(
                StorageLocation::Central,
                Duration::from_mins(cpi_a * factor),
                n,
            );
            prop_assert!(long <= short);
        }

        #[test]
        fn smooth_dominates_piecewise(
            cpi_mins in 0.1_f64..10_000.0,
            n in 1_u32..1000,
        ) {
            // 1 + c/cpi >= max(c/cpi, 1) always.
            let cpi = Duration::from_mins(cpi_mins);
            let s = mperf_h().multiplier(StorageLocation::Central, cpi, n);
            let p = mperf_h()
                .with_form(OverheadForm::PiecewiseMax)
                .multiplier(StorageLocation::Central, cpi, n);
            prop_assert!(s >= p);
        }
    }
}
