//! Tier throughput as a function of the active resource count.

use serde::{Deserialize, Serialize};

/// Throughput (service-specific units of work per unit time) as a function
/// of the number of active resources.
///
/// # Examples
///
/// ```
/// use aved_perf::PerfFunction;
///
/// // The paper's application tier on resource rC: 200 units per node.
/// let perf = PerfFunction::linear(200.0);
/// assert_eq!(perf.throughput(5), 1000.0);
/// assert_eq!(perf.min_active_for(1000.0), Some(5));
/// assert_eq!(perf.min_active_for(1001.0), Some(6));
///
/// // The scientific application on rH: (10·n)/(1+0.004·n), sublinear.
/// let sci = PerfFunction::saturating(10.0, 0.004);
/// assert!(sci.throughput(60) < 600.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerfFunction {
    /// `per_node · n`: ideal linear scaling.
    Linear {
        /// Throughput of a single resource.
        per_node: f64,
    },
    /// `a·n / (1 + b·n)`: sublinear scaling with a saturation asymptote at
    /// `a/b` (the paper's scientific-application shape).
    Saturating {
        /// Per-node throughput at small `n`.
        a: f64,
        /// Saturation coefficient.
        b: f64,
    },
    /// Piecewise-linear interpolation of measured `(n, throughput)` points,
    /// constant beyond the last point (the `.dat`-file form the paper's
    /// tooling consumed).
    Table {
        /// Sample points sorted by increasing `n`; throughput must be
        /// non-decreasing for [`min_active_for`](Self::min_active_for) to
        /// be meaningful.
        points: Vec<(u32, f64)>,
    },
    /// Throughput independent of `n` (the paper's database tier:
    /// `performance=10000`).
    Const {
        /// The constant throughput.
        value: f64,
    },
}

impl PerfFunction {
    /// Creates a linear function.
    ///
    /// # Panics
    ///
    /// Panics if `per_node` is not positive.
    #[must_use]
    pub fn linear(per_node: f64) -> PerfFunction {
        assert!(per_node > 0.0, "per-node throughput must be positive");
        PerfFunction::Linear { per_node }
    }

    /// Creates a saturating function `a·n/(1+b·n)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not positive or `b` is negative.
    #[must_use]
    pub fn saturating(a: f64, b: f64) -> PerfFunction {
        assert!(a > 0.0, "saturating coefficient a must be positive");
        assert!(b >= 0.0, "saturating coefficient b must be non-negative");
        PerfFunction::Saturating { a, b }
    }

    /// Creates a tabulated function.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not strictly increasing in `n`.
    #[must_use]
    pub fn table(points: Vec<(u32, f64)>) -> PerfFunction {
        assert!(!points.is_empty(), "table needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "table points must be strictly increasing in n"
        );
        PerfFunction::Table { points }
    }

    /// Creates a constant function.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not positive.
    #[must_use]
    pub fn constant(value: f64) -> PerfFunction {
        assert!(value > 0.0, "constant throughput must be positive");
        PerfFunction::Const { value }
    }

    /// The tier throughput with `n` active resources.
    ///
    /// `n = 0` yields zero throughput for all function shapes except
    /// `Const` (a constant function models a tier whose single resource's
    /// performance is not the bottleneck; with zero resources the tier is
    /// down, which availability handles separately).
    #[must_use]
    pub fn throughput(&self, n: u32) -> f64 {
        let nf = f64::from(n);
        match self {
            PerfFunction::Linear { per_node } => per_node * nf,
            PerfFunction::Saturating { a, b } => a * nf / (1.0 + b * nf),
            PerfFunction::Table { points } => {
                if n == 0 {
                    return 0.0;
                }
                match points.binary_search_by_key(&n, |&(pn, _)| pn) {
                    Ok(i) => points[i].1,
                    Err(0) => {
                        // Below the first sample: interpolate from (0, 0).
                        let (n1, t1) = points[0];
                        t1 * nf / f64::from(n1)
                    }
                    Err(i) if i == points.len() => points[points.len() - 1].1,
                    Err(i) => {
                        let (n0, t0) = points[i - 1];
                        let (n1, t1) = points[i];
                        let frac = (nf - f64::from(n0)) / f64::from(n1 - n0);
                        t0 + (t1 - t0) * frac
                    }
                }
            }
            PerfFunction::Const { value } => *value,
        }
    }

    /// The supremum of achievable throughput over all `n` (used to reject
    /// infeasible loads early).
    #[must_use]
    pub fn max_throughput(&self) -> f64 {
        match self {
            PerfFunction::Linear { .. } => f64::INFINITY,
            PerfFunction::Saturating { a, b } => {
                if *b == 0.0 {
                    f64::INFINITY
                } else {
                    a / b
                }
            }
            PerfFunction::Table { points } => points
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::NEG_INFINITY, f64::max),
            PerfFunction::Const { value } => *value,
        }
    }

    /// The smallest `n` with `throughput(n) >= load` — the paper's
    /// "minimum number of resources required to meet the performance
    /// requirement in the absence of any failures".
    ///
    /// Returns `None` when no finite `n` achieves the load (sublinear
    /// saturation below the requirement, or a constant function under it).
    #[must_use]
    pub fn min_active_for(&self, load: f64) -> Option<u32> {
        assert!(load >= 0.0, "load must be non-negative");
        if load == 0.0 {
            return Some(0);
        }
        match self {
            PerfFunction::Linear { per_node } => {
                let n = (load / per_node).ceil();
                Some(n as u32)
            }
            PerfFunction::Saturating { a, b } => {
                // a·n/(1+b·n) >= load  <=>  n·(a - b·load) >= load
                let denom = a - b * load;
                if denom <= 0.0 {
                    return None;
                }
                let n = (load / denom).ceil();
                Some(n as u32)
            }
            PerfFunction::Table { .. } => {
                if self.max_throughput() < load {
                    return None;
                }
                // Monotone scan; tables are small.
                let mut n = 1;
                loop {
                    if self.throughput(n) >= load {
                        return Some(n);
                    }
                    n += 1;
                }
            }
            PerfFunction::Const { value } => {
                if *value >= load {
                    Some(1)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_throughput_and_inverse() {
        let f = PerfFunction::linear(200.0);
        assert_eq!(f.throughput(0), 0.0);
        assert_eq!(f.throughput(7), 1400.0);
        assert_eq!(f.min_active_for(400.0), Some(2));
        assert_eq!(f.min_active_for(401.0), Some(3));
        assert_eq!(f.min_active_for(0.0), Some(0));
        assert_eq!(f.max_throughput(), f64::INFINITY);
    }

    #[test]
    fn saturating_throughput_and_inverse() {
        // rH from Table 1: (10n)/(1+0.004n).
        let f = PerfFunction::saturating(10.0, 0.004);
        assert!((f.throughput(1) - 10.0 / 1.004).abs() < 1e-12);
        assert!((f.max_throughput() - 2500.0).abs() < 1e-9);
        // load near the asymptote is infeasible
        assert_eq!(f.min_active_for(2500.0), None);
        assert_eq!(f.min_active_for(3000.0), None);
        // and a feasible one satisfies the defining inequality minimally
        let n = f.min_active_for(1000.0).unwrap();
        assert!(f.throughput(n) >= 1000.0);
        assert!(f.throughput(n - 1) < 1000.0);
    }

    #[test]
    fn sublinear_needs_more_nodes_than_linear() {
        let lin = PerfFunction::linear(10.0);
        let sat = PerfFunction::saturating(10.0, 0.004);
        for load in [100.0, 500.0, 1000.0, 2000.0] {
            assert!(sat.min_active_for(load).unwrap() >= lin.min_active_for(load).unwrap());
        }
    }

    #[test]
    fn table_interpolates() {
        let f = PerfFunction::table(vec![(2, 100.0), (4, 180.0), (8, 300.0)]);
        assert_eq!(f.throughput(2), 100.0);
        assert_eq!(f.throughput(4), 180.0);
        assert_eq!(f.throughput(3), 140.0);
        // below first point: through origin
        assert_eq!(f.throughput(1), 50.0);
        assert_eq!(f.throughput(0), 0.0);
        // beyond last point: flat
        assert_eq!(f.throughput(100), 300.0);
        assert_eq!(f.max_throughput(), 300.0);
        assert_eq!(f.min_active_for(140.0), Some(3));
        assert_eq!(f.min_active_for(301.0), None);
    }

    #[test]
    fn const_function() {
        let f = PerfFunction::constant(10_000.0);
        assert_eq!(f.throughput(1), 10_000.0);
        assert_eq!(f.throughput(50), 10_000.0);
        assert_eq!(f.min_active_for(9999.0), Some(1));
        assert_eq!(f.min_active_for(10_001.0), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_linear_panics() {
        let _ = PerfFunction::linear(0.0);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn unsorted_table_panics() {
        let _ = PerfFunction::table(vec![(4, 1.0), (2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_table_panics() {
        let _ = PerfFunction::table(vec![]);
    }

    proptest! {
        #[test]
        fn min_active_is_tight_for_linear(per_node in 1.0_f64..1e4, load in 0.1_f64..1e6) {
            let f = PerfFunction::linear(per_node);
            let n = f.min_active_for(load).unwrap();
            prop_assert!(f.throughput(n) >= load * (1.0 - 1e-12));
            if n > 0 {
                prop_assert!(f.throughput(n - 1) < load);
            }
        }

        #[test]
        fn min_active_is_tight_for_saturating(
            a in 1.0_f64..1e3,
            b in 0.0001_f64..0.1,
            frac in 0.01_f64..0.95,
        ) {
            let f = PerfFunction::saturating(a, b);
            let load = frac * f.max_throughput();
            let n = f.min_active_for(load).unwrap();
            prop_assert!(f.throughput(n) >= load * (1.0 - 1e-9));
            if n > 1 {
                prop_assert!(f.throughput(n - 1) < load * (1.0 + 1e-9));
            }
        }

        #[test]
        fn throughput_is_monotone(
            a in 1.0_f64..1e3,
            b in 0.0_f64..0.1,
            n in 0_u32..500,
        ) {
            let f = PerfFunction::saturating(a, b);
            prop_assert!(f.throughput(n + 1) >= f.throughput(n));
        }
    }
}
