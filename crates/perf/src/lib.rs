//! Performance functions for the Aved design engine.
//!
//! The service model describes a tier's performance "in service-specific
//! units of work per units of time, typically defined as a function of the
//! number of active resources" (paper §3.2), referenced by name
//! (`performance(nActive)=perfC.dat`). The performance impact of
//! availability mechanisms is likewise a named function
//! (`mperformance(storage_location, checkpoint_interval, nActive)`).
//!
//! This crate provides:
//!
//! * [`PerfFunction`] — throughput as a function of the number of active
//!   resources (linear, saturating, tabulated or constant) with an inverse
//!   ([`PerfFunction::min_active_for`]) used by the search to find the
//!   minimum resource count meeting a load;
//! * [`CheckpointOverhead`] — the execution-time multiplier of a
//!   checkpoint mechanism, in the shape of the paper's Table 1
//!   (`max(factor/cpi, 100%)` with a central-storage factor that grows with
//!   `n` past a bottleneck threshold);
//! * [`Catalog`] — a name→function registry resolving the symbolic
//!   references in service models;
//! * [`paper`] — the concrete functions of Table 1, registered under the
//!   names the paper's figures use (`perfA.dat` … `mperfI.dat`).

mod catalog;
mod function;
mod overhead;
pub mod paper;

pub use catalog::{Catalog, CatalogError, CoverageError};
pub use function::PerfFunction;
pub use overhead::{CheckpointOverhead, OverheadForm, StorageLocation};
