//! The turn-key `Aved` engine (the architecture of the paper's Fig. 1).

use aved_avail::{AvailabilityEngine, DecompositionEngine};
use aved_model::{Design, Infrastructure, Service, ServiceRequirement};
use aved_perf::Catalog;
use aved_search::{
    search_job_tier, search_service_with_health, CachingEngine, EvalContext, SearchError,
    SearchHealth, SearchOptions,
};
use aved_units::{Duration, Money};

/// The design produced by an [`Aved`] run, with its headline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    design: Design,
    cost: Money,
    annual_downtime: Option<Duration>,
    expected_job_time: Option<Duration>,
    health: SearchHealth,
}

impl DesignReport {
    /// The minimum-cost design found.
    #[must_use]
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Annual cost of the design.
    #[must_use]
    pub fn cost(&self) -> Money {
        self.cost
    }

    /// Expected service-level annual downtime (enterprise services).
    #[must_use]
    pub fn annual_downtime(&self) -> Option<Duration> {
        self.annual_downtime
    }

    /// Expected job completion time (finite jobs).
    #[must_use]
    pub fn expected_job_time(&self) -> Option<Duration> {
        self.expected_job_time
    }

    /// How degraded the search behind this report was (candidates skipped
    /// after engine failures, solver fallbacks taken, the worst accepted
    /// residual) and how the work got done (worker threads, model-cache
    /// hits and misses, candidates pruned by cost dominance, per-phase
    /// wall time). A clean run has [`SearchHealth::is_degraded`] false.
    #[must_use]
    pub fn health(&self) -> &SearchHealth {
        &self.health
    }

    /// Assembles a report directly from parts. Test helper: real reports
    /// come from [`Aved::design`].
    #[doc(hidden)]
    #[must_use]
    pub fn for_tests(design: Design, cost: Money) -> DesignReport {
        DesignReport {
            design,
            cost,
            annual_downtime: None,
            expected_job_time: None,
            health: SearchHealth::default(),
        }
    }
}

/// The automated design engine — infrastructure model, performance
/// catalog, availability engine and search options — with a single
/// [`design`](Aved::design) entry point implementing the generate-evaluate
/// loop of the paper's Fig. 1.
///
/// # Examples
///
/// See the [crate-level documentation](crate) and the `examples/`
/// directory.
pub struct Aved {
    infrastructure: Infrastructure,
    catalog: Catalog,
    engine: Box<dyn AvailabilityEngine>,
    options: SearchOptions,
}

impl Aved {
    /// Creates an engine over an infrastructure model, with the fast
    /// per-class decomposition availability engine (the paper's
    /// "simplified Markov model"), an empty performance catalog and
    /// default search bounds.
    #[must_use]
    pub fn new(infrastructure: Infrastructure) -> Aved {
        Aved {
            infrastructure,
            catalog: Catalog::new(),
            engine: Box::new(DecompositionEngine::default()),
            options: SearchOptions::default(),
        }
    }

    /// Sets the performance catalog resolving the service model's named
    /// functions.
    #[must_use]
    pub fn with_catalog(mut self, catalog: Catalog) -> Aved {
        self.catalog = catalog;
        self
    }

    /// Replaces the availability evaluation engine (e.g. with the exact
    /// [`CtmcEngine`](aved_avail::CtmcEngine) or a seeded
    /// [`SimulationEngine`](aved_avail::SimulationEngine)).
    #[must_use]
    pub fn with_engine<E: AvailabilityEngine + 'static>(mut self, engine: E) -> Aved {
        self.engine = Box::new(engine);
        self
    }

    /// Adjusts the search bounds.
    #[must_use]
    pub fn with_search_options(mut self, options: SearchOptions) -> Aved {
        self.options = options;
        self
    }

    /// The infrastructure model.
    #[must_use]
    pub fn infrastructure(&self) -> &Infrastructure {
        &self.infrastructure
    }

    /// The search options in effect.
    #[must_use]
    pub fn search_options(&self) -> &SearchOptions {
        &self.options
    }

    /// Searches for the minimum-cost design of `service` meeting
    /// `requirement`. Returns `Ok(None)` when no design in the bounded
    /// space satisfies it.
    ///
    /// Enterprise requirements drive the multi-tier search (per-tier
    /// frontiers composed in series, §4.1); job requirements drive the
    /// completion-time search over the service's single computation tier.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] for model inconsistencies, unresolvable
    /// references, or requirement/service kind mismatches (a job
    /// requirement for a multi-tier enterprise service).
    pub fn design(
        &self,
        service: &Service,
        requirement: &ServiceRequirement,
    ) -> Result<Option<DesignReport>, SearchError> {
        self.design_with_health(service, requirement)
            .map(|(report, _)| report)
    }

    /// Like [`design`](Aved::design), but also returns the
    /// [`SearchHealth`] of the run itself: an infeasible answer still says
    /// how degraded the search that produced it was — candidates skipped
    /// or budget-exhausted, and whether the run was interrupted before
    /// covering the design space (in which case "infeasible" only means
    /// "nothing feasible found *so far*").
    ///
    /// # Errors
    ///
    /// See [`design`](Aved::design).
    pub fn design_with_health(
        &self,
        service: &Service,
        requirement: &ServiceRequirement,
    ) -> Result<(Option<DesignReport>, SearchHealth), SearchError> {
        let caching = CachingEngine::new(self.engine.as_ref());
        let ctx = EvalContext::new(&self.infrastructure, service, &self.catalog, &caching);
        match requirement {
            ServiceRequirement::Enterprise {
                min_throughput,
                max_annual_downtime,
            } => {
                let (found, mut health) = search_service_with_health(
                    &ctx,
                    *min_throughput,
                    *max_annual_downtime,
                    &self.options,
                )?;
                health.cache_hits = caching.hits();
                health.cache_misses = caching.misses();
                let report = found.map(|sd| DesignReport {
                    design: sd.to_design(),
                    cost: sd.cost(),
                    annual_downtime: Some(sd.annual_downtime()),
                    expected_job_time: None,
                    health: health.clone(),
                });
                Ok((report, health))
            }
            ServiceRequirement::Job { max_execution_time } => {
                if service.job_size().is_none() {
                    return Err(SearchError::RequirementMismatch {
                        detail: format!(
                            "service {} declares no jobsize but the requirement is a job deadline",
                            service.name()
                        ),
                    });
                }
                if service.tiers().len() != 1 {
                    return Err(SearchError::RequirementMismatch {
                        detail: "job requirements apply to single-tier services".into(),
                    });
                }
                let tier_name = service.tiers()[0].name().as_str().to_owned();
                let outcome =
                    search_job_tier(&ctx, &tier_name, *max_execution_time, &self.options)?;
                let mut health = outcome.health().clone();
                health.cache_hits = caching.hits();
                health.cache_misses = caching.misses();
                let report = outcome.best().map(|best| DesignReport {
                    design: Design::new(vec![best.design().clone()]),
                    cost: best.cost(),
                    annual_downtime: Some(best.annual_downtime()),
                    expected_job_time: best.expected_job_time(),
                    health: health.clone(),
                });
                Ok((report, health))
            }
        }
    }
}

impl std::fmt::Debug for Aved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aved")
            .field("n_components", &self.infrastructure.components().count())
            .field("n_resources", &self.infrastructure.resources().count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use aved_model::ParamValue;

    fn small_options() -> SearchOptions {
        SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn enterprise_design_end_to_end() {
        let aved = Aved::new(scenario::infrastructure().unwrap())
            .with_catalog(scenario::catalog())
            .with_search_options(small_options());
        let req = ServiceRequirement::enterprise(400.0, Duration::from_mins(2000.0));
        let report = aved
            .design(&scenario::ecommerce().unwrap(), &req)
            .unwrap()
            .expect("feasible");
        assert_eq!(report.design().tiers().len(), 3);
        assert!(report.annual_downtime().unwrap() <= Duration::from_mins(2000.0));
        assert!(report.cost().dollars() > 0.0);
        assert!(report.expected_job_time().is_none());
        assert!(
            !report.health().is_degraded(),
            "clean engines must yield a clean health report: {}",
            report.health()
        );
        assert!(
            report.health().cache_misses > 0,
            "the model cache must see the search's evaluations"
        );
        assert_eq!(report.health().jobs, 1, "default options are serial");
    }

    #[test]
    fn parallel_design_matches_serial() {
        let infra = scenario::infrastructure().unwrap();
        let service = scenario::ecommerce().unwrap();
        let req = ServiceRequirement::enterprise(400.0, Duration::from_mins(2000.0));
        let serial = Aved::new(infra.clone())
            .with_catalog(scenario::catalog())
            .with_search_options(small_options())
            .design(&service, &req)
            .unwrap()
            .expect("feasible");
        let parallel = Aved::new(infra)
            .with_catalog(scenario::catalog())
            .with_search_options(small_options().with_jobs(4))
            .design(&service, &req)
            .unwrap()
            .expect("feasible");
        assert_eq!(parallel.design(), serial.design());
        assert_eq!(parallel.cost(), serial.cost());
        assert_eq!(parallel.annual_downtime(), serial.annual_downtime());
        assert_eq!(
            parallel.health().jobs,
            aved_search::effective_jobs(4),
            "requested width is clamped to the machine"
        );
    }

    #[test]
    fn job_design_end_to_end() {
        let options = SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        }
        .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
        .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));
        let aved = Aved::new(scenario::infrastructure().unwrap())
            .with_catalog(scenario::catalog())
            .with_search_options(options);
        let req = ServiceRequirement::job(Duration::from_hours(300.0));
        let report = aved
            .design(&scenario::scientific().unwrap(), &req)
            .unwrap()
            .expect("feasible");
        assert!(report.expected_job_time().unwrap() <= Duration::from_hours(300.0));
        assert_eq!(report.design().tiers().len(), 1);
    }

    #[test]
    fn job_requirement_on_enterprise_service_is_rejected() {
        let aved = Aved::new(scenario::infrastructure().unwrap()).with_catalog(scenario::catalog());
        let req = ServiceRequirement::job(Duration::from_hours(10.0));
        assert!(matches!(
            aved.design(&scenario::ecommerce().unwrap(), &req),
            Err(SearchError::RequirementMismatch { .. })
        ));
    }

    #[test]
    fn debug_shows_model_sizes() {
        let aved = Aved::new(scenario::infrastructure().unwrap());
        let dbg = format!("{aved:?}");
        assert!(dbg.contains("n_components"));
    }
}
