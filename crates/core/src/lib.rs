//! # Aved — automated system design for availability
//!
//! A from-scratch Rust reproduction of the design-automation engine
//! described in *Automated System Design for Availability* (Janakiraman,
//! Santos, Turner — HP Labs, DSN 2004). Aved takes a description of the
//! available infrastructure building blocks, a model of the service to
//! deploy, and high-level requirements (throughput + annual downtime for
//! always-on services; expected completion time for finite jobs), and
//! searches the design space for the **minimum-cost design** that meets
//! the requirements: resource type per tier, number of active resources,
//! number and configuration of spares, and a setting for every
//! availability-mechanism parameter (maintenance-contract level,
//! checkpoint interval, checkpoint storage location, ...).
//!
//! This crate is the facade over the workspace:
//!
//! * [`units`], [`model`], [`spec`] — quantities, the design-space domain
//!   model, and the paper's attribute-value specification language;
//! * [`markov`], [`avail`] — the availability evaluation engines (exact
//!   CTMC, fast per-class decomposition, and a Monte Carlo simulator);
//! * [`perf`], [`jobtime`] — performance functions (the paper's Table 1)
//!   and the loss-window/completion-time analysis;
//! * [`search`] — the §4.1 design-space search and the tradeoff sweeps
//!   behind the paper's Figs. 6–8;
//! * [`scenario`] — the paper's own example models, ready to run;
//! * [`Aved`] — the turn-key engine tying it all together.
//!
//! # Quickstart
//!
//! ```
//! use aved::scenario;
//! use aved::{Aved, ServiceRequirement};
//! use aved::units::Duration;
//!
//! // The paper's infrastructure (Fig. 3) and e-commerce service (Fig. 4).
//! let aved = Aved::new(scenario::infrastructure()?)
//!     .with_catalog(scenario::catalog());
//! let requirement = ServiceRequirement::enterprise(
//!     400.0,                        // units of load
//!     Duration::from_mins(200.0),   // max annual downtime
//! );
//! let report = aved
//!     .design(&scenario::ecommerce()?, &requirement)?
//!     .expect("the requirement is satisfiable");
//! assert!(report.annual_downtime().unwrap() <= Duration::from_mins(200.0));
//! println!("optimal design costs {} per year", report.cost());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod engine;
mod report;
pub mod scenario;

pub use engine::{Aved, DesignReport};
pub use report::explain_design;

// Re-export the workspace crates under stable module names.
pub use aved_avail as avail;
pub use aved_jobtime as jobtime;
pub use aved_markov as markov;
pub use aved_model as model;
pub use aved_perf as perf;
pub use aved_search as search;
pub use aved_spec as spec;
pub use aved_units as units;

// Most-used types at the crate root for ergonomic imports.
pub use aved_avail::{AvailabilityEngine, CtmcEngine, DecompositionEngine, SimulationEngine};
pub use aved_model::{Design, Infrastructure, Service, ServiceRequirement, TierDesign};
pub use aved_perf::Catalog;
pub use aved_search::{SearchError, SearchOptions};
