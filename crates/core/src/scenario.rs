//! The paper's example scenario, bundled and ready to run.
//!
//! The specification files under `data/` transcribe the paper's Fig. 3
//! (infrastructure), Fig. 4 (e-commerce service) and Fig. 5 (scientific
//! application); the performance catalog carries the closed forms of
//! Table 1. Together they are the inputs behind the paper's Figs. 6–8.

use aved_model::{Infrastructure, Service};
use aved_perf::Catalog;
use aved_spec::SpecError;

/// The raw text of the bundled infrastructure specification (Fig. 3).
pub const INFRASTRUCTURE_SPEC: &str = include_str!("../../../data/infrastructure.aved");

/// The raw text of the bundled e-commerce service model (Fig. 4).
pub const ECOMMERCE_SPEC: &str = include_str!("../../../data/ecommerce.aved");

/// The raw text of the bundled scientific application model (Fig. 5).
pub const SCIENTIFIC_SPEC: &str = include_str!("../../../data/scientific.aved");

/// Parses the paper's infrastructure model (Fig. 3).
///
/// # Errors
///
/// Returns [`SpecError`] if the bundled specification fails to parse —
/// which would indicate a build corruption, not a user error.
pub fn infrastructure() -> Result<Infrastructure, SpecError> {
    aved_spec::parse_infrastructure(INFRASTRUCTURE_SPEC)
}

/// Parses the paper's three-tier e-commerce service model (Fig. 4).
///
/// # Errors
///
/// See [`infrastructure`].
pub fn ecommerce() -> Result<Service, SpecError> {
    aved_spec::parse_service(ECOMMERCE_SPEC)
}

/// Parses the paper's parallel scientific application model (Fig. 5).
///
/// # Errors
///
/// See [`infrastructure`].
pub fn scientific() -> Result<Service, SpecError> {
    aved_spec::parse_service(SCIENTIFIC_SPEC)
}

/// The performance catalog of the paper's Table 1 (plus the web-tier
/// functions the paper references but does not tabulate; see `DESIGN.md`).
#[must_use]
pub fn catalog() -> Catalog {
    aved_perf::paper::catalog()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aved_model::PerfRef;

    #[test]
    fn bundled_specs_parse_and_validate() {
        let infra = infrastructure().unwrap();
        assert_eq!(infra.components().count(), 9);
        assert_eq!(infra.mechanisms().count(), 3);
        assert_eq!(infra.resources().count(), 9);
        infra.validate().unwrap();
    }

    #[test]
    fn ecommerce_matches_fig4() {
        let svc = ecommerce().unwrap();
        assert_eq!(svc.tiers().len(), 3);
        assert_eq!(svc.tier("application").unwrap().options().len(), 4);
        assert_eq!(svc.tier("web").unwrap().options().len(), 2);
        assert_eq!(svc.tier("database").unwrap().options().len(), 1);
    }

    #[test]
    fn scientific_matches_fig5() {
        let svc = scientific().unwrap();
        assert_eq!(svc.job_size(), Some(10_000.0));
        let comp = svc.tier("computation").unwrap();
        assert_eq!(comp.options().len(), 2);
    }

    #[test]
    fn catalog_resolves_every_referenced_function() {
        // `validate_service` returns a structured error naming the tier
        // with the unresolved reference as its source; `unwrap` surfaces
        // both through the Debug rendering if coverage ever regresses.
        let cat = catalog();
        for svc in [ecommerce().unwrap(), scientific().unwrap()] {
            cat.validate_service(&svc).unwrap();
        }
    }

    #[test]
    fn every_service_resource_exists_in_infrastructure() {
        let infra = infrastructure().unwrap();
        for svc in [ecommerce().unwrap(), scientific().unwrap()] {
            for tier in svc.tiers() {
                for opt in tier.options() {
                    assert!(
                        infra.resource(opt.resource().as_str()).is_some(),
                        "missing resource {}",
                        opt.resource()
                    );
                }
            }
        }
    }

    #[test]
    fn database_tier_uses_constant_performance() {
        let svc = ecommerce().unwrap();
        let db = svc.tier("database").unwrap().option_for("rG").unwrap();
        assert_eq!(db.performance(), &PerfRef::Const(10_000.0));
    }
}
