//! `aved` — command-line front end to the design engine.
//!
//! ```text
//! aved design --infrastructure infra.aved --service svc.aved \
//!             --load 1000 --max-downtime 100m [--engine ctmc|decomp|sim]
//! aved design --infrastructure infra.aved --service job.aved \
//!             --max-execution-time 20h
//! aved check  --infrastructure infra.aved [--service svc.aved]
//! aved dump   --infrastructure infra.aved
//! ```
//!
//! The built-in paper scenario is used when `--paper` replaces the model
//! flags. Performance functions are resolved from the paper catalog; for
//! custom services whose functions are not in the catalog, constant
//! (`performance=N`) references always work.

use std::process::ExitCode;

use aved::avail::{CtmcEngine, DecompositionEngine, SimulationEngine};
use aved::model::{Infrastructure, ParamValue, Service};
use aved::units::Duration;
use aved::{Aved, SearchOptions, ServiceRequirement};

/// Exit code for bad command lines (with usage printed).
const EXIT_USAGE: u8 = 2;
/// Exit code for unreadable or unparsable model/spec files.
const EXIT_SPEC: u8 = 3;
/// Exit code for searches that complete but find no feasible design.
const EXIT_INFEASIBLE: u8 = 4;
/// Exit code for evaluation-engine or search failures.
const EXIT_ENGINE: u8 = 5;
/// Exit code for searches stopped early (deadline or signal) that report
/// their best-so-far result instead of covering the whole design space.
const EXIT_INTERRUPTED: u8 = 6;

/// A CLI failure: a distinct exit code plus the full error source chain.
struct CliError {
    code: u8,
    message: String,
    /// Rendered `Error::source` chain, outermost cause first.
    chain: Vec<String>,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_USAGE,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Wraps a typed error, capturing its whole source chain for stderr.
    fn wrap(code: u8, context: &str, error: &dyn std::error::Error) -> CliError {
        let mut chain = Vec::new();
        let mut source = error.source();
        while let Some(e) = source {
            chain.push(e.to_string());
            source = e.source();
        }
        CliError {
            code,
            message: if context.is_empty() {
                error.to_string()
            } else {
                format!("{context}: {error}")
            },
            chain,
        }
    }

    fn spec(context: &str, error: &dyn std::error::Error) -> CliError {
        CliError::wrap(EXIT_SPEC, context, error)
    }

    fn spec_msg(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_SPEC,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    fn engine(error: &dyn std::error::Error) -> CliError {
        CliError::wrap(EXIT_ENGINE, "", error)
    }

    fn infeasible() -> CliError {
        CliError {
            code: EXIT_INFEASIBLE,
            message: "no design within the search bounds satisfies the requirement".into(),
            chain: Vec::new(),
        }
    }

    fn interrupted(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_INTERRUPTED,
            message: message.into(),
            chain: Vec::new(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            for cause in &e.chain {
                eprintln!("  caused by: {cause}");
            }
            if e.code == EXIT_USAGE {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "\
usage:
  aved design (--paper-ecommerce | --paper-scientific |
               --infrastructure FILE --service FILE)
              (--requirement FILE | --load UNITS --max-downtime DUR |
               --max-execution-time DUR)
              [--engine ctmc|decomp|sim] [--max-spares N] [--max-extra N]
              [--jobs N] [--pin MECH.PARAM=VALUE]... [--explain] [--strict]
              [GOVERNANCE]
  aved check  --infrastructure FILE [--service FILE]
  aved dump   --infrastructure FILE
  aved sweep  (--paper-ecommerce | --infrastructure FILE --service FILE)
              --tier NAME --load UNITS [--max-spares N] [--max-extra N]
              [--jobs N] [--pin MECH.PARAM=VALUE]... [GOVERNANCE]
  aved export-markov --infrastructure FILE --resource NAME
              --active N --min N [--spares N] [--pin MECH.PARAM=VALUE]...

GOVERNANCE = [--candidate-timeout DUR] [--max-states N]
             [--search-deadline DUR] [--journal FILE] [--resume FILE]

durations use the spec syntax: 30s, 2m, 8h, 650d

--jobs N evaluates candidates on N worker threads (default: one per
available CPU); the selected design is identical at any worker count.

--strict aborts a search on the first evaluation failure instead of
skipping the failing candidate and reporting it in the health summary.

--candidate-timeout and --max-states bound each candidate's solve; a
candidate that exhausts its budget is skipped and reported (or aborts
the run under --strict). --search-deadline bounds the whole sweep:
when it passes — or on SIGINT/SIGTERM — workers drain at the next
candidate boundary, the best design found so far is printed, and the
process exits with code 6.

--journal FILE checkpoints every candidate outcome to an append-only
file as the sweep runs; --resume FILE replays such a journal so an
interrupted sweep continues where it stopped and provably selects the
same winner. The same path may be passed to both.

exit codes: 0 success, 2 usage, 3 unreadable/unparsable model files,
4 no feasible design, 5 evaluation-engine failure,
6 search interrupted (best-so-far result printed)";

/// Hooks SIGINT/SIGTERM to a [`CancelToken`](aved::avail::CancelToken) so
/// an interrupted sweep drains at the next candidate boundary — flushing
/// its journal and printing the best design so far — instead of dying
/// mid-write.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
    use std::sync::Arc;

    /// The cancel flag the handler trips. The `Arc` is leaked on install:
    /// a signal handler outlives every scope, so its flag must too.
    static CANCEL_FLAG: AtomicPtr<AtomicBool> = AtomicPtr::new(std::ptr::null_mut());

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`, declared directly: the workspace vendors no
        /// libc crate, and registering two handlers needs nothing more.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn trip(_signum: i32) {
        // Async-signal-safe: a single atomic store, no allocation, no locks.
        let flag = CANCEL_FLAG.load(Ordering::Acquire);
        if !flag.is_null() {
            unsafe { (*flag).store(true, Ordering::Release) };
        }
    }

    pub fn install(token: &aved::avail::CancelToken) {
        let raw = Arc::into_raw(Arc::clone(token.flag()));
        CANCEL_FLAG.store(raw.cast_mut(), Ordering::Release);
        unsafe {
            signal(SIGINT, trip);
            signal(SIGTERM, trip);
        }
    }
}

struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn values(&self, name: &str) -> Vec<&'a str> {
        let mut out = Vec::new();
        for (i, a) in self.args.iter().enumerate() {
            if a == name {
                if let Some(v) = self.args.get(i + 1) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage("missing command"));
    };
    let flags = Flags { args: &args[1..] };
    match command.as_str() {
        "design" => design(&flags),
        "check" => check(&flags),
        "dump" => dump(&flags),
        "export-markov" => export_markov(&flags),
        "sweep" => sweep(&flags),
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

fn load_infrastructure(flags: &Flags<'_>) -> Result<Infrastructure, CliError> {
    if flags.has("--paper-ecommerce") || flags.has("--paper-scientific") {
        return aved::scenario::infrastructure().map_err(|e| CliError::spec("paper scenario", &e));
    }
    let path = flags
        .value("--infrastructure")
        .ok_or_else(|| CliError::usage("missing --infrastructure FILE"))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::spec(path, &e))?;
    aved::spec::parse_infrastructure(&text).map_err(|e| CliError::spec(path, &e))
}

fn load_service(flags: &Flags<'_>) -> Result<Service, CliError> {
    if flags.has("--paper-ecommerce") {
        return aved::scenario::ecommerce().map_err(|e| CliError::spec("paper scenario", &e));
    }
    if flags.has("--paper-scientific") {
        return aved::scenario::scientific().map_err(|e| CliError::spec("paper scenario", &e));
    }
    let path = flags
        .value("--service")
        .ok_or_else(|| CliError::usage("missing --service FILE"))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::spec(path, &e))?;
    aved::spec::parse_service(&text).map_err(|e| CliError::spec(path, &e))
}

fn parse_duration(s: &str) -> Result<Duration, CliError> {
    s.parse()
        .map_err(|e: aved::units::ParseDurationError| CliError::usage(e.to_string()))
}

/// Parses a spec-syntax duration into the `std` duration the budget layer
/// speaks.
fn parse_std_duration(s: &str) -> Result<std::time::Duration, CliError> {
    let d = parse_duration(s)?;
    if !d.seconds().is_finite() || d.seconds() < 0.0 {
        return Err(CliError::usage(format!("bad duration {s:?}")));
    }
    Ok(std::time::Duration::from_secs_f64(d.seconds()))
}

fn design(flags: &Flags<'_>) -> Result<(), CliError> {
    let infrastructure = load_infrastructure(flags)?;
    let service = load_service(flags)?;
    infrastructure
        .validate()
        .map_err(|e| CliError::spec("infrastructure", &e))?;
    let explain = flags.has("--explain");

    let requirement =
        if let Some(path) = flags.value("--requirement") {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::spec(path, &e))?;
            aved::spec::parse_requirement(&text).map_err(|e| CliError::spec(path, &e))?
        } else {
            match (
                flags.value("--load"),
                flags.value("--max-downtime"),
                flags.value("--max-execution-time"),
            ) {
                (Some(load), Some(downtime), None) => {
                    let load: f64 = load
                        .parse()
                        .map_err(|_| CliError::usage("bad --load value"))?;
                    ServiceRequirement::enterprise(load, parse_duration(downtime)?)
                }
                (None, None, Some(t)) => ServiceRequirement::job(parse_duration(t)?),
                _ => return Err(CliError::usage(
                    "need --requirement FILE, or --load + --max-downtime, or --max-execution-time",
                )),
            }
        };

    let options = parse_search_options(flags)?;

    let mut aved = Aved::new(infrastructure)
        .with_catalog(aved::scenario::catalog())
        .with_search_options(options);
    match flags.value("--engine").unwrap_or("decomp") {
        "decomp" => aved = aved.with_engine(DecompositionEngine::default()),
        "ctmc" => aved = aved.with_engine(CtmcEngine::default()),
        "sim" => aved = aved.with_engine(SimulationEngine::new(42).with_years(2000.0)),
        other => return Err(CliError::usage(format!("unknown engine {other:?}"))),
    }

    let (report, health) = aved
        .design_with_health(&service, &requirement)
        .map_err(|e| CliError::engine(&e))?;
    match report {
        None => {
            report_health(&health);
            report_stats(&health);
            if health.interrupted {
                return Err(CliError::interrupted(
                    "search interrupted before finding a feasible design; \
                     rerun with --resume, a longer --search-deadline, or no deadline",
                ));
            }
            Err(CliError::infeasible())
        }
        Some(report) => {
            println!("minimum-cost design: {} per year", report.cost());
            if let Some(dt) = report.annual_downtime() {
                println!("expected annual downtime: {:.2} min", dt.minutes());
            }
            if let Some(t) = report.expected_job_time() {
                println!("expected job completion: {:.2} h", t.hours());
            }
            for tier in report.design().tiers() {
                println!("  {tier}");
            }
            report_health(report.health());
            report_stats(report.health());
            if explain {
                let text = aved::explain_design(aved.infrastructure(), &service, &report)
                    .map_err(|e| CliError::engine(&e))?;
                println!("\n{text}");
            }
            if report.health().interrupted {
                return Err(CliError::interrupted(
                    "search interrupted before covering the design space; \
                     the design above is the best found so far",
                ));
            }
            Ok(())
        }
    }
}

/// Surfaces a degraded search on stderr so scripted pipelines notice it
/// even when the design itself looks fine.
fn report_health(health: &aved::search::SearchHealth) {
    if !health.is_degraded() {
        return;
    }
    eprintln!("warning: search degraded: {health}");
    for skip in &health.skipped {
        eprintln!(
            "  skipped {}/{} ({} active, {} spare): {}",
            skip.tier, skip.resource, skip.n_active, skip.n_spare, skip.error
        );
    }
}

/// Parses the search-bound flags shared by `design` and `sweep`.
fn parse_search_options(flags: &Flags<'_>) -> Result<SearchOptions, CliError> {
    let mut options = SearchOptions::default();
    if let Some(v) = flags.value("--max-spares") {
        options.max_spares = v
            .parse()
            .map_err(|_| CliError::usage("bad --max-spares value"))?;
    }
    if let Some(v) = flags.value("--max-extra") {
        options.max_extra_active = v
            .parse()
            .map_err(|_| CliError::usage("bad --max-extra value"))?;
    }
    // The CLI defaults to one worker per CPU (jobs = 0 is the library's
    // auto-detect marker); the library itself defaults to serial.
    options.jobs = match flags.value("--jobs") {
        Some(v) => v.parse().map_err(|_| CliError::usage("bad --jobs value"))?,
        None => 0,
    };
    options.strict = flags.has("--strict");
    if let Some(v) = flags.value("--candidate-timeout") {
        options = options.with_candidate_timeout(parse_std_duration(v)?);
    }
    if let Some(v) = flags.value("--max-states") {
        let n: usize = v
            .parse()
            .map_err(|_| CliError::usage("bad --max-states value"))?;
        options = options.with_max_states(n);
    }
    if let Some(v) = flags.value("--search-deadline") {
        options = options.with_search_deadline(parse_std_duration(v)?);
    }
    // Load the replay before creating the journal so that passing the same
    // path to --resume and --journal reads the old run before truncating.
    if let Some(path) = flags.value("--resume") {
        let replay =
            aved::search::JournalReplay::load(path).map_err(|e| CliError::spec(path, &e))?;
        if replay.malformed() > 0 {
            eprintln!(
                "warning: {path}: ignored {} malformed journal line(s)",
                replay.malformed()
            );
        }
        eprintln!(
            "resuming from {path}: {} candidate outcome(s)",
            replay.len()
        );
        options = options.with_resume(std::sync::Arc::new(replay));
    }
    if let Some(path) = flags.value("--journal") {
        let journal =
            aved::search::SweepJournal::create(path).map_err(|e| CliError::spec(path, &e))?;
        options = options.with_journal(std::sync::Arc::new(journal));
    }
    // Every search is cancellable: SIGINT/SIGTERM stop it at the next
    // candidate boundary with its best-so-far result (exit code 6).
    let cancel = aved::avail::CancelToken::new();
    #[cfg(unix)]
    signals::install(&cancel);
    options = options.with_cancel(cancel);
    parse_pins(flags, &mut options)?;
    Ok(options)
}

/// One-line workload summary on stderr: worker count, cache traffic,
/// dominance pruning, warm-start effectiveness, per-phase timing. Stderr
/// so pipelines that consume the design on stdout are unaffected.
fn report_stats(health: &aved::search::SearchHealth) {
    eprintln!(
        "search: {} job(s), cache {}/{} hit, {} candidate(s) pruned by cost, \
         warm {}/{} hit, {} rebuild(s) avoided, {} iteration(s) saved, \
         {} budget-exhausted, {} replayed from journal, \
         enumerate {:.1} ms + solve {:.1} ms + merge {:.1} ms (total {:.1} ms)",
        health.jobs,
        health.cache_hits,
        health.cache_hits + health.cache_misses,
        health.candidates_pruned,
        health.warm_hits,
        health.warm_solves,
        health.chain_rebuilds_avoided,
        health.iterations_saved,
        health.budget_exhausted,
        health.journal_replayed,
        health.enumeration_time.as_secs_f64() * 1e3,
        health.solve_time.as_secs_f64() * 1e3,
        health.merge_time.as_secs_f64() * 1e3,
        health.wall_time.as_secs_f64() * 1e3,
    );
}

fn parse_pins(flags: &Flags<'_>, options: &mut SearchOptions) -> Result<(), CliError> {
    for pin in flags.values("--pin") {
        let (target, value) = pin
            .split_once('=')
            .ok_or_else(|| CliError::usage("pins look like MECH.PARAM=VALUE"))?;
        let (mech, param) = target
            .split_once('.')
            .ok_or_else(|| CliError::usage("pins look like MECH.PARAM=VALUE"))?;
        let value = match value.parse::<Duration>() {
            Ok(d) => ParamValue::Duration(d),
            Err(_) => ParamValue::Level(value.to_owned()),
        };
        *options = options.clone().with_pin(mech, param, value);
    }
    Ok(())
}

/// The cost/downtime Pareto frontier of one tier at a fixed load: the data
/// a designer needs to pick their own point on the tradeoff.
fn sweep(flags: &Flags<'_>) -> Result<(), CliError> {
    use aved::avail::DecompositionEngine;
    use aved::search::{tier_pareto_frontier_with_health, CachingEngine, EvalContext};

    let infrastructure = load_infrastructure(flags)?;
    let service = load_service(flags)?;
    infrastructure
        .validate()
        .map_err(|e| CliError::spec("infrastructure", &e))?;
    let tier = flags
        .value("--tier")
        .ok_or_else(|| CliError::usage("missing --tier NAME"))?;
    let load: f64 = flags
        .value("--load")
        .ok_or_else(|| CliError::usage("missing --load UNITS"))?
        .parse()
        .map_err(|_| CliError::usage("bad --load value"))?;
    let options = parse_search_options(flags)?;

    let catalog = aved::scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let (frontier, mut health) = tier_pareto_frontier_with_health(&ctx, tier, load, &options)
        .map_err(|e| CliError::engine(&e))?;
    health.cache_hits = engine.hits();
    health.cache_misses = engine.misses();
    report_health(&health);
    report_stats(&health);
    if frontier.is_empty() {
        println!("no design of tier {tier} can support load {load}");
    } else {
        println!("cost/downtime frontier of tier {tier} at load {load}:");
        println!("{:>12} {:>16}   design", "cost ($/y)", "downtime (m/y)");
        for e in &frontier {
            println!(
                "{:>12.0} {:>16.3}   {}",
                e.cost().dollars(),
                e.annual_downtime().minutes(),
                e.design(),
            );
        }
    }
    if health.interrupted {
        return Err(CliError::interrupted(
            "sweep interrupted before covering the design space; \
             the frontier above holds the points found so far",
        ));
    }
    Ok(())
}

fn export_markov(flags: &Flags<'_>) -> Result<(), CliError> {
    use aved::avail::{derive_tier_model, export_parameters, export_sharpe_markov, CtmcEngine};
    use aved::model::{FailureScope, Sizing, TierDesign};

    let infrastructure = load_infrastructure(flags)?;
    infrastructure
        .validate()
        .map_err(|e| CliError::spec("infrastructure", &e))?;
    let resource = flags
        .value("--resource")
        .ok_or_else(|| CliError::usage("missing --resource NAME"))?;
    let n: u32 = flags
        .value("--active")
        .ok_or_else(|| CliError::usage("missing --active N"))?
        .parse()
        .map_err(|_| CliError::usage("bad --active value"))?;
    let m: u32 = flags
        .value("--min")
        .ok_or_else(|| CliError::usage("missing --min N"))?
        .parse()
        .map_err(|_| CliError::usage("bad --min value"))?;
    let s: u32 = flags
        .value("--spares")
        .map_or(Ok(0), str::parse)
        .map_err(|_| CliError::usage("bad --spares value"))?;

    let mut td = TierDesign::new("export", resource, n, s);
    for pin in flags.values("--pin") {
        let (target, value) = pin
            .split_once('=')
            .ok_or_else(|| CliError::usage("pins look like MECH.PARAM=VALUE"))?;
        let (mech, param) = target
            .split_once('.')
            .ok_or_else(|| CliError::usage("pins look like MECH.PARAM=VALUE"))?;
        let value = match value.parse::<Duration>() {
            Ok(d) => ParamValue::Duration(d),
            Err(_) => ParamValue::Level(value.to_owned()),
        };
        td = td.with_setting(mech, param, value);
    }

    let model = derive_tier_model(
        &infrastructure,
        &td,
        Sizing::Dynamic,
        FailureScope::Resource,
        m,
    )
    .map_err(|e| CliError::engine(&e))?;
    println!("{}", export_parameters(&model));
    let engine = CtmcEngine::default();
    print!(
        "{}",
        export_sharpe_markov(&engine, &model).map_err(|e| CliError::engine(&e))?
    );
    Ok(())
}

fn check(flags: &Flags<'_>) -> Result<(), CliError> {
    let infrastructure = load_infrastructure(flags)?;
    infrastructure
        .validate()
        .map_err(|e| CliError::spec("infrastructure", &e))?;
    println!(
        "infrastructure OK: {} components, {} mechanisms, {} resources",
        infrastructure.components().count(),
        infrastructure.mechanisms().count(),
        infrastructure.resources().count(),
    );
    if flags.value("--service").is_some() {
        let service = load_service(flags)?;
        for tier in service.tiers() {
            for opt in tier.options() {
                if infrastructure.resource(opt.resource().as_str()).is_none() {
                    return Err(CliError::spec_msg(format!(
                        "tier {} references unknown resource {}",
                        tier.name(),
                        opt.resource()
                    )));
                }
            }
        }
        // `design` resolves performance references through the paper
        // catalog (constants always resolve); surface a missing function
        // here, with the tier named and the reference in the cause chain,
        // instead of at search time.
        aved::scenario::catalog()
            .validate_service(&service)
            .map_err(|e| CliError::spec("service", &e))?;
        println!(
            "service {} OK: {} tier(s)",
            service.name(),
            service.tiers().len()
        );
    }
    Ok(())
}

fn dump(flags: &Flags<'_>) -> Result<(), CliError> {
    let infrastructure = load_infrastructure(flags)?;
    print!("{}", aved::spec::write_infrastructure(&infrastructure));
    Ok(())
}
