//! `aved` — command-line front end to the design engine.
//!
//! ```text
//! aved design --infrastructure infra.aved --service svc.aved \
//!             --load 1000 --max-downtime 100m [--engine ctmc|decomp|sim]
//! aved design --infrastructure infra.aved --service job.aved \
//!             --max-execution-time 20h
//! aved check  --infrastructure infra.aved [--service svc.aved]
//! aved dump   --infrastructure infra.aved
//! ```
//!
//! The built-in paper scenario is used when `--paper` replaces the model
//! flags. Performance functions are resolved from the paper catalog; for
//! custom services whose functions are not in the catalog, constant
//! (`performance=N`) references always work.

use std::process::ExitCode;

use aved::avail::{CtmcEngine, DecompositionEngine, SimulationEngine};
use aved::model::{Infrastructure, ParamValue, Service};
use aved::units::Duration;
use aved::{Aved, SearchOptions, ServiceRequirement};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  aved design (--paper-ecommerce | --paper-scientific |
               --infrastructure FILE --service FILE)
              (--requirement FILE | --load UNITS --max-downtime DUR |
               --max-execution-time DUR)
              [--engine ctmc|decomp|sim] [--max-spares N] [--max-extra N]
              [--pin MECH.PARAM=VALUE]... [--explain]
  aved check  --infrastructure FILE [--service FILE]
  aved dump   --infrastructure FILE
  aved sweep  (--paper-ecommerce | --infrastructure FILE --service FILE)
              --tier NAME --load UNITS [--max-spares N] [--max-extra N]
              [--pin MECH.PARAM=VALUE]...
  aved export-markov --infrastructure FILE --resource NAME
              --active N --min N [--spares N] [--pin MECH.PARAM=VALUE]...

durations use the spec syntax: 30s, 2m, 8h, 650d";

struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn values(&self, name: &str) -> Vec<&'a str> {
        let mut out = Vec::new();
        for (i, a) in self.args.iter().enumerate() {
            if a == name {
                if let Some(v) = self.args.get(i + 1) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let flags = Flags { args: &args[1..] };
    match command.as_str() {
        "design" => design(&flags),
        "check" => check(&flags),
        "dump" => dump(&flags),
        "export-markov" => export_markov(&flags),
        "sweep" => sweep(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn load_infrastructure(flags: &Flags<'_>) -> Result<Infrastructure, String> {
    if flags.has("--paper-ecommerce") || flags.has("--paper-scientific") {
        return aved::scenario::infrastructure().map_err(|e| e.to_string());
    }
    let path = flags
        .value("--infrastructure")
        .ok_or("missing --infrastructure FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    aved::spec::parse_infrastructure(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_service(flags: &Flags<'_>) -> Result<Service, String> {
    if flags.has("--paper-ecommerce") {
        return aved::scenario::ecommerce().map_err(|e| e.to_string());
    }
    if flags.has("--paper-scientific") {
        return aved::scenario::scientific().map_err(|e| e.to_string());
    }
    let path = flags.value("--service").ok_or("missing --service FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    aved::spec::parse_service(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    s.parse()
        .map_err(|e: aved::units::ParseDurationError| e.to_string())
}

fn design(flags: &Flags<'_>) -> Result<(), String> {
    let infrastructure = load_infrastructure(flags)?;
    let service = load_service(flags)?;
    infrastructure.validate().map_err(|e| e.to_string())?;
    let explain = flags.has("--explain");

    let requirement =
        if let Some(path) = flags.value("--requirement") {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            aved::spec::parse_requirement(&text).map_err(|e| format!("{path}: {e}"))?
        } else {
            match (
                flags.value("--load"),
                flags.value("--max-downtime"),
                flags.value("--max-execution-time"),
            ) {
                (Some(load), Some(downtime), None) => {
                    let load: f64 = load.parse().map_err(|_| "bad --load value")?;
                    ServiceRequirement::enterprise(load, parse_duration(downtime)?)
                }
                (None, None, Some(t)) => ServiceRequirement::job(parse_duration(t)?),
                _ => return Err(
                    "need --requirement FILE, or --load + --max-downtime, or --max-execution-time"
                        .into(),
                ),
            }
        };

    let mut options = SearchOptions::default();
    if let Some(v) = flags.value("--max-spares") {
        options.max_spares = v.parse().map_err(|_| "bad --max-spares value")?;
    }
    if let Some(v) = flags.value("--max-extra") {
        options.max_extra_active = v.parse().map_err(|_| "bad --max-extra value")?;
    }
    parse_pins(flags, &mut options)?;

    let mut aved = Aved::new(infrastructure)
        .with_catalog(aved::scenario::catalog())
        .with_search_options(options);
    match flags.value("--engine").unwrap_or("decomp") {
        "decomp" => aved = aved.with_engine(DecompositionEngine::default()),
        "ctmc" => aved = aved.with_engine(CtmcEngine::default()),
        "sim" => aved = aved.with_engine(SimulationEngine::new(42).with_years(2000.0)),
        other => return Err(format!("unknown engine {other:?}")),
    }

    match aved
        .design(&service, &requirement)
        .map_err(|e| e.to_string())?
    {
        None => {
            println!("no design within the search bounds satisfies the requirement");
            Ok(())
        }
        Some(report) => {
            println!("minimum-cost design: {} per year", report.cost());
            if let Some(dt) = report.annual_downtime() {
                println!("expected annual downtime: {:.2} min", dt.minutes());
            }
            if let Some(t) = report.expected_job_time() {
                println!("expected job completion: {:.2} h", t.hours());
            }
            for tier in report.design().tiers() {
                println!("  {tier}");
            }
            if explain {
                let text = aved::explain_design(aved.infrastructure(), &service, &report)
                    .map_err(|e| e.to_string())?;
                println!("\n{text}");
            }
            Ok(())
        }
    }
}

fn parse_pins(flags: &Flags<'_>, options: &mut SearchOptions) -> Result<(), String> {
    for pin in flags.values("--pin") {
        let (target, value) = pin
            .split_once('=')
            .ok_or("pins look like MECH.PARAM=VALUE")?;
        let (mech, param) = target
            .split_once('.')
            .ok_or("pins look like MECH.PARAM=VALUE")?;
        let value = match value.parse::<Duration>() {
            Ok(d) => ParamValue::Duration(d),
            Err(_) => ParamValue::Level(value.to_owned()),
        };
        *options = options.clone().with_pin(mech, param, value);
    }
    Ok(())
}

/// The cost/downtime Pareto frontier of one tier at a fixed load: the data
/// a designer needs to pick their own point on the tradeoff.
fn sweep(flags: &Flags<'_>) -> Result<(), String> {
    use aved::avail::DecompositionEngine;
    use aved::search::{tier_pareto_frontier, CachingEngine, EvalContext};

    let infrastructure = load_infrastructure(flags)?;
    let service = load_service(flags)?;
    infrastructure.validate().map_err(|e| e.to_string())?;
    let tier = flags.value("--tier").ok_or("missing --tier NAME")?;
    let load: f64 = flags
        .value("--load")
        .ok_or("missing --load UNITS")?
        .parse()
        .map_err(|_| "bad --load value")?;
    let mut options = SearchOptions::default();
    if let Some(v) = flags.value("--max-spares") {
        options.max_spares = v.parse().map_err(|_| "bad --max-spares value")?;
    }
    if let Some(v) = flags.value("--max-extra") {
        options.max_extra_active = v.parse().map_err(|_| "bad --max-extra value")?;
    }
    parse_pins(flags, &mut options)?;

    let catalog = aved::scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let frontier = tier_pareto_frontier(&ctx, tier, load, &options).map_err(|e| e.to_string())?;
    if frontier.is_empty() {
        println!("no design of tier {tier} can support load {load}");
        return Ok(());
    }
    println!("cost/downtime frontier of tier {tier} at load {load}:");
    println!("{:>12} {:>16}   design", "cost ($/y)", "downtime (m/y)");
    for e in &frontier {
        println!(
            "{:>12.0} {:>16.3}   {}",
            e.cost().dollars(),
            e.annual_downtime().minutes(),
            e.design(),
        );
    }
    Ok(())
}

fn export_markov(flags: &Flags<'_>) -> Result<(), String> {
    use aved::avail::{derive_tier_model, export_parameters, export_sharpe_markov, CtmcEngine};
    use aved::model::{FailureScope, Sizing, TierDesign};

    let infrastructure = load_infrastructure(flags)?;
    infrastructure.validate().map_err(|e| e.to_string())?;
    let resource = flags.value("--resource").ok_or("missing --resource NAME")?;
    let n: u32 = flags
        .value("--active")
        .ok_or("missing --active N")?
        .parse()
        .map_err(|_| "bad --active value")?;
    let m: u32 = flags
        .value("--min")
        .ok_or("missing --min N")?
        .parse()
        .map_err(|_| "bad --min value")?;
    let s: u32 = flags
        .value("--spares")
        .map_or(Ok(0), str::parse)
        .map_err(|_| "bad --spares value")?;

    let mut td = TierDesign::new("export", resource, n, s);
    for pin in flags.values("--pin") {
        let (target, value) = pin
            .split_once('=')
            .ok_or("pins look like MECH.PARAM=VALUE")?;
        let (mech, param) = target
            .split_once('.')
            .ok_or("pins look like MECH.PARAM=VALUE")?;
        let value = match value.parse::<Duration>() {
            Ok(d) => ParamValue::Duration(d),
            Err(_) => ParamValue::Level(value.to_owned()),
        };
        td = td.with_setting(mech, param, value);
    }

    let model = derive_tier_model(
        &infrastructure,
        &td,
        Sizing::Dynamic,
        FailureScope::Resource,
        m,
    )
    .map_err(|e| e.to_string())?;
    println!("{}", export_parameters(&model));
    let engine = CtmcEngine::default();
    print!(
        "{}",
        export_sharpe_markov(&engine, &model).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn check(flags: &Flags<'_>) -> Result<(), String> {
    let infrastructure = load_infrastructure(flags)?;
    infrastructure.validate().map_err(|e| e.to_string())?;
    println!(
        "infrastructure OK: {} components, {} mechanisms, {} resources",
        infrastructure.components().count(),
        infrastructure.mechanisms().count(),
        infrastructure.resources().count(),
    );
    if flags.value("--service").is_some() {
        let service = load_service(flags)?;
        for tier in service.tiers() {
            for opt in tier.options() {
                if infrastructure.resource(opt.resource().as_str()).is_none() {
                    return Err(format!(
                        "tier {} references unknown resource {}",
                        tier.name(),
                        opt.resource()
                    ));
                }
            }
        }
        println!(
            "service {} OK: {} tier(s)",
            service.name(),
            service.tiers().len()
        );
    }
    Ok(())
}

fn dump(flags: &Flags<'_>) -> Result<(), String> {
    let infrastructure = load_infrastructure(flags)?;
    print!("{}", aved::spec::write_infrastructure(&infrastructure));
    Ok(())
}
