//! Human-readable design reports: what was selected, what it costs, and
//! which failure modes drive the remaining downtime.

use std::fmt::Write as _;

use aved_avail::{derive_tier_model, DecompositionEngine};
use aved_model::{tier_design_cost, Infrastructure, Service, TierDesign};
use aved_search::SearchError;
use aved_units::MINUTES_PER_YEAR;

use crate::DesignReport;

/// Renders a multi-section text report for a completed design: per tier,
/// the configuration, the itemized cost, and the per-failure-class
/// downtime contributions (largest first) that explain where the residual
/// downtime comes from.
///
/// # Errors
///
/// Returns [`SearchError`] if the design references entities missing from
/// the models (it should not, for reports produced by
/// [`Aved::design`](crate::Aved::design) with the same inputs).
///
/// # Examples
///
/// ```
/// use aved::{Aved, ServiceRequirement, scenario};
/// use aved::units::Duration;
///
/// let infrastructure = scenario::infrastructure()?;
/// let service = scenario::ecommerce()?;
/// let aved = Aved::new(infrastructure.clone()).with_catalog(scenario::catalog());
/// let req = ServiceRequirement::enterprise(400.0, Duration::from_mins(500.0));
/// let report = aved.design(&service, &req)?.expect("satisfiable");
/// let text = aved::explain_design(&infrastructure, &service, &report)?;
/// assert!(text.contains("downtime contributions"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explain_design(
    infrastructure: &Infrastructure,
    service: &Service,
    report: &DesignReport,
) -> Result<String, SearchError> {
    let mut out = String::new();
    let _ = writeln!(out, "== Aved design report ==");
    let _ = writeln!(out, "total annual cost: {}", report.cost());
    if let Some(dt) = report.annual_downtime() {
        let _ = writeln!(out, "expected annual downtime: {:.2} min", dt.minutes());
    }
    if let Some(t) = report.expected_job_time() {
        let _ = writeln!(out, "expected job completion: {:.2} h", t.hours());
    }
    for td in report.design().tiers() {
        explain_tier(&mut out, infrastructure, service, td)?;
    }
    Ok(out)
}

fn explain_tier(
    out: &mut String,
    infrastructure: &Infrastructure,
    service: &Service,
    td: &TierDesign,
) -> Result<(), SearchError> {
    let _ = writeln!(out, "\n-- {td}");
    let cost = tier_design_cost(infrastructure, td)?;
    let _ = writeln!(
        out,
        "   cost: active {} + spares {} + mechanisms {} = {}",
        cost.active_components,
        cost.spare_components,
        cost.mechanisms,
        cost.total()
    );

    // The availability model needs the tier's option for sizing/scope; if
    // the tier is absent from the service (hand-built design), skip the
    // availability section rather than fail.
    let Some(tier) = service.tier(td.tier().as_str()) else {
        return Ok(());
    };
    let Some(option) = tier.option_for(td.resource().as_str()) else {
        return Ok(());
    };
    // Conservative m for the report: the design's own active count under
    // static/tier scope, otherwise the smallest allowed count (the report
    // does not know the load; contributions scale the same way).
    let model = derive_tier_model(
        infrastructure,
        td,
        option.sizing(),
        option.failure_scope(),
        td.n_active(),
    )?;
    let engine = DecompositionEngine::default();
    let mut parts = engine.per_class(&model)?;
    parts.sort_by(|a, b| b.1.unavailability().total_cmp(&a.1.unavailability()));
    let total: f64 = parts.iter().map(|(_, r)| r.unavailability()).sum();
    let _ = writeln!(out, "   downtime contributions (m = n worst case):");
    for (label, r) in &parts {
        let minutes = r.unavailability() * MINUTES_PER_YEAR;
        let share = if total > 0.0 {
            100.0 * r.unavailability() / total
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "     {label:<24} {minutes:>10.2} min/yr  ({share:>5.1}%)"
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use crate::{Aved, SearchOptions, ServiceRequirement};
    use aved_units::Duration;

    #[test]
    fn report_names_dominant_failure_mode() {
        let infrastructure = scenario::infrastructure().unwrap();
        let service = scenario::ecommerce().unwrap();
        let aved = Aved::new(infrastructure.clone())
            .with_catalog(scenario::catalog())
            .with_search_options(SearchOptions {
                max_extra_active: 1,
                max_spares: 1,
                ..SearchOptions::default()
            });
        let req = ServiceRequirement::enterprise(400.0, Duration::from_mins(3000.0));
        let report = aved.design(&service, &req).unwrap().unwrap();
        let text = explain_design(&infrastructure, &service, &report).unwrap();
        // Every tier appears with a cost line and a contributions table.
        for tier in ["web", "application", "database"] {
            assert!(text.contains(tier), "missing {tier} in:\n{text}");
        }
        assert!(text.contains("downtime contributions"));
        // The bronze-contract hardware repair dominates somewhere.
        assert!(text.contains("/hard"));
        assert!(text.contains('%'));
    }

    #[test]
    fn report_survives_designs_for_unknown_tiers() {
        let infrastructure = scenario::infrastructure().unwrap();
        let service = scenario::ecommerce().unwrap();
        let report = DesignReport::for_tests(
            aved_model::Design::new(vec![aved_model::TierDesign::new("ghost", "rC", 1, 0)
                .with_setting(
                    "maintenanceA",
                    "level",
                    aved_model::ParamValue::Level("bronze".into()),
                )]),
            aved_units::Money::from_dollars(1.0),
        );
        let text = explain_design(&infrastructure, &service, &report).unwrap();
        assert!(text.contains("ghost"));
        assert!(!text.contains("downtime contributions"));
    }
}
