//! Event rates (reciprocal durations) for Markov-model transition matrices.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

use serde::{Deserialize, Serialize};

use crate::Duration;

/// An event rate: expected number of events per unit time.
///
/// Rates are the natural currency of continuous-time Markov chains: a
/// component with MTBF *T* fails at rate *1/T*, and `k` identical failed
/// components repair at `k` times the single-component repair rate.
///
/// Internally stored as events **per hour**: availability models mix
/// quantities from seconds (startup latencies) to years (MTBFs), and
/// per-hour keeps typical magnitudes near 1 for numerical health.
///
/// # Examples
///
/// ```
/// use aved_units::{Duration, Rate};
///
/// let mtbf = Duration::from_days(650.0);
/// let lambda = mtbf.rate();
/// // Two active machines fail at twice the rate of one.
/// let tier_rate = lambda * 2.0;
/// assert!((tier_rate.mean_time().days() - 325.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Rate {
    per_hour: f64,
}

impl Rate {
    /// The zero rate (events never occur).
    pub const ZERO: Rate = Rate { per_hour: 0.0 };

    /// Creates a rate of `events` per hour.
    ///
    /// # Panics
    ///
    /// Panics if `events` is negative or NaN.
    #[must_use]
    pub fn per_hour(events: f64) -> Rate {
        assert!(
            events >= 0.0 && !events.is_nan(),
            "rate must be non-negative, got {events}"
        );
        Rate { per_hour: events }
    }

    /// Creates the rate corresponding to one event per `seconds` seconds.
    ///
    /// Zero seconds produces an infinite rate; callers that cannot tolerate
    /// infinities (linear solvers) must special-case it, which the
    /// availability engines do by treating zero-MTTR failure modes as
    /// restart-class events.
    #[must_use]
    pub fn per_seconds(seconds: f64) -> Rate {
        if seconds == 0.0 {
            Rate {
                per_hour: f64::INFINITY,
            }
        } else {
            Rate::per_hour(3600.0 / seconds)
        }
    }

    /// Events per hour.
    #[must_use]
    pub fn per_hour_value(self) -> f64 {
        self.per_hour
    }

    /// Events per year (8760 hours).
    #[must_use]
    pub fn per_year(self) -> f64 {
        self.per_hour * crate::HOURS_PER_YEAR
    }

    /// The mean time between events (reciprocal of the rate).
    #[must_use]
    pub fn mean_time(self) -> Duration {
        if self.per_hour == 0.0 {
            Duration::from_secs(f64::INFINITY)
        } else {
            Duration::from_hours(1.0 / self.per_hour)
        }
    }

    /// Whether this rate is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.per_hour == 0.0
    }

    /// Whether this rate is finite (false for instant events).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.per_hour.is_finite()
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate::per_hour(self.per_hour + rhs.per_hour)
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, rhs: Rate) {
        self.per_hour += rhs.per_hour;
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: f64) -> Rate {
        Rate::per_hour(self.per_hour * rhs)
    }
}

impl Mul<Rate> for f64 {
    type Output = Rate;
    fn mul(self, rhs: Rate) -> Rate {
        rhs * self
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, rhs: f64) -> Rate {
        Rate::per_hour(self.per_hour / rhs)
    }
}

impl Div<Rate> for Rate {
    type Output = f64;
    /// Dimensionless ratio of two rates.
    fn div(self, rhs: Rate) -> f64 {
        self.per_hour / rhs.per_hour
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, Add::add)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/h", self.per_hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_from_duration_reciprocal() {
        let d = Duration::from_hours(4.0);
        assert!((d.rate().per_hour_value() - 0.25).abs() < 1e-12);
        assert_eq!(d.rate().mean_time(), d);
    }

    #[test]
    fn zero_duration_gives_infinite_rate() {
        let r = Duration::ZERO.rate();
        assert!(!r.is_finite());
    }

    #[test]
    fn zero_rate_gives_infinite_mean_time() {
        assert!(Rate::ZERO.mean_time().seconds().is_infinite());
    }

    #[test]
    fn rates_add_linearly() {
        let a = Rate::per_hour(0.5);
        let b = Rate::per_hour(1.5);
        assert_eq!((a + b).per_hour_value(), 2.0);
        assert_eq!((a * 4.0).per_hour_value(), 2.0);
        assert_eq!((b / 3.0).per_hour_value(), 0.5);
        assert_eq!(b / a, 3.0);
    }

    #[test]
    fn per_year_conversion() {
        assert!((Rate::per_hour(1.0).per_year() - 8760.0).abs() < 1e-9);
    }

    #[test]
    fn sum_of_rates() {
        let total: Rate = [Rate::per_hour(1.0), Rate::per_hour(2.0)].into_iter().sum();
        assert_eq!(total.per_hour_value(), 3.0);
    }

    #[test]
    fn display_shows_unit() {
        assert_eq!(Rate::per_hour(2.0).to_string(), "2/h");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = Rate::per_hour(-1.0);
    }

    proptest! {
        #[test]
        fn mean_time_is_inverse(hours in 1e-6_f64..1e9) {
            let d = Duration::from_hours(hours);
            let back = d.rate().mean_time();
            prop_assert!((back.hours() - hours).abs() <= 1e-9 * hours);
        }

        #[test]
        fn n_component_scaling(hours in 1e-3_f64..1e6, n in 1_u32..1000) {
            let single = Duration::from_hours(hours).rate();
            let combined = single * f64::from(n);
            prop_assert!(
                (combined.mean_time().hours() - hours / f64::from(n)).abs()
                    <= 1e-9 * hours
            );
        }
    }
}
