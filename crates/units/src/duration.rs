//! Time spans with the paper's `s`/`m`/`h`/`d` unit syntax.

use std::error::Error;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::Rate;

/// A non-negative span of time.
///
/// Internally stored as seconds in an `f64`, which comfortably covers the
/// range used by availability models (sub-second detection latencies up to
/// multi-year MTBFs) with plenty of precision.
///
/// `Duration` supports the textual syntax of the Aved specification language:
/// a decimal number followed by a one-letter unit, one of `s` (seconds), `m`
/// (minutes), `h` (hours) or `d` (days). A bare `0` without a unit is also
/// accepted because the paper's example specifications write `mttr=0`.
///
/// # Examples
///
/// ```
/// use aved_units::Duration;
///
/// let detect: Duration = "2m".parse()?;
/// let repair: Duration = "38h".parse()?;
/// assert_eq!((detect + repair).minutes(), 2.0 + 38.0 * 60.0);
/// # Ok::<(), aved_units::ParseDurationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Duration {
    seconds: f64,
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration { seconds: 0.0 };

    /// Creates a duration from a number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or NaN; durations are non-negative by
    /// construction so that availability math never sees negative time.
    #[must_use]
    pub fn from_secs(seconds: f64) -> Duration {
        assert!(
            seconds >= 0.0 && !seconds.is_nan(),
            "duration must be non-negative and finite-or-inf, got {seconds}"
        );
        Duration { seconds }
    }

    /// Creates a duration from a number of minutes.
    #[must_use]
    pub fn from_mins(minutes: f64) -> Duration {
        Duration::from_secs(minutes * 60.0)
    }

    /// Creates a duration from a number of hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Duration {
        Duration::from_secs(hours * 3600.0)
    }

    /// Creates a duration from a number of days.
    #[must_use]
    pub fn from_days(days: f64) -> Duration {
        Duration::from_secs(days * 86_400.0)
    }

    /// Creates a duration from a number of (8760-hour) years.
    #[must_use]
    pub fn from_years(years: f64) -> Duration {
        Duration::from_secs(years * crate::SECONDS_PER_YEAR)
    }

    /// The duration expressed in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.seconds
    }

    /// The duration expressed in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.seconds / 60.0
    }

    /// The duration expressed in hours.
    #[must_use]
    pub fn hours(self) -> f64 {
        self.seconds / 3600.0
    }

    /// The duration expressed in days.
    #[must_use]
    pub fn days(self) -> f64 {
        self.seconds / 86_400.0
    }

    /// The duration expressed in 8760-hour years.
    #[must_use]
    pub fn years(self) -> f64 {
        self.seconds / crate::SECONDS_PER_YEAR
    }

    /// Whether this is the zero duration.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.seconds == 0.0
    }

    /// The event rate corresponding to one event per this duration.
    ///
    /// A zero duration maps to an infinite rate; availability models treat
    /// `mttr=0` components as repairing "instantly" relative to the model's
    /// resolution, so the infinity never propagates into a solver (callers
    /// special-case zero repair times).
    #[must_use]
    pub fn rate(self) -> Rate {
        Rate::per_seconds(self.seconds)
    }

    /// Element-wise minimum of two durations.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        if self.seconds <= other.seconds {
            self
        } else {
            other
        }
    }

    /// Element-wise maximum of two durations.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        if self.seconds >= other.seconds {
            self
        } else {
            other
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_secs(self.seconds + rhs.seconds)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.seconds += rhs.seconds;
    }
}

impl Sub for Duration {
    type Output = Duration;
    /// Saturating subtraction: durations never go negative.
    fn sub(self, rhs: Duration) -> Duration {
        Duration::from_secs((self.seconds - rhs.seconds).max(0.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs(self.seconds * rhs)
    }
}

impl Mul<Duration> for f64 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        rhs * self
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs(self.seconds / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    /// Dimensionless ratio of two durations.
    fn div(self, rhs: Duration) -> f64 {
        self.seconds / rhs.seconds
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Duration {
    /// Formats using the largest unit that yields an integral value
    /// (`2m`, `38h`); for fractional durations, the largest unit with a
    /// value of at least one is used with Rust's shortest-round-trip float
    /// formatting, so `parse(display(d))` always recovers `d` to within a
    /// unit conversion's rounding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.seconds;
        if s == 0.0 {
            return write!(f, "0s");
        }
        for (unit, factor) in [("d", 86_400.0), ("h", 3600.0), ("m", 60.0)] {
            let v = s / factor;
            if v >= 1.0 && (v - v.round()).abs() < 1e-9 {
                return write!(f, "{}{}", v.round(), unit);
            }
        }
        if (s - s.round()).abs() < 1e-9 {
            return write!(f, "{}s", s.round());
        }
        for (unit, factor) in [("d", 86_400.0), ("h", 3600.0), ("m", 60.0)] {
            let v = s / factor;
            if v >= 1.0 {
                return write!(f, "{v}{unit}");
            }
        }
        write!(f, "{s}s")
    }
}

/// Error produced when parsing a [`Duration`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDurationError {
    input: String,
    reason: &'static str,
}

impl ParseDurationError {
    pub(crate) fn new(input: &str, reason: &'static str) -> ParseDurationError {
        ParseDurationError {
            input: input.to_owned(),
            reason,
        }
    }

    /// The offending input text.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseDurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid duration {:?}: {}", self.input, self.reason)
    }
}

impl Error for ParseDurationError {}

impl FromStr for Duration {
    type Err = ParseDurationError;

    fn from_str(s: &str) -> Result<Duration, ParseDurationError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseDurationError::new(s, "empty string"));
        }
        let (number, unit) = match s.char_indices().last() {
            Some((idx, c)) if c.is_ascii_alphabetic() => (&s[..idx], Some(c)),
            _ => (s, None),
        };
        let value: f64 = number
            .parse()
            .map_err(|_| ParseDurationError::new(s, "not a number"))?;
        if value < 0.0 {
            return Err(ParseDurationError::new(s, "duration must be non-negative"));
        }
        let seconds = match unit {
            Some('s') => value,
            Some('m') => value * 60.0,
            Some('h') => value * 3600.0,
            Some('d') => value * 86_400.0,
            Some(_) => {
                return Err(ParseDurationError::new(
                    s,
                    "unknown unit (expected s, m, h or d)",
                ))
            }
            // The paper's specs write bare `0` for zero durations
            // (`mttr=0`); accept a unit-less zero but nothing else.
            None if value == 0.0 => 0.0,
            None => {
                return Err(ParseDurationError::new(
                    s,
                    "missing unit (expected s, m, h or d)",
                ))
            }
        };
        Ok(Duration::from_secs(seconds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_all_units() {
        assert_eq!(
            "30s".parse::<Duration>().unwrap(),
            Duration::from_secs(30.0)
        );
        assert_eq!("2m".parse::<Duration>().unwrap(), Duration::from_mins(2.0));
        assert_eq!("8h".parse::<Duration>().unwrap(), Duration::from_hours(8.0));
        assert_eq!(
            "650d".parse::<Duration>().unwrap(),
            Duration::from_days(650.0)
        );
    }

    #[test]
    fn parse_fractional_values() {
        assert_eq!(
            "1.5h".parse::<Duration>().unwrap(),
            Duration::from_mins(90.0)
        );
        assert_eq!(
            "0.5m".parse::<Duration>().unwrap(),
            Duration::from_secs(30.0)
        );
    }

    #[test]
    fn parse_bare_zero() {
        assert_eq!("0".parse::<Duration>().unwrap(), Duration::ZERO);
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert!("".parse::<Duration>().is_err());
        assert!("5".parse::<Duration>().is_err());
        assert!("5x".parse::<Duration>().is_err());
        assert!("-2m".parse::<Duration>().is_err());
        assert!("abc".parse::<Duration>().is_err());
        assert!("m".parse::<Duration>().is_err());
    }

    #[test]
    fn parse_error_reports_input() {
        let err = "5x".parse::<Duration>().unwrap_err();
        assert_eq!(err.input(), "5x");
        assert!(err.to_string().contains("5x"));
    }

    #[test]
    fn display_round_trips_spec_syntax() {
        for text in ["30s", "2m", "8h", "650d", "90m"] {
            let d: Duration = text.parse().unwrap();
            let shown = d.to_string();
            let re: Duration = shown.parse().unwrap();
            assert_eq!(d, re, "{text} -> {shown}");
        }
    }

    #[test]
    fn display_prefers_largest_exact_unit() {
        assert_eq!(Duration::from_days(2.0).to_string(), "2d");
        assert_eq!(Duration::from_hours(36.0).to_string(), "36h");
        assert_eq!(Duration::from_secs(90.0).to_string(), "90s");
        assert_eq!(Duration::ZERO.to_string(), "0s");
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_mins(2.0);
        let b = Duration::from_secs(30.0);
        assert_eq!((a + b).seconds(), 150.0);
        assert_eq!((a - b).seconds(), 90.0);
        // saturating subtraction
        assert_eq!((b - a).seconds(), 0.0);
        assert_eq!((a * 2.0).minutes(), 4.0);
        assert_eq!((a / 2.0).minutes(), 1.0);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [
            Duration::from_secs(30.0),
            Duration::from_mins(2.0),
            Duration::from_secs(30.0),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.minutes(), 3.0);
    }

    #[test]
    fn unit_accessors_consistent() {
        let d = Duration::from_days(1.0);
        assert_eq!(d.hours(), 24.0);
        assert_eq!(d.minutes(), 1440.0);
        assert_eq!(d.seconds(), 86_400.0);
        assert!((Duration::from_years(1.0).hours() - 8760.0).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let a = Duration::from_secs(10.0);
        let b = Duration::from_secs(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_construction_panics() {
        let _ = Duration::from_secs(-1.0);
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(secs in 0.0_f64..1e9) {
            let d = Duration::from_secs(secs);
            let re: Duration = d.to_string().parse().unwrap();
            // Display may round to the nearest representable unit string; the
            // round trip must be within a part in 1e9 of the original.
            prop_assert!((re.seconds() - d.seconds()).abs() <= 1e-6 * d.seconds().max(1.0));
        }

        #[test]
        fn addition_commutes(a in 0.0_f64..1e9, b in 0.0_f64..1e9) {
            let (a, b) = (Duration::from_secs(a), Duration::from_secs(b));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn subtraction_saturates(a in 0.0_f64..1e9, b in 0.0_f64..1e9) {
            let (a, b) = (Duration::from_secs(a), Duration::from_secs(b));
            prop_assert!((a - b).seconds() >= 0.0);
        }
    }
}
