//! Annualized monetary amounts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An annualized dollar amount.
///
/// Aved's cost model (paper §3.1.1) annualizes every cost: capital costs are
/// divided by the component's useful lifetime and added to annual operating
/// costs (energy, licenses, maintenance contracts). All costs flowing through
/// the engine are therefore directly comparable `$ / year` figures, and
/// design cost is a plain sum of `Money` values.
///
/// Unlike [`Duration`](crate::Duration) and [`Rate`](crate::Rate), `Money`
/// may be negative: cost *differences* (e.g. the Fig. 8 "additional annual
/// cost" curves) are first-class values.
///
/// # Examples
///
/// ```
/// use aved_units::Money;
///
/// let machine = Money::from_dollars(2640.0);
/// let contract = Money::from_dollars(380.0);
/// let design = machine * 3.0 + contract * 3.0;
/// assert_eq!(design.dollars(), 9060.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Money {
    dollars: f64,
}

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money { dollars: 0.0 };

    /// Creates an amount from dollars.
    ///
    /// # Panics
    ///
    /// Panics if `dollars` is NaN.
    #[must_use]
    pub fn from_dollars(dollars: f64) -> Money {
        assert!(!dollars.is_nan(), "money must not be NaN");
        Money { dollars }
    }

    /// The amount in dollars.
    #[must_use]
    pub fn dollars(self) -> f64 {
        self.dollars
    }

    /// Whether the amount is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.dollars == 0.0
    }

    /// Element-wise minimum.
    #[must_use]
    pub fn min(self, other: Money) -> Money {
        if self.dollars <= other.dollars {
            self
        } else {
            other
        }
    }

    /// Element-wise maximum.
    #[must_use]
    pub fn max(self, other: Money) -> Money {
        if self.dollars >= other.dollars {
            self
        } else {
            other
        }
    }

    /// Total order for sorting designs by cost.
    ///
    /// `Money` holds an `f64` and is only `PartialOrd`; this helper provides
    /// the total order (NaN is excluded by construction).
    #[must_use]
    pub fn total_cmp(&self, other: &Money) -> std::cmp::Ordering {
        self.dollars.total_cmp(&other.dollars)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money::from_dollars(self.dollars + rhs.dollars)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.dollars += rhs.dollars;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money::from_dollars(self.dollars - rhs.dollars)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.dollars -= rhs.dollars;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money::from_dollars(-self.dollars)
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    fn mul(self, rhs: f64) -> Money {
        Money::from_dollars(self.dollars * rhs)
    }
}

impl Mul<Money> for f64 {
    type Output = Money;
    fn mul(self, rhs: Money) -> Money {
        rhs * self
    }
}

impl Div<f64> for Money {
    type Output = Money;
    fn div(self, rhs: f64) -> Money {
        Money::from_dollars(self.dollars / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dollars < 0.0 {
            write!(f, "-${:.2}", -self.dollars)
        } else {
            write!(f, "${:.2}", self.dollars)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic() {
        let a = Money::from_dollars(100.0);
        let b = Money::from_dollars(40.0);
        assert_eq!((a + b).dollars(), 140.0);
        assert_eq!((a - b).dollars(), 60.0);
        assert_eq!((b - a).dollars(), -60.0);
        assert_eq!((a * 2.5).dollars(), 250.0);
        assert_eq!((a / 4.0).dollars(), 25.0);
        assert_eq!((-a).dollars(), -100.0);
    }

    #[test]
    fn sum_and_zero() {
        let total: Money = [Money::from_dollars(1.0), Money::from_dollars(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total.dollars(), 3.0);
        assert!(Money::ZERO.is_zero());
    }

    #[test]
    fn display_formats_negatives() {
        assert_eq!(Money::from_dollars(1234.5).to_string(), "$1234.50");
        assert_eq!(Money::from_dollars(-5.0).to_string(), "-$5.00");
    }

    #[test]
    fn total_cmp_sorts() {
        let mut v = vec![
            Money::from_dollars(3.0),
            Money::from_dollars(-1.0),
            Money::from_dollars(2.0),
        ];
        v.sort_by(Money::total_cmp);
        assert_eq!(
            v,
            vec![
                Money::from_dollars(-1.0),
                Money::from_dollars(2.0),
                Money::from_dollars(3.0)
            ]
        );
    }

    #[test]
    fn min_max() {
        let a = Money::from_dollars(1.0);
        let b = Money::from_dollars(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_money_panics() {
        let _ = Money::from_dollars(f64::NAN);
    }

    proptest! {
        #[test]
        fn addition_associative_enough(a in -1e9_f64..1e9, b in -1e9_f64..1e9, c in -1e9_f64..1e9) {
            let (ma, mb, mc) = (Money::from_dollars(a), Money::from_dollars(b), Money::from_dollars(c));
            let left = (ma + mb) + mc;
            let right = ma + (mb + mc);
            prop_assert!((left.dollars() - right.dollars()).abs() <= 1e-3);
        }

        #[test]
        fn subtraction_inverts_addition(a in -1e9_f64..1e9, b in -1e9_f64..1e9) {
            let (ma, mb) = (Money::from_dollars(a), Money::from_dollars(b));
            prop_assert!(((ma + mb - mb).dollars() - a).abs() <= 1e-3);
        }
    }
}
