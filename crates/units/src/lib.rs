//! Physical quantities used throughout the Aved design-automation engine.
//!
//! The Aved specification language (see the `aved-spec` crate) expresses
//! time quantities with single-letter unit suffixes (`30s`, `2m`, `8h`,
//! `650d`) and money as plain annualized dollar amounts. This crate provides
//! strongly-typed wrappers for these quantities so that the rest of the
//! engine cannot accidentally confuse, say, a repair *time* with a repair
//! *rate*, or an annual cost with a one-time cost.
//!
//! # Examples
//!
//! ```
//! use aved_units::{Duration, Rate, Money};
//!
//! let mtbf: Duration = "650d".parse()?;
//! let failure_rate: Rate = mtbf.rate();
//! assert!((failure_rate.per_hour_value() - 1.0 / (650.0 * 24.0)).abs() < 1e-12);
//!
//! let cost = Money::from_dollars(2400.0) + Money::from_dollars(240.0);
//! assert_eq!(cost.dollars(), 2640.0);
//! # Ok::<(), aved_units::ParseDurationError>(())
//! ```

mod duration;
mod money;
mod rate;

pub use duration::{Duration, ParseDurationError};
pub use money::Money;
pub use rate::Rate;

/// Hours in the (non-leap) year used for annual-downtime accounting.
///
/// The paper reports downtime as "annual downtime" in minutes; all engines in
/// this workspace use the conventional 8760-hour year.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Seconds in the accounting year ([`HOURS_PER_YEAR`] hours).
pub const SECONDS_PER_YEAR: f64 = HOURS_PER_YEAR * 3600.0;

/// Minutes in the accounting year ([`HOURS_PER_YEAR`] hours).
pub const MINUTES_PER_YEAR: f64 = HOURS_PER_YEAR * 60.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_constants_consistent() {
        assert_eq!(SECONDS_PER_YEAR, HOURS_PER_YEAR * 3600.0);
        assert_eq!(MINUTES_PER_YEAR, HOURS_PER_YEAR * 60.0);
        assert_eq!(HOURS_PER_YEAR, 365.0 * 24.0);
    }
}
