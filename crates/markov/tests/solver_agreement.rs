//! Integration tests: the three steady-state solvers must agree with each
//! other — and with theory — across structured chain families.

use aved_markov::{
    birth_death, transient, Ctmc, CtmcBuilder, DenseSolver, GaussSeidelSolver, PowerSolver,
    SteadyStateSolver,
};
use proptest::prelude::*;

fn all_solvers() -> Vec<(&'static str, Box<dyn SteadyStateSolver>)> {
    vec![
        ("dense", Box::new(DenseSolver::new())),
        ("gauss-seidel", Box::new(GaussSeidelSolver::default())),
        ("power", Box::new(PowerSolver::new(1e-14, 5_000_000))),
    ]
}

fn assert_all_agree(ctmc: &Ctmc, tol: f64) -> Vec<f64> {
    let reference = DenseSolver::new().steady_state(ctmc).unwrap();
    for (name, solver) in all_solvers() {
        let pi = solver.steady_state(ctmc).unwrap();
        assert_eq!(pi.len(), reference.len());
        for (i, (a, b)) in reference.iter().zip(pi.iter()).enumerate() {
            assert!(
                (a - b).abs() < tol,
                "{name} disagrees at state {i}: {a} vs {b}"
            );
        }
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{name} not normalized: {sum}");
    }
    reference
}

/// Machine-repairman chain: N machines, R repair crews.
fn repairman(n: usize, crews: usize, lambda: f64, mu: f64) -> Ctmc {
    let mut b = CtmcBuilder::new(n + 1);
    for k in 0..n {
        b.rate(k, k + 1, (n - k) as f64 * lambda);
        b.rate(k + 1, k, (k + 1).min(crews) as f64 * mu);
    }
    b.build().unwrap()
}

#[test]
fn repairman_chains_agree_across_solvers() {
    for (n, crews) in [(5, 1), (5, 5), (40, 3)] {
        let ctmc = repairman(n, crews, 0.02, 1.0);
        assert_all_agree(&ctmc, 1e-9);
    }
}

#[test]
fn per_unit_repair_matches_birth_death_closed_form() {
    let (n, lambda, mu) = (12, 0.05, 2.0);
    let ctmc = repairman(n, n, lambda, mu);
    let pi = assert_all_agree(&ctmc, 1e-9);
    let births: Vec<f64> = (0..n).map(|k| (n - k) as f64 * lambda).collect();
    let deaths: Vec<f64> = (0..n).map(|k| (k + 1) as f64 * mu).collect();
    let closed = birth_death::steady_state(&births, &deaths).unwrap();
    for (a, b) in pi.iter().zip(closed.iter()) {
        assert!((a - b).abs() < 1e-10);
    }
}

/// A two-dimensional chain (tandem repair queues) exercises non-birth-death
/// structure: state (i, j) with 0 <= i, j <= c.
fn tandem(c: usize, a: f64, s1: f64, s2: f64) -> Ctmc {
    let idx = |i: usize, j: usize| i * (c + 1) + j;
    let mut b = CtmcBuilder::new((c + 1) * (c + 1));
    for i in 0..=c {
        for j in 0..=c {
            if i < c {
                b.rate(idx(i, j), idx(i + 1, j), a); // arrival to stage 1
            }
            if i > 0 && j < c {
                b.rate(idx(i, j), idx(i - 1, j + 1), s1); // move to stage 2
            }
            if j > 0 {
                b.rate(idx(i, j), idx(i, j - 1), s2); // departure
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn tandem_queue_chain_agrees_across_solvers() {
    let ctmc = tandem(4, 0.8, 1.2, 1.0);
    assert_eq!(ctmc.n_states(), 25);
    assert_all_agree(&ctmc, 1e-8);
}

#[test]
fn transient_distribution_converges_to_every_solver() {
    let ctmc = tandem(3, 0.5, 1.0, 0.9);
    let mut initial = vec![0.0; ctmc.n_states()];
    initial[0] = 1.0;
    let at_t = transient::distribution_at(&ctmc, &initial, 2000.0, 1e-12).unwrap();
    let steady = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
    for (a, b) in at_t.iter().zip(steady.iter()) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }
}

#[test]
fn transient_handles_large_uniformization_products() {
    // Fast rates over a long horizon: Λt ~ 1e5. The Poisson tail bound
    // must terminate the sum despite accumulated rounding in the coverage
    // test.
    let mut b = CtmcBuilder::new(2);
    b.rate(0, 1, 2.0).rate(1, 0, 100.0);
    let ctmc = b.build().unwrap();
    let p = transient::distribution_at(&ctmc, &[1.0, 0.0], 1000.0, 1e-10).unwrap();
    let expect0 = 100.0 / 102.0;
    assert!((p[0] - expect0).abs() < 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random strongly-connected chains: all solvers agree.
    #[test]
    fn random_chains_agree(
        n in 2_usize..20,
        rates in proptest::collection::vec(0.01_f64..50.0, 3 * 20),
    ) {
        let mut b = CtmcBuilder::new(n);
        for i in 0..n {
            b.rate(i, (i + 1) % n, rates[i]);
            b.rate((i + 1) % n, i, rates[n + i]);
            let chord = (i * 5 + 2) % n;
            if chord != i {
                b.rate(i, chord, rates[2 * n + i]);
            }
        }
        let ctmc = b.build().unwrap();
        assert_all_agree(&ctmc, 1e-7);
    }

    /// Stationarity: starting *from* the stationary distribution, the
    /// transient distribution does not move.
    #[test]
    fn stationary_distribution_is_a_fixed_point(
        n in 2_usize..8,
        rates in proptest::collection::vec(0.1_f64..10.0, 2 * 8),
        t in 0.1_f64..50.0,
    ) {
        let mut b = CtmcBuilder::new(n);
        for i in 0..n {
            b.rate(i, (i + 1) % n, rates[i]);
            b.rate((i + 1) % n, i, rates[n + i]);
        }
        let ctmc = b.build().unwrap();
        let pi = DenseSolver::new().steady_state(&ctmc).unwrap();
        let moved = transient::distribution_at(&ctmc, &pi, t, 1e-12).unwrap();
        for (a, b) in pi.iter().zip(moved.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }
}
