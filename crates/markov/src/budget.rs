//! Cooperative resource budgets and cancellation for solvers and
//! state-space exploration.
//!
//! A [`SolveBudget`] bounds how much wall-clock time, how many sweeps, how
//! many explored states and how much CSR memory a computation may consume;
//! a [`CancelToken`] lets an external party (a signal handler, another
//! thread) request that the computation stop at its next checkpoint. Both
//! are checked *cooperatively*: the hot loops in the Gauss–Seidel and power
//! solvers and the breadth-first exploration frontier poll them at cheap
//! intervals (every 64 sweeps, every 256 dequeued states) so governance
//! costs nothing measurable when unlimited.
//!
//! Exhaustion is a first-class outcome, not a panic: the loop returns
//! [`MarkovError::BudgetExhausted`] naming the phase, the exhausted
//! resource and the progress made, or [`MarkovError::Cancelled`] when the
//! token fired. Callers route these through the same candidate-isolation
//! path as any other solve failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::MarkovError;

/// Which bounded resource a computation ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetResource {
    /// The wall-clock deadline passed.
    WallClock,
    /// The iterative-sweep cap was reached.
    Sweeps,
    /// The explored-state cap was reached.
    States,
    /// The estimated CSR memory cap was reached.
    CsrBytes,
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetResource::WallClock => write!(f, "wall-clock"),
            BudgetResource::Sweeps => write!(f, "sweep"),
            BudgetResource::States => write!(f, "explored-states"),
            BudgetResource::CsrBytes => write!(f, "csr-bytes"),
        }
    }
}

/// A shared, thread-safe cancellation flag.
///
/// Cloning shares the flag: every clone observes a `cancel` from any
/// other. The token is async-signal-safe to set (a single atomic store),
/// so a SIGINT handler can fire it directly.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Every computation holding a clone of this
    /// token stops at its next cooperative checkpoint.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](CancelToken::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, for wiring into contexts that can only store an
    /// `Arc<AtomicBool>` (e.g. a signal handler's static slot).
    #[must_use]
    pub fn flag(&self) -> &Arc<AtomicBool> {
        &self.flag
    }
}

impl PartialEq for CancelToken {
    /// Tokens are equal when they share the same underlying flag.
    fn eq(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// A cooperative resource budget for one solve or exploration.
///
/// All limits are optional; the default budget is unlimited and costs
/// nothing. Budgets are cheap to clone (the only shared part is the
/// cancellation flag) and are threaded *by parameter*, not stored in the
/// `Copy` solver configs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    candidate_timeout: Option<Duration>,
    max_sweeps: Option<u64>,
    max_states: Option<usize>,
    max_csr_bytes: Option<usize>,
    cancel: Option<CancelToken>,
}

impl SolveBudget {
    /// An unlimited budget: no deadline, no caps, no cancellation.
    #[must_use]
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// `true` when no limit and no cancellation token is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.candidate_timeout.is_none()
            && self.max_sweeps.is_none()
            && self.max_states.is_none()
            && self.max_csr_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Sets an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> SolveBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a per-candidate wall-clock allowance; [`for_candidate`]
    /// (SolveBudget::for_candidate) converts it to a deadline when the
    /// candidate's evaluation starts.
    #[must_use]
    pub fn with_candidate_timeout(mut self, timeout: Duration) -> SolveBudget {
        self.candidate_timeout = Some(timeout);
        self
    }

    /// Caps the total iterative sweeps of one solve attempt.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: u64) -> SolveBudget {
        self.max_sweeps = Some(max_sweeps);
        self
    }

    /// Caps the number of states a chain exploration may enumerate.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> SolveBudget {
        self.max_states = Some(max_states);
        self
    }

    /// Caps the estimated CSR memory of an explored chain.
    #[must_use]
    pub fn with_max_csr_bytes(mut self, max_csr_bytes: usize) -> SolveBudget {
        self.max_csr_bytes = Some(max_csr_bytes);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> SolveBudget {
        self.cancel = Some(cancel);
        self
    }

    /// The absolute deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-candidate wall-clock allowance, if any.
    #[must_use]
    pub fn candidate_timeout(&self) -> Option<Duration> {
        self.candidate_timeout
    }

    /// The sweep cap, if any.
    #[must_use]
    pub fn max_sweeps(&self) -> Option<u64> {
        self.max_sweeps
    }

    /// The explored-state cap, if any.
    #[must_use]
    pub fn max_states(&self) -> Option<usize> {
        self.max_states
    }

    /// The CSR memory cap, if any.
    #[must_use]
    pub fn max_csr_bytes(&self) -> Option<usize> {
        self.max_csr_bytes
    }

    /// The cancellation token, if any.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Derives the budget governing one candidate's evaluation, converting
    /// the per-candidate timeout into an absolute deadline starting *now*
    /// and keeping whichever deadline (global or per-candidate) is sooner.
    #[must_use]
    pub fn for_candidate(&self) -> SolveBudget {
        let mut b = self.clone();
        if let Some(timeout) = self.candidate_timeout {
            let candidate_deadline = Instant::now() + timeout;
            b.deadline = Some(match self.deadline {
                Some(d) => d.min(candidate_deadline),
                None => candidate_deadline,
            });
        }
        b
    }

    /// `true` once the cancellation token (if any) has fired.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// `true` once the deadline (if any) has passed.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// One cooperative checkpoint: fails with [`MarkovError::Cancelled`]
    /// if the token fired, or [`MarkovError::BudgetExhausted`] if the
    /// deadline passed. `progress` is whatever unit the phase counts
    /// (sweeps, states) and lands in the diagnostic.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`MarkovError`] when a limit tripped.
    pub fn checkpoint(&self, phase: &'static str, progress: u64) -> Result<(), MarkovError> {
        if self.is_cancelled() {
            return Err(MarkovError::Cancelled { phase });
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(MarkovError::BudgetExhausted {
                    phase,
                    resource: BudgetResource::WallClock,
                    progress,
                    limit: 0,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_always_passes() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.is_cancelled());
        assert!(!b.deadline_exceeded());
        b.checkpoint("solve", 42).unwrap();
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
    }

    #[test]
    fn cancelled_budget_fails_its_checkpoint() {
        let token = CancelToken::new();
        let b = SolveBudget::unlimited().with_cancel(token.clone());
        b.checkpoint("explore", 0).unwrap();
        token.cancel();
        assert!(matches!(
            b.checkpoint("explore", 7),
            Err(MarkovError::Cancelled { phase: "explore" })
        ));
    }

    #[test]
    fn past_deadline_fails_with_wall_clock_exhaustion() {
        let b = SolveBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(b.deadline_exceeded());
        match b.checkpoint("gauss-seidel", 128) {
            Err(MarkovError::BudgetExhausted {
                phase,
                resource,
                progress,
                ..
            }) => {
                assert_eq!(phase, "gauss-seidel");
                assert_eq!(resource, BudgetResource::WallClock);
                assert_eq!(progress, 128);
            }
            other => panic!("expected wall-clock exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn for_candidate_takes_the_sooner_deadline() {
        let far = Instant::now() + Duration::from_secs(3600);
        let b = SolveBudget::unlimited()
            .with_deadline(far)
            .with_candidate_timeout(Duration::from_millis(1));
        let per = b.for_candidate();
        assert!(per.deadline().unwrap() < far);
        // Without a timeout the deadline is untouched.
        let plain = SolveBudget::unlimited().with_deadline(far).for_candidate();
        assert_eq!(plain.deadline(), Some(far));
    }

    #[test]
    fn budgets_compare_by_limits_and_shared_token() {
        let token = CancelToken::new();
        let a = SolveBudget::unlimited()
            .with_max_states(10)
            .with_cancel(token.clone());
        let b = SolveBudget::unlimited()
            .with_max_states(10)
            .with_cancel(token);
        assert_eq!(a, b);
        let c = SolveBudget::unlimited()
            .with_max_states(10)
            .with_cancel(CancelToken::new());
        assert_ne!(a, c);
    }

    #[test]
    fn resources_render_distinct_names() {
        let names: Vec<String> = [
            BudgetResource::WallClock,
            BudgetResource::Sweeps,
            BudgetResource::States,
            BudgetResource::CsrBytes,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert_eq!(
            names,
            ["wall-clock", "sweep", "explored-states", "csr-bytes"]
        );
    }
}
