//! Breadth-first state-space exploration.
//!
//! Availability models are most naturally written as *rules*: "from any
//! state, each failure class `i` fires at rate `k_i λ_i` and leads to this
//! successor". This module turns such a rule (a successor function) into an
//! explicit [`Ctmc`](crate::Ctmc) by breadth-first exploration from an
//! initial state, assigning dense indices as states are discovered.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;

use crate::{BudgetResource, Ctmc, CtmcBuilder, MarkovError, SolveBudget};

/// Estimated CSR bytes per stored transition: an `f64` value, a column
/// index and its share of the row-start array, mirroring the layout of
/// [`crate::CsrMatrix`].
const CSR_BYTES_PER_EDGE: usize = 8 + 8;
/// Estimated CSR bytes per state (one row-start slot per matrix).
const CSR_BYTES_PER_STATE: usize = 2 * 8;
/// How many dequeued states pass between cooperative budget checkpoints.
const EXPLORE_CHECK_INTERVAL: usize = 256;

/// The result of exploring a procedural model: the chain plus the mapping
/// between model states and CTMC indices.
#[derive(Debug, Clone)]
pub struct Explored<S> {
    ctmc: Ctmc,
    states: Vec<S>,
    /// Inverse of `states`, retained so [`Explored::repatch`] can map rule
    /// successors back to indices without re-running BFS.
    index: HashMap<S, usize>,
    /// Reusable per-entry rate accumulator for `repatch`.
    patch_values: Vec<f64>,
}

impl<S> Explored<S> {
    /// The explored chain. State `0` is the initial state.
    #[must_use]
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The model state for a CTMC index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn state(&self, index: usize) -> &S {
        &self.states[index]
    }

    /// All discovered states, in index order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Number of discovered states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Evaluates a per-state reward vector (e.g. 1.0 for "down" states).
    pub fn reward_vector<F: Fn(&S) -> f64>(&self, reward: F) -> Vec<f64> {
        self.states.iter().map(reward).collect()
    }
}

impl<S: Eq + Hash> Explored<S> {
    /// Rate-only rebuild: re-runs `successors` over the already-discovered
    /// states and patches the transition rates in place, keeping the state
    /// indexing and sparsity structure — no BFS, no hashing of new states,
    /// no CSR re-sort.
    ///
    /// Returns `true` on success. Returns `false` — leaving the chain
    /// untouched — whenever the rule's nonzero transition structure differs
    /// from the stored one in any way: a successor state that was never
    /// discovered, a `from → to` pair with no stored entry, a stored entry
    /// receiving no (or non-positive) contribution, or a non-finite or
    /// negative rate. The caller then falls back to a full
    /// [`explore`], which also surfaces the proper error for invalid rules.
    ///
    /// When it succeeds, the patched chain is **bit-identical** to the one
    /// a fresh `explore` of the same rule would build: contributions to
    /// each entry are accumulated in rule-output order, which matches the
    /// insertion-order summation of the (stable-sorted) triplet build, and
    /// exit rates are re-derived the same way.
    pub fn repatch<F, I>(&mut self, successors: F) -> bool
    where
        F: Fn(&S) -> I,
        I: IntoIterator<Item = (f64, S)>,
    {
        let nnz = self.ctmc.n_transitions();
        let mut values = std::mem::take(&mut self.patch_values);
        values.clear();
        values.resize(nnz, 0.0);
        let mut ok = true;
        'outer: for (from, state) in self.states.iter().enumerate() {
            for (rate, next) in successors(state) {
                if rate == 0.0 {
                    continue;
                }
                if !rate.is_finite() || rate < 0.0 {
                    ok = false; // invalid rule: rebuild reports the error
                    break 'outer;
                }
                let Some(&to) = self.index.get(&next) else {
                    ok = false; // new state: topology changed
                    break 'outer;
                };
                let Some(idx) = self.ctmc.entry_index(from, to) else {
                    ok = false; // new edge (or self-loop): topology changed
                    break 'outer;
                };
                values[idx] += rate;
            }
        }
        // Every stored entry must be re-fed: rates are positive, so a zero
        // accumulator means the edge vanished and the reachable set (or at
        // least the structure) may differ.
        ok = ok && values.iter().all(|&v| v > 0.0 && v.is_finite());
        if ok {
            self.ctmc.patch_rates(&values);
        }
        self.patch_values = values;
        ok
    }
}

/// Explores the state space reachable from `initial` under `successors` and
/// builds the corresponding CTMC.
///
/// `successors(state)` returns the outgoing transitions as
/// `(rate, next_state)` pairs. Transitions with zero rate are dropped;
/// transitions that lead back to the same state are rejected (model bug).
/// Exploration is breadth-first, so state indices are stable for a given
/// model: the initial state is index 0.
///
/// `max_states` bounds exploration as a defense against runaway models.
///
/// # Errors
///
/// Returns [`MarkovError::StateOutOfRange`] (with `state == max_states`) if
/// the bound is exceeded, or any construction error from the underlying
/// [`CtmcBuilder`]. Irreducibility is *not* checked here — truncated
/// availability models are frequently solved with solvers that check it
/// themselves.
///
/// # Examples
///
/// ```
/// use aved_markov::{explore, DenseSolver, SteadyStateSolver};
///
/// // 3 machines, each failing at 0.01/h and repaired at 1/h; state = number
/// // failed, capped at 2 concurrent failures (truncation).
/// let explored = explore(0_u32, 10_000, |&k| {
///     let mut out = Vec::new();
///     if k < 2 {
///         out.push(((3 - k) as f64 * 0.01, k + 1));
///     }
///     if k > 0 {
///         out.push((k as f64 * 1.0, k - 1));
///     }
///     out
/// })?;
/// assert_eq!(explored.n_states(), 3);
/// let pi = DenseSolver::default().steady_state(explored.ctmc())?;
/// assert!(pi[0] > 0.95);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explore<S, F, I>(
    initial: S,
    max_states: usize,
    successors: F,
) -> Result<Explored<S>, MarkovError>
where
    S: Clone + Eq + Hash,
    F: Fn(&S) -> I,
    I: IntoIterator<Item = (f64, S)>,
{
    explore_budgeted(initial, max_states, successors, &SolveBudget::unlimited())
}

/// [`explore`] under a cooperative [`SolveBudget`].
///
/// On top of the caller's `max_states` truncation bound, the budget may
/// impose a (tighter) explored-state cap, an estimated CSR-memory cap, a
/// wall-clock deadline and a cancellation token. Deadline and cancellation
/// are polled every 256 dequeued states; the state and byte caps are
/// enforced exactly, on every newly discovered state.
///
/// # Errors
///
/// Returns [`MarkovError::BudgetExhausted`] naming the exhausted resource
/// (`phase = "explore"`), [`MarkovError::Cancelled`] when the token fired,
/// [`MarkovError::StateOutOfRange`] when the caller's own `max_states`
/// bound (not the budget's) was exceeded, or any construction error from
/// the underlying [`CtmcBuilder`].
pub fn explore_budgeted<S, F, I>(
    initial: S,
    max_states: usize,
    successors: F,
    budget: &SolveBudget,
) -> Result<Explored<S>, MarkovError>
where
    S: Clone + Eq + Hash,
    F: Fn(&S) -> I,
    I: IntoIterator<Item = (f64, S)>,
{
    let mut index: HashMap<S, usize> = HashMap::new();
    let mut states: Vec<S> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut transitions: Vec<(usize, usize, f64)> = Vec::new();

    // The budget's cap coexists with the caller's truncation bound; which
    // one trips determines the error (budget exhaustion vs. model runaway).
    let budget_states = budget.max_states().unwrap_or(usize::MAX);
    let budget_bytes = budget.max_csr_bytes().unwrap_or(usize::MAX);
    let governed = !budget.is_unlimited();
    let mut popped: usize = 0;

    index.insert(initial.clone(), 0);
    states.push(initial);
    queue.push_back(0);

    while let Some(from) = queue.pop_front() {
        if governed && popped.is_multiple_of(EXPLORE_CHECK_INTERVAL) {
            budget.checkpoint("explore", states.len() as u64)?;
        }
        popped += 1;
        let outgoing = successors(&states[from]);
        for (rate, next) in outgoing {
            if rate == 0.0 {
                continue;
            }
            let to = match index.get(&next) {
                Some(&i) => i,
                None => {
                    if states.len() >= budget_states {
                        return Err(MarkovError::BudgetExhausted {
                            phase: "explore",
                            resource: BudgetResource::States,
                            progress: states.len() as u64,
                            limit: budget_states as u64,
                        });
                    }
                    if states.len() >= max_states {
                        return Err(MarkovError::StateOutOfRange {
                            state: max_states,
                            n_states: max_states,
                        });
                    }
                    let i = states.len();
                    index.insert(next.clone(), i);
                    states.push(next);
                    queue.push_back(i);
                    i
                }
            };
            transitions.push((from, to, rate));
            if governed {
                let bytes = transitions.len() * CSR_BYTES_PER_EDGE
                    + (states.len() + 1) * CSR_BYTES_PER_STATE;
                if bytes > budget_bytes {
                    return Err(MarkovError::BudgetExhausted {
                        phase: "explore",
                        resource: BudgetResource::CsrBytes,
                        progress: bytes as u64,
                        limit: budget_bytes as u64,
                    });
                }
            }
        }
    }

    let mut builder = CtmcBuilder::new(states.len());
    for (from, to, rate) in transitions {
        builder.rate(from, to, rate);
    }
    let ctmc = builder.build_lenient()?;
    Ok(Explored {
        ctmc,
        states,
        index,
        patch_values: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseSolver, SteadyStateSolver};

    #[test]
    fn explores_birth_death_chain() {
        let e = explore(0_u8, 100, |&k| {
            let mut out = Vec::new();
            if k < 3 {
                out.push((1.0, k + 1));
            }
            if k > 0 {
                out.push((2.0, k - 1));
            }
            out
        })
        .unwrap();
        assert_eq!(e.n_states(), 4);
        assert_eq!(*e.state(0), 0);
        // BFS ordering: states discovered in increasing k.
        assert_eq!(e.states(), &[0, 1, 2, 3]);
        let pi = DenseSolver::new().steady_state(e.ctmc()).unwrap();
        let bd = crate::birth_death::steady_state(&[1.0; 3], &[2.0; 3]).unwrap();
        for (a, b) in pi.iter().zip(bd.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn respects_state_bound() {
        let res = explore(0_u64, 5, |&k| {
            vec![(1.0, k + 1), (1.0, k.saturating_sub(1))]
        });
        assert!(res.is_err());
    }

    #[test]
    fn budget_state_cap_trips_before_the_truncation_bound() {
        let runaway = |&k: &u64| vec![(1.0, k + 1), (1.0, k.saturating_sub(1))];
        let budget = SolveBudget::unlimited().with_max_states(5);
        match explore_budgeted(0_u64, 1000, runaway, &budget) {
            Err(MarkovError::BudgetExhausted {
                phase: "explore",
                resource: BudgetResource::States,
                limit: 5,
                ..
            }) => {}
            other => panic!("expected explored-states exhaustion, got {other:?}"),
        }
        // The caller's own bound still reports the legacy error.
        assert!(matches!(
            explore_budgeted(0_u64, 5, runaway, &SolveBudget::unlimited()),
            Err(MarkovError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn budget_byte_cap_trips_on_runaway_edges() {
        let runaway = |&k: &u64| vec![(1.0, k + 1), (1.0, k.saturating_sub(1))];
        let budget = SolveBudget::unlimited().with_max_csr_bytes(512);
        match explore_budgeted(0_u64, usize::MAX, runaway, &budget) {
            Err(MarkovError::BudgetExhausted {
                phase: "explore",
                resource: BudgetResource::CsrBytes,
                ..
            }) => {}
            other => panic!("expected csr-bytes exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_stops_exploration() {
        let token = crate::CancelToken::new();
        token.cancel();
        let budget = SolveBudget::unlimited().with_cancel(token);
        assert!(matches!(
            explore_budgeted(0_u64, 10, |&k| vec![(1.0, (k + 1) % 3)], &budget),
            Err(MarkovError::Cancelled { phase: "explore" })
        ));
    }

    #[test]
    fn unlimited_budget_explores_identically() {
        let rule = |&k: &u8| {
            let mut out = Vec::new();
            if k < 3 {
                out.push((1.0, k + 1));
            }
            if k > 0 {
                out.push((2.0, k - 1));
            }
            out
        };
        let plain = explore(0_u8, 100, rule).unwrap();
        let governed = explore_budgeted(
            0_u8,
            100,
            rule,
            &SolveBudget::unlimited().with_max_states(50),
        )
        .unwrap();
        assert_eq!(plain.ctmc(), governed.ctmc());
        assert_eq!(plain.states(), governed.states());
    }

    #[test]
    fn drops_zero_rate_transitions() {
        let e = explore(0_u8, 10, |&k| match k {
            0 => vec![(0.0, 5_u8), (1.0, 1)],
            1 => vec![(1.0, 0)],
            _ => vec![],
        })
        .unwrap();
        // State 5 is never materialized because its only incoming rate is 0.
        assert_eq!(e.n_states(), 2);
    }

    #[test]
    fn reward_vector_maps_states() {
        let e = explore(0_u8, 10, |&k| {
            if k == 0 {
                vec![(1.0, 1_u8)]
            } else {
                vec![(1.0, 0)]
            }
        })
        .unwrap();
        let r = e.reward_vector(|&k| if k == 1 { 1.0 } else { 0.0 });
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn repatch_matches_fresh_explore_bit_for_bit() {
        let rule = |scale: f64| {
            move |&k: &u8| {
                let mut out = Vec::new();
                if k < 3 {
                    out.push((scale * (3 - k) as f64, k + 1));
                }
                if k > 0 {
                    out.push((2.0 * scale * k as f64, k - 1));
                }
                out
            }
        };
        let mut warm = explore(0_u8, 100, rule(1.0)).unwrap();
        // Same topology, different rates: must patch in place...
        assert!(warm.repatch(rule(1.7)));
        // ...and agree bit-for-bit with a from-scratch exploration.
        let cold = explore(0_u8, 100, rule(1.7)).unwrap();
        assert_eq!(warm.ctmc(), cold.ctmc());
        assert_eq!(warm.states(), cold.states());
        // Repeated repatching keeps working (buffers are recycled).
        assert!(warm.repatch(rule(0.3)));
        assert_eq!(warm.ctmc(), explore(0_u8, 100, rule(0.3)).unwrap().ctmc());
    }

    #[test]
    fn repatch_rejects_topology_changes_and_leaves_chain_untouched() {
        let base = |&k: &u8| {
            let mut out = Vec::new();
            if k < 2 {
                out.push((1.0, k + 1));
            }
            if k > 0 {
                out.push((2.0, k - 1));
            }
            out
        };
        let mut e = explore(0_u8, 100, base).unwrap();
        let before = e.ctmc().clone();

        // Deeper chain: introduces a state never discovered.
        let deeper = |&k: &u8| {
            let mut out = Vec::new();
            if k < 3 {
                out.push((1.0, k + 1));
            }
            if k > 0 {
                out.push((2.0, k - 1));
            }
            out
        };
        assert!(!e.repatch(deeper));
        assert_eq!(e.ctmc(), &before, "failed repatch must not corrupt");

        // Extra edge between existing states.
        let chord = |&k: &u8| {
            let mut out = base(&k);
            if k == 0 {
                out.push((0.5, 2_u8));
            }
            out
        };
        assert!(!e.repatch(chord));
        assert_eq!(e.ctmc(), &before);

        // Vanished edge (rate dropped to zero).
        let pruned = |&k: &u8| {
            let mut out = base(&k);
            if k == 2 {
                out.clear();
            }
            out
        };
        assert!(!e.repatch(pruned));
        assert_eq!(e.ctmc(), &before);

        // Invalid rate: bail so a full rebuild reports the real error.
        let negative = |&k: &u8| {
            if k == 0 {
                vec![(-1.0, 1_u8)]
            } else {
                base(&k)
            }
        };
        assert!(!e.repatch(negative));
        assert_eq!(e.ctmc(), &before);

        // The chain still repatches fine with a rate-only change.
        let scaled = |&k: &u8| {
            base(&k)
                .into_iter()
                .map(|(r, s)| (3.0 * r, s))
                .collect::<Vec<_>>()
        };
        assert!(e.repatch(scaled));
        assert_eq!(e.ctmc(), explore(0_u8, 100, scaled).unwrap().ctmc());
    }

    #[test]
    fn repatch_merges_duplicate_contributions_like_a_rebuild() {
        // Two rule outputs landing on the same (from, to) pair must merge
        // by summation in output order, exactly like the triplet build.
        let rule = |a: f64, b: f64| {
            move |&k: &u8| match k {
                0 => vec![(a, 1_u8), (b, 1_u8)],
                _ => vec![(1.0, 0_u8)],
            }
        };
        let mut warm = explore(0_u8, 10, rule(0.1, 0.2)).unwrap();
        assert!(warm.repatch(rule(0.3, 0.4)));
        let cold = explore(0_u8, 10, rule(0.3, 0.4)).unwrap();
        assert_eq!(warm.ctmc(), cold.ctmc());
    }

    #[test]
    fn structured_states_work() {
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct St {
            failed: u8,
            failover: bool,
        }
        let e = explore(
            St {
                failed: 0,
                failover: false,
            },
            100,
            |s| {
                let mut out = Vec::new();
                if s.failed == 0 && !s.failover {
                    out.push((
                        0.01,
                        St {
                            failed: 1,
                            failover: true,
                        },
                    ));
                }
                if s.failover {
                    out.push((
                        10.0,
                        St {
                            failed: s.failed,
                            failover: false,
                        },
                    ));
                }
                if s.failed > 0 && !s.failover {
                    out.push((
                        1.0,
                        St {
                            failed: s.failed - 1,
                            failover: false,
                        },
                    ));
                }
                out
            },
        )
        .unwrap();
        assert_eq!(e.n_states(), 3);
        let pi = DenseSolver::new().steady_state(e.ctmc()).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
