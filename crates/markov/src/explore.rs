//! Breadth-first state-space exploration.
//!
//! Availability models are most naturally written as *rules*: "from any
//! state, each failure class `i` fires at rate `k_i λ_i` and leads to this
//! successor". This module turns such a rule (a successor function) into an
//! explicit [`Ctmc`](crate::Ctmc) by breadth-first exploration from an
//! initial state, assigning dense indices as states are discovered.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;

use crate::{Ctmc, CtmcBuilder, MarkovError};

/// The result of exploring a procedural model: the chain plus the mapping
/// between model states and CTMC indices.
#[derive(Debug, Clone)]
pub struct Explored<S> {
    ctmc: Ctmc,
    states: Vec<S>,
}

impl<S> Explored<S> {
    /// The explored chain. State `0` is the initial state.
    #[must_use]
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The model state for a CTMC index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn state(&self, index: usize) -> &S {
        &self.states[index]
    }

    /// All discovered states, in index order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Number of discovered states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Evaluates a per-state reward vector (e.g. 1.0 for "down" states).
    pub fn reward_vector<F: Fn(&S) -> f64>(&self, reward: F) -> Vec<f64> {
        self.states.iter().map(reward).collect()
    }
}

/// Explores the state space reachable from `initial` under `successors` and
/// builds the corresponding CTMC.
///
/// `successors(state)` returns the outgoing transitions as
/// `(rate, next_state)` pairs. Transitions with zero rate are dropped;
/// transitions that lead back to the same state are rejected (model bug).
/// Exploration is breadth-first, so state indices are stable for a given
/// model: the initial state is index 0.
///
/// `max_states` bounds exploration as a defense against runaway models.
///
/// # Errors
///
/// Returns [`MarkovError::StateOutOfRange`] (with `state == max_states`) if
/// the bound is exceeded, or any construction error from the underlying
/// [`CtmcBuilder`]. Irreducibility is *not* checked here — truncated
/// availability models are frequently solved with solvers that check it
/// themselves.
///
/// # Examples
///
/// ```
/// use aved_markov::{explore, DenseSolver, SteadyStateSolver};
///
/// // 3 machines, each failing at 0.01/h and repaired at 1/h; state = number
/// // failed, capped at 2 concurrent failures (truncation).
/// let explored = explore(0_u32, 10_000, |&k| {
///     let mut out = Vec::new();
///     if k < 2 {
///         out.push(((3 - k) as f64 * 0.01, k + 1));
///     }
///     if k > 0 {
///         out.push((k as f64 * 1.0, k - 1));
///     }
///     out
/// })?;
/// assert_eq!(explored.n_states(), 3);
/// let pi = DenseSolver::default().steady_state(explored.ctmc())?;
/// assert!(pi[0] > 0.95);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn explore<S, F, I>(
    initial: S,
    max_states: usize,
    successors: F,
) -> Result<Explored<S>, MarkovError>
where
    S: Clone + Eq + Hash,
    F: Fn(&S) -> I,
    I: IntoIterator<Item = (f64, S)>,
{
    let mut index: HashMap<S, usize> = HashMap::new();
    let mut states: Vec<S> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut transitions: Vec<(usize, usize, f64)> = Vec::new();

    index.insert(initial.clone(), 0);
    states.push(initial);
    queue.push_back(0);

    while let Some(from) = queue.pop_front() {
        let outgoing = successors(&states[from]);
        for (rate, next) in outgoing {
            if rate == 0.0 {
                continue;
            }
            let to = match index.get(&next) {
                Some(&i) => i,
                None => {
                    if states.len() >= max_states {
                        return Err(MarkovError::StateOutOfRange {
                            state: max_states,
                            n_states: max_states,
                        });
                    }
                    let i = states.len();
                    index.insert(next.clone(), i);
                    states.push(next);
                    queue.push_back(i);
                    i
                }
            };
            transitions.push((from, to, rate));
        }
    }

    let mut builder = CtmcBuilder::new(states.len());
    for (from, to, rate) in transitions {
        builder.rate(from, to, rate);
    }
    let ctmc = builder.build_lenient()?;
    Ok(Explored { ctmc, states })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseSolver, SteadyStateSolver};

    #[test]
    fn explores_birth_death_chain() {
        let e = explore(0_u8, 100, |&k| {
            let mut out = Vec::new();
            if k < 3 {
                out.push((1.0, k + 1));
            }
            if k > 0 {
                out.push((2.0, k - 1));
            }
            out
        })
        .unwrap();
        assert_eq!(e.n_states(), 4);
        assert_eq!(*e.state(0), 0);
        // BFS ordering: states discovered in increasing k.
        assert_eq!(e.states(), &[0, 1, 2, 3]);
        let pi = DenseSolver::new().steady_state(e.ctmc()).unwrap();
        let bd = crate::birth_death::steady_state(&[1.0; 3], &[2.0; 3]).unwrap();
        for (a, b) in pi.iter().zip(bd.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn respects_state_bound() {
        let res = explore(0_u64, 5, |&k| {
            vec![(1.0, k + 1), (1.0, k.saturating_sub(1))]
        });
        assert!(res.is_err());
    }

    #[test]
    fn drops_zero_rate_transitions() {
        let e = explore(0_u8, 10, |&k| match k {
            0 => vec![(0.0, 5_u8), (1.0, 1)],
            1 => vec![(1.0, 0)],
            _ => vec![],
        })
        .unwrap();
        // State 5 is never materialized because its only incoming rate is 0.
        assert_eq!(e.n_states(), 2);
    }

    #[test]
    fn reward_vector_maps_states() {
        let e = explore(0_u8, 10, |&k| {
            if k == 0 {
                vec![(1.0, 1_u8)]
            } else {
                vec![(1.0, 0)]
            }
        })
        .unwrap();
        let r = e.reward_vector(|&k| if k == 1 { 1.0 } else { 0.0 });
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn structured_states_work() {
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct St {
            failed: u8,
            failover: bool,
        }
        let e = explore(
            St {
                failed: 0,
                failover: false,
            },
            100,
            |s| {
                let mut out = Vec::new();
                if s.failed == 0 && !s.failover {
                    out.push((
                        0.01,
                        St {
                            failed: 1,
                            failover: true,
                        },
                    ));
                }
                if s.failover {
                    out.push((
                        10.0,
                        St {
                            failed: s.failed,
                            failover: false,
                        },
                    ));
                }
                if s.failed > 0 && !s.failover {
                    out.push((
                        1.0,
                        St {
                            failed: s.failed - 1,
                            failover: false,
                        },
                    ));
                }
                out
            },
        )
        .unwrap();
        assert_eq!(e.n_states(), 3);
        let pi = DenseSolver::new().steady_state(e.ctmc()).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
