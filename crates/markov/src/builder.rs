//! Incremental CTMC construction with validation.

use crate::{CsrMatrix, Ctmc, MarkovError};

/// Builder for [`Ctmc`] values.
///
/// Collects off-diagonal transition rates; duplicate `(from, to)` pairs are
/// summed, matching the semantics of superposed Poisson processes (two
/// independent causes of the same state change add their rates).
///
/// # Examples
///
/// ```
/// use aved_markov::CtmcBuilder;
///
/// let mut b = CtmcBuilder::new(3);
/// b.rate(0, 1, 0.5).rate(1, 2, 0.25).rate(2, 0, 1.0);
/// // A second failure cause for the 0 -> 1 transition:
/// b.rate(0, 1, 0.1);
/// let ctmc = b.build()?;
/// assert_eq!(ctmc.outgoing(0), &[(1, 0.6)]);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CtmcBuilder {
    n_states: usize,
    triplets: Vec<(usize, usize, f64)>,
    error: Option<MarkovError>,
}

impl CtmcBuilder {
    /// Creates a builder for a chain with `n_states` states.
    #[must_use]
    pub fn new(n_states: usize) -> CtmcBuilder {
        CtmcBuilder {
            n_states,
            triplets: Vec::new(),
            error: None,
        }
    }

    /// Adds a transition `from -> to` with the given rate.
    ///
    /// Zero rates are accepted and dropped (convenient when rates are
    /// computed from counts that may be zero). Invalid inputs (out-of-range
    /// states, negative/NaN/infinite rates, self-loops) are recorded and
    /// reported by [`build`](Self::build); this lets callers chain many
    /// `rate` calls without checking each one.
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> &mut CtmcBuilder {
        if self.error.is_some() {
            return self;
        }
        if from >= self.n_states {
            self.error = Some(MarkovError::StateOutOfRange {
                state: from,
                n_states: self.n_states,
            });
            return self;
        }
        if to >= self.n_states {
            self.error = Some(MarkovError::StateOutOfRange {
                state: to,
                n_states: self.n_states,
            });
            return self;
        }
        if rate.is_nan() || rate < 0.0 || rate.is_infinite() {
            self.error = Some(MarkovError::InvalidRate { from, to, rate });
            return self;
        }
        if from == to {
            self.error = Some(MarkovError::SelfLoop { state: from });
            return self;
        }
        if rate > 0.0 {
            self.triplets.push((from, to, rate));
        }
        self
    }

    /// Number of transitions recorded so far (before duplicate merging).
    #[must_use]
    pub fn n_recorded(&self) -> usize {
        self.triplets.len()
    }

    /// Finalizes the chain, checking validity and irreducibility.
    ///
    /// # Errors
    ///
    /// Returns the first recorded construction error, [`MarkovError::EmptyChain`]
    /// for a zero-state chain, or [`MarkovError::Reducible`] when the
    /// transition graph is not strongly connected (steady-state analysis
    /// requires irreducibility).
    pub fn build(&self) -> Result<Ctmc, MarkovError> {
        let ctmc = self.build_lenient()?;
        ctmc.check_irreducible()
            .map_err(|state| MarkovError::Reducible { state })?;
        Ok(ctmc)
    }

    /// Finalizes the chain without the irreducibility check.
    ///
    /// Useful for transient analysis of absorbing chains (e.g. mean time to
    /// failure models), where reducibility is the point.
    ///
    /// # Errors
    ///
    /// Returns the first recorded construction error or
    /// [`MarkovError::EmptyChain`].
    pub fn build_lenient(&self) -> Result<Ctmc, MarkovError> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        if self.n_states == 0 {
            return Err(MarkovError::EmptyChain);
        }
        let rows = CsrMatrix::from_triplets(self.n_states, self.triplets.clone());
        Ok(Ctmc::from_parts(self.n_states, rows))
    }

    /// Finalizes the chain, panicking on construction errors and skipping
    /// the irreducibility check. Test helper.
    ///
    /// # Panics
    ///
    /// Panics if any recorded transition was invalid or the chain is empty.
    #[must_use]
    pub fn build_unchecked(&self) -> Ctmc {
        self.build_lenient().expect("invalid CTMC")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_parallel_transitions() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).rate(0, 1, 2.0).rate(1, 0, 1.0);
        let c = b.build().unwrap();
        assert_eq!(c.outgoing(0), &[(1, 3.0)]);
    }

    #[test]
    fn drops_zero_rates() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 0.0).rate(0, 1, 1.0).rate(1, 0, 1.0);
        let c = b.build().unwrap();
        assert_eq!(c.n_transitions(), 2);
    }

    #[test]
    fn rejects_out_of_range_state() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 7, 1.0);
        assert!(matches!(
            b.build(),
            Err(MarkovError::StateOutOfRange { state: 7, .. })
        ));
    }

    #[test]
    fn rejects_negative_rate() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, -3.0);
        assert!(matches!(b.build(), Err(MarkovError::InvalidRate { .. })));
    }

    #[test]
    fn rejects_nan_and_infinite_rate() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, f64::NAN);
        assert!(matches!(b.build(), Err(MarkovError::InvalidRate { .. })));
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, f64::INFINITY);
        assert!(matches!(b.build(), Err(MarkovError::InvalidRate { .. })));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = CtmcBuilder::new(2);
        b.rate(1, 1, 1.0);
        assert!(matches!(b.build(), Err(MarkovError::SelfLoop { state: 1 })));
    }

    #[test]
    fn rejects_empty_chain() {
        let b = CtmcBuilder::new(0);
        assert!(matches!(b.build(), Err(MarkovError::EmptyChain)));
    }

    #[test]
    fn first_error_wins() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 9, 1.0).rate(1, 1, 1.0);
        assert!(matches!(
            b.build(),
            Err(MarkovError::StateOutOfRange { state: 9, .. })
        ));
    }

    #[test]
    fn reducible_chain_rejected_by_build() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0); // absorbing state 1
        assert!(matches!(b.build(), Err(MarkovError::Reducible { .. })));
        // ...but accepted by the lenient variant.
        assert!(b.build_lenient().is_ok());
    }

    #[test]
    fn single_state_chain_is_trivially_irreducible() {
        let b = CtmcBuilder::new(1);
        let c = b.build().unwrap();
        assert_eq!(c.n_states(), 1);
        assert_eq!(c.exit_rate(0), 0.0);
    }
}
