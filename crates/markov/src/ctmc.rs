//! The validated CTMC type.

use serde::{Deserialize, Serialize};

use crate::CsrMatrix;

/// A single off-diagonal transition of a CTMC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Source state index.
    pub from: usize,
    /// Destination state index.
    pub to: usize,
    /// Transition rate (events per unit time; this crate is agnostic to the
    /// time unit, but the Aved availability models use per-hour rates).
    pub rate: f64,
}

/// A validated continuous-time Markov chain.
///
/// Construct with [`CtmcBuilder`](crate::CtmcBuilder), which merges duplicate
/// transitions and validates rates. A `Ctmc` stores its off-diagonal
/// transitions in compressed sparse row form; the diagonal of the generator
/// matrix is derived (`q_ii = -Σ_{j≠i} q_ij`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctmc {
    n_states: usize,
    rows: CsrMatrix,
    exit_rates: Vec<f64>,
}

impl Ctmc {
    pub(crate) fn from_parts(n_states: usize, rows: CsrMatrix) -> Ctmc {
        let exit_rates: Vec<f64> = (0..n_states)
            .map(|s| rows.row(s).iter().map(|&(_, r)| r).sum())
            .collect();
        Ctmc {
            n_states,
            rows,
            exit_rates,
        }
    }

    /// Flat entry position of the transition `from → to`, if present (see
    /// [`CsrMatrix::entry_index`]).
    pub(crate) fn entry_index(&self, from: usize, to: usize) -> Option<usize> {
        self.rows.entry_index(from, to)
    }

    /// Rate-only rebuild: replaces every transition rate in flat entry
    /// order, keeping the sparsity structure, and re-derives the exit rates
    /// exactly as [`Ctmc::from_parts`] does — so a patched chain is
    /// bit-identical to one built from scratch with the same merged rates.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_transitions()`.
    pub(crate) fn patch_rates(&mut self, values: &[f64]) {
        self.rows.overwrite_values(values);
        for s in 0..self.n_states {
            self.exit_rates[s] = self.rows.row(s).iter().map(|&(_, r)| r).sum();
        }
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of (merged) off-diagonal transitions.
    #[must_use]
    pub fn n_transitions(&self) -> usize {
        self.rows.nnz()
    }

    /// The outgoing transitions of `state` as `(destination, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `state >= n_states`.
    #[must_use]
    pub fn outgoing(&self, state: usize) -> &[(usize, f64)] {
        self.rows.row(state)
    }

    /// Total exit rate of `state` (the negated diagonal generator entry).
    ///
    /// # Panics
    ///
    /// Panics if `state >= n_states`.
    #[must_use]
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit_rates[state]
    }

    /// The largest exit rate over all states (the uniformization constant
    /// lower bound).
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().fold(0.0_f64, |a, &b| a.max(b))
    }

    /// Iterates over all off-diagonal transitions.
    pub fn transitions(&self) -> impl Iterator<Item = Transition> + '_ {
        (0..self.n_states).flat_map(move |from| {
            self.rows
                .row(from)
                .iter()
                .map(move |&(to, rate)| Transition { from, to, rate })
        })
    }

    /// Checks strong connectivity (irreducibility) of the transition graph.
    ///
    /// Returns `Ok(())` when every state can reach every other state, or the
    /// index of a state outside the single strongly-connected component.
    ///
    /// # Errors
    ///
    /// Returns the representative offending state index.
    pub fn check_irreducible(&self) -> Result<(), usize> {
        // Forward reachability from state 0 and backward reachability to
        // state 0; irreducible iff both cover all states.
        let fwd = self.reachable(0, false);
        if let Some(s) = fwd.iter().position(|&v| !v) {
            return Err(s);
        }
        let bwd = self.reachable(0, true);
        if let Some(s) = bwd.iter().position(|&v| !v) {
            return Err(s);
        }
        Ok(())
    }

    fn reachable(&self, start: usize, reversed: bool) -> Vec<bool> {
        let mut seen = vec![false; self.n_states];
        // For the reversed direction, precompute a reversed adjacency list.
        let rev_adj: Vec<Vec<usize>> = if reversed {
            let mut adj = vec![Vec::new(); self.n_states];
            for t in self.transitions() {
                if t.rate > 0.0 {
                    adj[t.to].push(t.from);
                }
            }
            adj
        } else {
            Vec::new()
        };
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(s) = stack.pop() {
            if reversed {
                for &p in &rev_adj[s] {
                    if !seen[p] {
                        seen[p] = true;
                        stack.push(p);
                    }
                }
            } else {
                for &(to, rate) in self.rows.row(s) {
                    if rate > 0.0 && !seen[to] {
                        seen[to] = true;
                        stack.push(to);
                    }
                }
            }
        }
        seen
    }

    /// Computes the expected steady-state reward `Σ_s π_s · reward(s)`.
    ///
    /// This is the workhorse of availability evaluation: with reward 1 for
    /// "down" states and 0 for "up" states, the result is the steady-state
    /// unavailability.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != n_states`.
    #[must_use]
    pub fn expected_reward<F: Fn(usize) -> f64>(&self, pi: &[f64], reward: F) -> f64 {
        assert_eq!(pi.len(), self.n_states, "distribution length mismatch");
        pi.iter().enumerate().map(|(s, &p)| p * reward(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::CtmcBuilder;

    #[test]
    fn exit_rates_sum_outgoing() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 2.0);
        b.rate(0, 2, 3.0);
        b.rate(1, 0, 1.0);
        b.rate(2, 0, 4.0);
        let c = b.build().unwrap();
        assert_eq!(c.exit_rate(0), 5.0);
        assert_eq!(c.exit_rate(1), 1.0);
        assert_eq!(c.exit_rate(2), 4.0);
        assert_eq!(c.max_exit_rate(), 5.0);
        assert_eq!(c.n_transitions(), 4);
    }

    #[test]
    fn transitions_iterator_yields_all() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        b.rate(1, 0, 2.0);
        let c = b.build().unwrap();
        let ts: Vec<_> = c.transitions().collect();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].from, 0);
        assert_eq!(ts[0].to, 1);
        assert_eq!(ts[1].rate, 2.0);
    }

    #[test]
    fn irreducibility_detects_unreachable() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0);
        b.rate(1, 0, 1.0);
        // state 2 is isolated
        b.rate(2, 0, 1.0); // can reach 0 but cannot be reached
        let c = b.build_unchecked();
        assert!(c.check_irreducible().is_err());
    }

    #[test]
    fn irreducibility_detects_absorbing() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0); // 1 is absorbing
        let c = b.build_unchecked();
        assert_eq!(c.check_irreducible(), Err(1));
    }

    #[test]
    fn expected_reward_weights_distribution() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        b.rate(1, 0, 1.0);
        let c = b.build().unwrap();
        let pi = [0.25, 0.75];
        let r = c.expected_reward(&pi, |s| if s == 1 { 1.0 } else { 0.0 });
        assert_eq!(r, 0.75);
    }
}
