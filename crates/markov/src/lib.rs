//! A small, self-contained continuous-time Markov chain (CTMC) engine.
//!
//! The Aved paper evaluates candidate designs by generating an availability
//! model and feeding it to an external availability evaluation engine
//! (Avanto, Mobius, Sharpe) or to "our own simplified Markov Model". This
//! crate is that engine, built from scratch: it provides
//!
//! * [`Ctmc`] — a validated continuous-time Markov chain (states +
//!   transition rates), assembled via [`CtmcBuilder`];
//! * [`explore`] — breadth-first state-space exploration from an initial
//!   state and a successor function, for models whose state space is easier
//!   to describe procedurally than to enumerate by hand;
//! * steady-state solvers: [`SteadyStateSolver`] implementations using dense
//!   Gaussian elimination ([`DenseSolver`]), Gauss–Seidel sweeps
//!   ([`GaussSeidelSolver`]) and uniformized power iteration
//!   ([`PowerSolver`]);
//! * [`FallbackSolver`] — a resilient policy chaining the three solvers
//!   with per-attempt budgets and a `‖πQ‖∞` residual acceptance check,
//!   recording every attempt in a [`SolveDiagnostics`] trail; its
//!   [`FallbackSolver::solve_warm`] entry point threads an optional
//!   warm-start hint and a reusable [`SolveScratch`] workspace through the
//!   chain, and [`Explored::repatch`] rebuilds a chain's rates in place
//!   when only the rates (not the topology) changed;
//! * [`birth_death::steady_state`] — the closed-form product solution for
//!   birth–death chains, used to cross-check the general solvers;
//! * [`transient`] — uniformization-based transient analysis (probability
//!   distribution at time *t* and expected accumulated reward), an extension
//!   beyond the paper's steady-state-only evaluation.
//!
//! # Example: 2-state machine-repair model
//!
//! ```
//! use aved_markov::{CtmcBuilder, DenseSolver, SteadyStateSolver};
//!
//! // State 0 = up, state 1 = down. MTBF 1000 h, MTTR 10 h.
//! let mut b = CtmcBuilder::new(2);
//! b.rate(0, 1, 1.0 / 1000.0);
//! b.rate(1, 0, 1.0 / 10.0);
//! let ctmc = b.build()?;
//! let pi = DenseSolver::default().steady_state(&ctmc)?;
//! let unavailability = pi[1];
//! assert!((unavailability - 10.0 / 1010.0).abs() < 1e-12);
//! # Ok::<(), aved_markov::MarkovError>(())
//! ```

pub mod birth_death;
mod budget;
mod builder;
mod csr;
mod ctmc;
mod error;
mod explore;
mod scratch;
mod solve_dense;
mod solve_fallback;
mod solve_gauss_seidel;
mod solve_power;
pub mod transient;

pub use budget::{BudgetResource, CancelToken, SolveBudget};
pub use builder::CtmcBuilder;
pub use csr::CsrMatrix;
pub use ctmc::{Ctmc, Transition};
pub use error::MarkovError;
pub use explore::{explore, explore_budgeted, Explored};
pub use scratch::SolveScratch;
pub use solve_dense::DenseSolver;
pub use solve_fallback::{FallbackSolver, SolveAttempt, SolveDiagnostics, SolverKind};
pub use solve_gauss_seidel::GaussSeidelSolver;
pub use solve_power::PowerSolver;

/// A steady-state solver for continuous-time Markov chains.
///
/// Implementations compute the stationary distribution `π` satisfying
/// `πQ = 0`, `Σπ = 1` for an irreducible chain. Three implementations are
/// provided: [`DenseSolver`] (exact, O(n³), best below a few thousand
/// states), [`GaussSeidelSolver`] (sparse sweeps, fast on the stiff chains
/// availability models produce) and [`PowerSolver`] (uniformized power
/// iteration, the simplest and most robust baseline).
pub trait SteadyStateSolver {
    /// Computes the stationary distribution of `ctmc`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError`] if the chain is reducible (no unique
    /// stationary distribution), if the linear system is singular beyond the
    /// irreducibility replacement row, or if iteration fails to converge.
    fn steady_state(&self, ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError>;
}
