//! Exact steady-state solution by Gaussian elimination.

use crate::scratch::SolveScratch;
use crate::{Ctmc, MarkovError, SteadyStateSolver};

/// Direct steady-state solver.
///
/// Solves `Qᵀ·πᵀ = 0` with the normalization constraint `Σπ = 1` by
/// replacing the last equation with the all-ones row, then running Gaussian
/// elimination with partial pivoting. Exact (up to floating point) and
/// robust for the modest chains produced by tier availability models
/// (typically well under a thousand states).
///
/// # Examples
///
/// ```
/// use aved_markov::{CtmcBuilder, DenseSolver, SteadyStateSolver};
///
/// // Birth-death chain 0 <-> 1 <-> 2.
/// let mut b = CtmcBuilder::new(3);
/// b.rate(0, 1, 1.0).rate(1, 2, 1.0).rate(1, 0, 2.0).rate(2, 1, 2.0);
/// let pi = DenseSolver::default().steady_state(&b.build()?)?;
/// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseSolver {
    _private: (),
}

impl DenseSolver {
    /// Creates a dense solver.
    #[must_use]
    pub fn new() -> DenseSolver {
        DenseSolver::default()
    }

    /// The elimination, writing the solution into `scratch.pi` and reusing
    /// the scratch's `n × n` matrix buffer — the dominant allocation of a
    /// dense solve.
    pub(crate) fn solve_into(
        &self,
        ctmc: &Ctmc,
        scratch: &mut SolveScratch,
    ) -> Result<(), MarkovError> {
        ctmc.check_irreducible()
            .map_err(|state| MarkovError::Reducible { state })?;
        let n = ctmc.n_states();
        if n == 1 {
            scratch.pi.clear();
            scratch.pi.push(1.0);
            return Ok(());
        }

        // Assemble A = Qᵀ as a dense matrix, then overwrite the last row
        // with ones (normalization). b = e_{n-1}.
        let SolveScratch { pi, dense, rhs, .. } = scratch;
        let a = dense;
        a.clear();
        a.resize(n * n, 0.0);
        for t in ctmc.transitions() {
            // Q[from][to] += rate; Q[from][from] -= rate. Transposed:
            a[t.to * n + t.from] += t.rate;
            a[t.from * n + t.from] -= t.rate;
        }
        for col in 0..n {
            a[(n - 1) * n + col] = 1.0;
        }
        let b = rhs;
        b.clear();
        b.resize(n, 0.0);
        b[n - 1] = 1.0;

        solve_linear(a, b, n)?;

        // Guard against tiny negative values from rounding.
        let mut sum = 0.0;
        for p in b.iter_mut() {
            if *p < 0.0 {
                if *p < -1e-8 {
                    return Err(MarkovError::Singular);
                }
                *p = 0.0;
            }
            sum += *p;
        }
        if sum.is_nan() || sum <= 0.0 || !sum.is_finite() {
            return Err(MarkovError::Singular);
        }
        for p in b.iter_mut() {
            *p /= sum;
        }
        pi.clear();
        pi.extend_from_slice(b);
        Ok(())
    }
}

impl SteadyStateSolver for DenseSolver {
    fn steady_state(&self, ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError> {
        let mut scratch = SolveScratch::new();
        self.solve_into(ctmc, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.pi))
    }
}

/// In-place Gaussian elimination with partial pivoting on an `n×n`
/// row-major matrix; the solution overwrites `b`.
fn solve_linear(a: &mut [f64], b: &mut [f64], n: usize) -> Result<(), MarkovError> {
    for col in 0..n {
        // Partial pivot: find the largest magnitude entry in this column.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return Err(MarkovError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut v = b[col];
        for k in (col + 1)..n {
            v -= a[col * n + k] * b[k];
        }
        b[col] = v / a[col * n + col];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;
    use proptest::prelude::*;

    fn solve(builder: &CtmcBuilder) -> Vec<f64> {
        DenseSolver::new()
            .steady_state(&builder.build().unwrap())
            .unwrap()
    }

    #[test]
    fn two_state_repair_model() {
        // MTBF 100, MTTR 1 => availability 100/101.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0 / 100.0).rate(1, 0, 1.0);
        let pi = solve(&b);
        assert!((pi[0] - 100.0 / 101.0).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn detailed_balance_chain() {
        // 3-state ring with symmetric rates has uniform stationary dist.
        let mut b = CtmcBuilder::new(3);
        for (i, j) in [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)] {
            b.rate(i, j, 2.0);
        }
        let pi = solve(&b);
        for p in pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn asymmetric_ring() {
        // One-directional ring: uniform stationary distribution as well
        // (doubly stochastic generator).
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 5.0)
            .rate(1, 2, 5.0)
            .rate(2, 3, 5.0)
            .rate(3, 0, 5.0);
        let pi = solve(&b);
        for p in pi {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_with_unequal_rates() {
        // pi_i proportional to 1/rate_i for a unidirectional ring.
        let rates = [1.0, 2.0, 4.0];
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, rates[0])
            .rate(1, 2, rates[1])
            .rate(2, 0, rates[2]);
        let pi = solve(&b);
        let weight: f64 = rates.iter().map(|r| 1.0 / r).sum();
        for (i, p) in pi.iter().enumerate() {
            assert!((p - (1.0 / rates[i]) / weight).abs() < 1e-12);
        }
    }

    #[test]
    fn widely_separated_rates_stay_accurate() {
        // MTBF years vs repair minutes: rate ratio ~ 1e7.
        let lambda = 1.0 / (650.0 * 24.0); // per hour
        let mu = 60.0; // one minute repairs
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, lambda).rate(1, 0, mu);
        let pi = solve(&b);
        let expect = lambda / (lambda + mu);
        assert!((pi[1] - expect).abs() / expect < 1e-10);
    }

    #[test]
    fn reducible_chain_is_rejected() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).rate(1, 0, 1.0).rate(2, 0, 1.0);
        let ctmc = b.build_unchecked();
        assert!(matches!(
            DenseSolver::new().steady_state(&ctmc),
            Err(MarkovError::Reducible { .. })
        ));
    }

    #[test]
    fn single_state() {
        let b = CtmcBuilder::new(1);
        let pi = solve(&b);
        assert_eq!(pi, vec![1.0]);
    }

    proptest! {
        /// For random irreducible 2-state chains the closed form is known.
        #[test]
        fn two_state_closed_form(lambda in 1e-8_f64..1e3, mu in 1e-8_f64..1e3) {
            let mut b = CtmcBuilder::new(2);
            b.rate(0, 1, lambda).rate(1, 0, mu);
            let pi = solve(&b);
            let expect0 = mu / (lambda + mu);
            prop_assert!((pi[0] - expect0).abs() < 1e-9 * expect0.max(1e-12));
        }

        /// Random strongly-connected chains: the result satisfies piQ = 0.
        #[test]
        fn residual_is_small(
            n in 2_usize..12,
            seed_rates in proptest::collection::vec(0.01_f64..100.0, 2 * 12),
        ) {
            let mut b = CtmcBuilder::new(n);
            // Ring to guarantee irreducibility...
            for (i, &rate) in seed_rates.iter().enumerate().take(n) {
                b.rate(i, (i + 1) % n, rate);
            }
            // ...plus some chords.
            for i in 0..n {
                let j = (i * 7 + 3) % n;
                if j != i {
                    b.rate(i, j, seed_rates[n + i]);
                }
            }
            let ctmc = b.build().unwrap();
            let pi = DenseSolver::new().steady_state(&ctmc).unwrap();
            // residual_j = sum_i pi_i Q[i][j]
            let mut residual = vec![0.0_f64; n];
            for t in ctmc.transitions() {
                residual[t.to] += pi[t.from] * t.rate;
                residual[t.from] -= pi[t.from] * t.rate;
            }
            for r in residual {
                prop_assert!(r.abs() < 1e-8);
            }
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        }
    }
}
