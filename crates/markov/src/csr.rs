//! Minimal compressed-sparse-row matrix for transition storage.

use serde::{Deserialize, Serialize};

/// A row-major sparse matrix of `(column, value)` entries.
///
/// This is deliberately minimal: availability models produce generator
/// matrices with a handful of entries per row, and the solvers only need
/// row iteration and transpose-vector products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    row_starts: Vec<usize>,
    entries: Vec<(usize, f64)>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from unsorted triplets, merging duplicates by
    /// summation.
    ///
    /// # Panics
    ///
    /// Panics if any row or column index is `>= n_rows` / `>= n_cols`
    /// respectively (the matrix is square here: `n_cols == n_rows`).
    #[must_use]
    pub fn from_triplets(n_rows: usize, mut triplets: Vec<(usize, usize, f64)>) -> CsrMatrix {
        for &(r, c, _) in &triplets {
            assert!(r < n_rows && c < n_rows, "triplet index out of range");
        }
        triplets.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_starts = Vec::with_capacity(n_rows + 1);
        let mut entries: Vec<(usize, f64)> = Vec::with_capacity(triplets.len());
        let mut current_row = 0;
        row_starts.push(0);
        for (r, c, v) in triplets {
            while current_row < r {
                row_starts.push(entries.len());
                current_row += 1;
            }
            // Merge duplicates, but only within the current row.
            if entries.len() > row_starts[current_row] {
                let last = entries.last_mut().expect("row is nonempty");
                if last.0 == c {
                    last.1 += v;
                    continue;
                }
            }
            entries.push((c, v));
        }
        while current_row < n_rows {
            row_starts.push(entries.len());
            current_row += 1;
        }
        debug_assert_eq!(row_starts.len(), n_rows + 1);
        CsrMatrix {
            n_rows,
            row_starts,
            entries,
        }
    }

    /// Number of rows (== columns; the matrix is square).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The entries of row `r` as `(column, value)` pairs, sorted by column.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[(usize, f64)] {
        &self.entries[self.row_starts[r]..self.row_starts[r + 1]]
    }

    /// Computes `y = xᵀ·A` (left multiplication by a row vector), writing
    /// into `y`.
    ///
    /// This is the operation needed by power iteration on `π ← π·P`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differ from the matrix dimension.
    pub fn left_mul(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows);
        assert_eq!(y.len(), self.n_rows);
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for &(c, v) in self.row(r) {
                y[c] += xr * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_sorted_rows() {
        let m = CsrMatrix::from_triplets(3, vec![(2, 0, 5.0), (0, 2, 1.0), (0, 1, 2.0)]);
        assert_eq!(m.row(0), &[(1, 2.0), (2, 1.0)]);
        assert_eq!(m.row(1), &[]);
        assert_eq!(m.row(2), &[(0, 5.0)]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn merges_duplicates() {
        let m = CsrMatrix::from_triplets(2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.row(0), &[(1, 3.5)]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn does_not_merge_across_rows() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 2, 1.0), (1, 2, 2.0)]);
        assert_eq!(m.row(0), &[(2, 1.0)]);
        assert_eq!(m.row(1), &[(2, 2.0)]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(4, vec![]);
        assert_eq!(m.nnz(), 0);
        for r in 0..4 {
            assert!(m.row(r).is_empty());
        }
    }

    #[test]
    fn left_mul_matches_dense() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 3];
        m.left_mul(&x, &mut y);
        // y_c = sum_r x_r * A[r][c]
        assert_eq!(y, [400.0, 2.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CsrMatrix::from_triplets(2, vec![(0, 5, 1.0)]);
    }

    proptest! {
        #[test]
        fn left_mul_agrees_with_naive(
            n in 1_usize..8,
            trips in proptest::collection::vec((0_usize..8, 0_usize..8, -10.0_f64..10.0), 0..30),
            xs in proptest::collection::vec(-5.0_f64..5.0, 8),
        ) {
            let trips: Vec<_> = trips
                .into_iter()
                .map(|(r, c, v)| (r % n, c % n, v))
                .collect();
            let mut dense = vec![vec![0.0; n]; n];
            for &(r, c, v) in &trips {
                dense[r][c] += v;
            }
            let m = CsrMatrix::from_triplets(n, trips);
            let x = &xs[..n];
            let mut y = vec![0.0; n];
            m.left_mul(x, &mut y);
            for c in 0..n {
                let expect: f64 = (0..n).map(|r| x[r] * dense[r][c]).sum();
                prop_assert!((y[c] - expect).abs() < 1e-9);
            }
        }
    }
}
