//! Minimal compressed-sparse-row matrix for transition storage.

use serde::{Deserialize, Serialize};

/// A row-major sparse matrix of `(column, value)` entries.
///
/// This is deliberately minimal: availability models produce generator
/// matrices with a handful of entries per row, and the solvers only need
/// row iteration and transpose-vector products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    row_starts: Vec<usize>,
    entries: Vec<(usize, f64)>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from unsorted triplets, merging duplicates by
    /// summation.
    ///
    /// Duplicate `(row, column)` triplets are summed **in input order** (the
    /// sort below is stable), so the merged value is bit-reproducible from
    /// the triplet sequence alone. The rate-only rebuild path
    /// ([`Ctmc::patch_rates`](crate::Ctmc)) relies on this: re-accumulating
    /// the same contributions in the same order reproduces the same floats.
    ///
    /// # Panics
    ///
    /// Panics if any row or column index is `>= n_rows` / `>= n_cols`
    /// respectively (the matrix is square here: `n_cols == n_rows`).
    #[must_use]
    pub fn from_triplets(n_rows: usize, mut triplets: Vec<(usize, usize, f64)>) -> CsrMatrix {
        for &(r, c, _) in &triplets {
            assert!(r < n_rows && c < n_rows, "triplet index out of range");
        }
        triplets.sort_by_key(|a| (a.0, a.1));
        let mut row_starts = Vec::with_capacity(n_rows + 1);
        let mut entries: Vec<(usize, f64)> = Vec::with_capacity(triplets.len());
        let mut current_row = 0;
        row_starts.push(0);
        for (r, c, v) in triplets {
            while current_row < r {
                row_starts.push(entries.len());
                current_row += 1;
            }
            // Merge duplicates, but only within the current row.
            if entries.len() > row_starts[current_row] {
                let last = entries.last_mut().expect("row is nonempty");
                if last.0 == c {
                    last.1 += v;
                    continue;
                }
            }
            entries.push((c, v));
        }
        while current_row < n_rows {
            row_starts.push(entries.len());
            current_row += 1;
        }
        debug_assert_eq!(row_starts.len(), n_rows + 1);
        CsrMatrix {
            n_rows,
            row_starts,
            entries,
        }
    }

    /// Number of rows (== columns; the matrix is square).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The entries of row `r` as `(column, value)` pairs, sorted by column.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[(usize, f64)] {
        &self.entries[self.row_starts[r]..self.row_starts[r + 1]]
    }

    /// The position of entry `(r, c)` in the flat entry array, if stored.
    ///
    /// Positions index the row-major, column-sorted entry order and stay
    /// valid as long as the sparsity structure is unchanged (values may be
    /// rewritten via [`CsrMatrix::overwrite_values`]).
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    #[must_use]
    pub fn entry_index(&self, r: usize, c: usize) -> Option<usize> {
        let start = self.row_starts[r];
        let row = &self.entries[start..self.row_starts[r + 1]];
        row.binary_search_by_key(&c, |&(col, _)| col)
            .ok()
            .map(|i| start + i)
    }

    /// The stored value at flat entry position `idx` (see
    /// [`CsrMatrix::entry_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= nnz`.
    #[must_use]
    pub fn value_at(&self, idx: usize) -> f64 {
        self.entries[idx].1
    }

    /// Replaces every stored value in flat entry order, keeping the
    /// sparsity structure. This is the rate-only rebuild primitive: a
    /// neighbor model with identical topology patches its rates in place
    /// instead of re-sorting and re-merging triplets.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != nnz`.
    pub fn overwrite_values(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.entries.len(), "value count mismatch");
        for (e, &v) in self.entries.iter_mut().zip(values) {
            e.1 = v;
        }
    }

    /// Multiplies every stored value in row `r` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows`.
    pub fn scale_row(&mut self, r: usize, factor: f64) {
        for e in &mut self.entries[self.row_starts[r]..self.row_starts[r + 1]] {
            e.1 *= factor;
        }
    }

    /// Computes `y = xᵀ·A` (left multiplication by a row vector), writing
    /// into `y`.
    ///
    /// This is the operation needed by power iteration on `π ← π·P`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differ from the matrix dimension.
    pub fn left_mul(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows);
        assert_eq!(y.len(), self.n_rows);
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for &(c, v) in self.row(r) {
                y[c] += xr * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_sorted_rows() {
        let m = CsrMatrix::from_triplets(3, vec![(2, 0, 5.0), (0, 2, 1.0), (0, 1, 2.0)]);
        assert_eq!(m.row(0), &[(1, 2.0), (2, 1.0)]);
        assert_eq!(m.row(1), &[]);
        assert_eq!(m.row(2), &[(0, 5.0)]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn merges_duplicates() {
        let m = CsrMatrix::from_triplets(2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.row(0), &[(1, 3.5)]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn does_not_merge_across_rows() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 2, 1.0), (1, 2, 2.0)]);
        assert_eq!(m.row(0), &[(2, 1.0)]);
        assert_eq!(m.row(1), &[(2, 2.0)]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_triplets(4, vec![]);
        assert_eq!(m.nnz(), 0);
        for r in 0..4 {
            assert!(m.row(r).is_empty());
        }
    }

    #[test]
    fn left_mul_matches_dense() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 3];
        m.left_mul(&x, &mut y);
        // y_c = sum_r x_r * A[r][c]
        assert_eq!(y, [400.0, 2.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CsrMatrix::from_triplets(2, vec![(0, 5, 1.0)]);
    }

    #[test]
    fn entry_index_finds_stored_entries_only() {
        let m = CsrMatrix::from_triplets(3, vec![(0, 2, 1.0), (0, 1, 2.0), (2, 0, 5.0)]);
        assert_eq!(m.entry_index(0, 1), Some(0));
        assert_eq!(m.entry_index(0, 2), Some(1));
        assert_eq!(m.entry_index(2, 0), Some(2));
        assert_eq!(m.entry_index(0, 0), None);
        assert_eq!(m.entry_index(1, 2), None);
        assert_eq!(m.value_at(2), 5.0);
    }

    #[test]
    fn overwrite_values_patches_in_entry_order() {
        let mut m = CsrMatrix::from_triplets(2, vec![(0, 1, 1.0), (1, 0, 2.0)]);
        m.overwrite_values(&[10.0, 20.0]);
        assert_eq!(m.row(0), &[(1, 10.0)]);
        assert_eq!(m.row(1), &[(0, 20.0)]);
    }

    #[test]
    #[should_panic(expected = "value count mismatch")]
    fn overwrite_values_rejects_wrong_length() {
        let mut m = CsrMatrix::from_triplets(2, vec![(0, 1, 1.0)]);
        m.overwrite_values(&[1.0, 2.0]);
    }

    #[test]
    fn scale_row_touches_only_that_row() {
        let mut m =
            CsrMatrix::from_triplets(3, vec![(0, 1, 2.0), (0, 2, 4.0), (1, 0, 3.0), (2, 1, 5.0)]);
        m.scale_row(0, 0.5);
        assert_eq!(m.row(0), &[(1, 1.0), (2, 2.0)]);
        assert_eq!(m.row(1), &[(0, 3.0)]);
        assert_eq!(m.row(2), &[(1, 5.0)]);
    }

    proptest! {
        // Satellite requirement: duplicate-triplet merging is explicit —
        // duplicates sum, and they sum in input order (stable sort), so the
        // build is bit-reproducible.
        #[test]
        fn duplicates_merge_by_input_order_summation(
            n in 1_usize..6,
            trips in proptest::collection::vec((0_usize..6, 0_usize..6, 0.001_f64..10.0), 1..40),
        ) {
            let trips: Vec<_> = trips
                .into_iter()
                .map(|(r, c, v)| (r % n, c % n, v))
                .collect();
            let m = CsrMatrix::from_triplets(n, trips.clone());
            // Expected value of (r, c): sum of matching triplets, left to
            // right in input order. Must match bitwise.
            for r in 0..n {
                for c in 0..n {
                    let expect = trips
                        .iter()
                        .filter(|&&(tr, tc, _)| tr == r && tc == c)
                        .fold(None, |acc: Option<f64>, &(_, _, v)| {
                            Some(acc.map_or(v, |a| a + v))
                        });
                    let got = m.entry_index(r, c).map(|i| m.value_at(i));
                    prop_assert_eq!(got.map(f64::to_bits), expect.map(f64::to_bits));
                }
            }
            // Structure: rows sorted by column, no duplicate columns.
            for r in 0..n {
                let row = m.row(r);
                for w in row.windows(2) {
                    prop_assert!(w[0].0 < w[1].0, "row {} not strictly sorted", r);
                }
            }
        }

        // Satellite requirement: input order of *distinct* entries never
        // matters — shuffled triplets build the identical matrix.
        #[test]
        fn unsorted_triplets_build_identical_matrices(
            n in 1_usize..6,
            trips in proptest::collection::vec((0_usize..6, 0_usize..6, 0.001_f64..10.0), 0..20),
            rot in 0_usize..20,
        ) {
            let mut dedup: Vec<(usize, usize, f64)> = Vec::new();
            for (r, c, v) in trips {
                let (r, c) = (r % n, c % n);
                if !dedup.iter().any(|&(dr, dc, _)| dr == r && dc == c) {
                    dedup.push((r, c, v));
                }
            }
            let sorted = CsrMatrix::from_triplets(n, dedup.clone());
            if !dedup.is_empty() {
                let rot = rot % dedup.len();
                dedup.rotate_left(rot);
            }
            let rotated = CsrMatrix::from_triplets(n, dedup);
            prop_assert_eq!(sorted, rotated);
        }

        // overwrite_values + entry_index round-trip preserves the structure
        // and replaces exactly the values (the rate-only rebuild contract).
        #[test]
        fn value_patch_round_trips(
            n in 1_usize..6,
            trips in proptest::collection::vec((0_usize..6, 0_usize..6, 0.001_f64..10.0), 1..20),
        ) {
            let trips: Vec<_> = trips
                .into_iter()
                .map(|(r, c, v)| (r % n, c % n, v))
                .collect();
            let original = CsrMatrix::from_triplets(n, trips.clone());
            let doubled_trips: Vec<_> =
                trips.iter().map(|&(r, c, v)| (r, c, 2.0 * v)).collect();
            let rebuilt = CsrMatrix::from_triplets(n, doubled_trips);
            // Patch: accumulate doubled contributions through entry_index.
            let mut values = vec![0.0_f64; original.nnz()];
            for &(r, c, v) in &trips {
                let idx = original.entry_index(r, c).expect("entry exists");
                values[idx] += 2.0 * v;
            }
            let mut patched = original;
            patched.overwrite_values(&values);
            // Bit-identical to a from-scratch rebuild with the new rates.
            prop_assert_eq!(patched, rebuilt);
        }
    }

    proptest! {
        #[test]
        fn left_mul_agrees_with_naive(
            n in 1_usize..8,
            trips in proptest::collection::vec((0_usize..8, 0_usize..8, -10.0_f64..10.0), 0..30),
            xs in proptest::collection::vec(-5.0_f64..5.0, 8),
        ) {
            let trips: Vec<_> = trips
                .into_iter()
                .map(|(r, c, v)| (r % n, c % n, v))
                .collect();
            let mut dense = vec![vec![0.0; n]; n];
            for &(r, c, v) in &trips {
                dense[r][c] += v;
            }
            let m = CsrMatrix::from_triplets(n, trips);
            let x = &xs[..n];
            let mut y = vec![0.0; n];
            m.left_mul(x, &mut y);
            for c in 0..n {
                let expect: f64 = (0..n).map(|r| x[r] * dense[r][c]).sum();
                prop_assert!((y[c] - expect).abs() < 1e-9);
            }
        }
    }
}
