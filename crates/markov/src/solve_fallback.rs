//! Resilient steady-state solution: a fallback chain of solvers with a
//! post-hoc residual check.
//!
//! One non-converged Gauss–Seidel sweep used to abort an entire design
//! search. [`FallbackSolver`] instead treats solver failure as an expected
//! event: it tries Gauss–Seidel first, falls back to uniformized power
//! iteration, then to dense direct elimination, giving each attempt its own
//! iteration and wall-clock budget. Every produced solution — whichever
//! solver made it — must pass an independent acceptance test before it is
//! returned: the balance residual `‖πQ‖∞` has to be below
//! [`FallbackSolver::residual_tolerance`], all probabilities finite and
//! non-negative, and the mass normalized. A solver that converged to the
//! wrong answer is therefore rejected, not silently propagated.
//!
//! The full attempt trail is recorded in [`SolveDiagnostics`] so callers
//! (the availability engines and, above them, the design search) can report
//! how degraded an evaluation was.

use crate::scratch::{sanitize_hint, SolveScratch};
use crate::{
    Ctmc, DenseSolver, GaussSeidelSolver, MarkovError, PowerSolver, SolveBudget, SteadyStateSolver,
};
use std::time::{Duration, Instant};

/// Which concrete algorithm a fallback attempt used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Sparse Gauss–Seidel sweeps.
    GaussSeidel,
    /// Uniformized power iteration.
    Power,
    /// Dense Gaussian elimination.
    Dense,
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverKind::GaussSeidel => write!(f, "gauss-seidel"),
            SolverKind::Power => write!(f, "power"),
            SolverKind::Dense => write!(f, "dense"),
        }
    }
}

/// One attempted solve inside a fallback chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// The solver that ran.
    pub solver: SolverKind,
    /// Why the attempt was rejected; `None` when it was accepted.
    pub error: Option<MarkovError>,
    /// The measured balance residual `‖πQ‖∞`, when a solution was produced
    /// (accepted or rejected by the residual check).
    pub residual: Option<f64>,
    /// Wall-clock time the attempt took.
    pub wall_time: Duration,
    /// Iterative sweeps the attempt used (`0` for the direct dense solve).
    pub iterations: usize,
    /// Whether the attempt started from a warm hint rather than the uniform
    /// distribution (always `false` for the dense solve, which is direct).
    pub warm_started: bool,
}

impl SolveAttempt {
    /// Whether this attempt produced the accepted solution.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.error.is_none()
    }
}

/// The recorded trail of a fallback solve: every attempt, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveDiagnostics {
    /// Attempts in the order they ran; the last one is the accepted attempt
    /// when the solve succeeded.
    pub attempts: Vec<SolveAttempt>,
    /// Whether a usable (correctly sized, finite, positive-mass) warm-start
    /// hint was supplied to this solve.
    pub warm_hint_used: bool,
}

impl SolveDiagnostics {
    /// Number of fallbacks taken: attempts beyond the first.
    #[must_use]
    pub fn fallbacks_taken(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// The solver whose solution was accepted, if any.
    #[must_use]
    pub fn accepted_solver(&self) -> Option<SolverKind> {
        self.attempts
            .iter()
            .find(|a| a.accepted())
            .map(|a| a.solver)
    }

    /// The residual of the accepted solution, if any.
    #[must_use]
    pub fn accepted_residual(&self) -> Option<f64> {
        self.attempts
            .iter()
            .find(|a| a.accepted())
            .and_then(|a| a.residual)
    }

    /// Sweeps used by the accepted attempt, if any (`Some(0)` for dense).
    #[must_use]
    pub fn accepted_iterations(&self) -> Option<usize> {
        self.attempts
            .iter()
            .find(|a| a.accepted())
            .map(|a| a.iterations)
    }

    /// Total iterative sweeps across all attempts, accepted or not.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.attempts.iter().map(|a| a.iterations as u64).sum()
    }

    /// Whether the accepted solution actually consumed the warm hint (an
    /// iterative solver started from it). Dense acceptance leaves this
    /// `false` even when a hint was offered.
    #[must_use]
    pub fn warm_start_consumed(&self) -> bool {
        self.attempts
            .iter()
            .find(|a| a.accepted())
            .is_some_and(|a| a.warm_started)
    }

    /// Total wall-clock time across all attempts.
    #[must_use]
    pub fn total_wall_time(&self) -> Duration {
        self.attempts.iter().map(|a| a.wall_time).sum()
    }
}

/// A steady-state policy that chains solvers and verifies their output.
///
/// Attempt order depends on chain size: below
/// [`FallbackSolver::with_dense_preferred_below`] states the dense direct
/// solve runs first (it is exact and fastest there), falling back to
/// Gauss–Seidel then power iteration if elimination fails. At or above the
/// cutover the order is Gauss–Seidel → power iteration → dense (the dense
/// attempt is skipped entirely past
/// [`FallbackSolver::with_dense_state_limit`], where O(n³) elimination
/// would dwarf any iterative budget).
///
/// # Examples
///
/// ```
/// use aved_markov::{CtmcBuilder, FallbackSolver, SteadyStateSolver};
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1.0 / 1000.0).rate(1, 0, 1.0 / 10.0);
/// let ctmc = b.build()?;
/// let (pi, diagnostics) = FallbackSolver::default().solve_with_diagnostics(&ctmc);
/// let pi = pi?;
/// assert!((pi[1] - 10.0 / 1010.0).abs() < 1e-12);
/// assert!(diagnostics.accepted_residual().unwrap() <= 1e-9);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackSolver {
    gauss_seidel: GaussSeidelSolver,
    power: PowerSolver,
    residual_tolerance: f64,
    attempt_budget: Option<Duration>,
    dense_preferred_below: usize,
    dense_state_limit: usize,
    assume_irreducible: bool,
}

impl FallbackSolver {
    /// Creates a fallback policy with the given residual acceptance
    /// tolerance, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] if the tolerance is not
    /// a positive finite number.
    pub fn try_new(residual_tolerance: f64) -> Result<FallbackSolver, MarkovError> {
        if !(residual_tolerance > 0.0 && residual_tolerance.is_finite()) {
            return Err(MarkovError::InvalidSolverConfig {
                detail: format!(
                    "residual tolerance must be positive and finite, got {residual_tolerance}"
                ),
            });
        }
        Ok(FallbackSolver {
            // The Gauss–Seidel stage may stop once its measured balance
            // residual is three decades below the acceptance tolerance:
            // the acceptance gate re-verifies every solution anyway, and
            // the margin keeps the returned state vector accurate to
            // roughly the gate itself even on weakly-ergodic chains
            // (entry error ~ residual x the chain's slowest-mode
            // amplification).
            gauss_seidel: GaussSeidelSolver::default()
                .with_residual_exit(residual_tolerance * 1e-3),
            power: PowerSolver::default(),
            residual_tolerance,
            attempt_budget: Some(Duration::from_secs(30)),
            dense_preferred_below: 3000,
            dense_state_limit: 20_000,
            assume_irreducible: false,
        })
    }

    /// Creates a fallback policy with the given residual acceptance
    /// tolerance.
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is not a positive finite number; use
    /// [`Self::try_new`] for user-supplied values.
    #[must_use]
    pub fn new(residual_tolerance: f64) -> FallbackSolver {
        FallbackSolver::try_new(residual_tolerance).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The residual acceptance tolerance.
    #[must_use]
    pub fn residual_tolerance(&self) -> f64 {
        self.residual_tolerance
    }

    /// Replaces the Gauss–Seidel stage (tolerance, sweep budget,
    /// relaxation).
    #[must_use]
    pub fn with_gauss_seidel(mut self, solver: GaussSeidelSolver) -> FallbackSolver {
        self.gauss_seidel = solver;
        self
    }

    /// Replaces the power-iteration stage.
    #[must_use]
    pub fn with_power(mut self, solver: PowerSolver) -> FallbackSolver {
        self.power = solver;
        self
    }

    /// Caps the wall-clock time of each *iterative* attempt (dense
    /// elimination is non-preemptible and bounded by the state limit
    /// instead). `None` removes the cap. Defaults to 30 s.
    #[must_use]
    pub fn with_attempt_budget(mut self, budget: Option<Duration>) -> FallbackSolver {
        self.attempt_budget = budget;
        self
    }

    /// Below this state count the dense direct solve runs first. Defaults
    /// to 3000, matching the availability engines' historical cutover.
    #[must_use]
    pub fn with_dense_preferred_below(mut self, n_states: usize) -> FallbackSolver {
        self.dense_preferred_below = n_states;
        self
    }

    /// Above this state count the dense attempt is skipped entirely.
    /// Defaults to 20 000.
    #[must_use]
    pub fn with_dense_state_limit(mut self, n_states: usize) -> FallbackSolver {
        self.dense_state_limit = n_states;
        self
    }

    /// Declares the chain's structure already verified: the iterative
    /// stages skip their up-front strong-connectivity traversals.
    ///
    /// Only sound when the identical transition structure previously
    /// produced an accepted solution — the warm-start engines set this for
    /// rate-only in-place rebuilds of cached chains, where irreducibility
    /// (a purely structural property) cannot have changed. The acceptance
    /// gate still re-verifies every solution.
    #[must_use]
    pub fn with_irreducibility_assumed(mut self, assume: bool) -> FallbackSolver {
        self.assume_irreducible = assume;
        self
    }

    /// Computes the balance residual `‖πQ‖∞` of a candidate solution: for
    /// each state `j`, `|Σ_{i≠j} π_i q_ij − π_j · exit_rate(j)|` — the net
    /// probability flow that a true stationary distribution would make zero.
    #[must_use]
    pub fn residual_inf_norm(ctmc: &Ctmc, pi: &[f64]) -> f64 {
        let n = ctmc.n_states();
        let mut net_flow = vec![0.0_f64; n];
        for t in ctmc.transitions() {
            net_flow[t.to] += pi[t.from] * t.rate;
        }
        let mut worst = 0.0_f64;
        for j in 0..n {
            let r = (net_flow[j] - pi[j] * ctmc.exit_rate(j)).abs();
            worst = worst.max(r);
        }
        worst
    }

    /// Validates a produced solution: finite, non-negative (up to rounding),
    /// normalized mass, and balance residual under the tolerance. Returns
    /// the measured residual on success.
    fn accept(&self, ctmc: &Ctmc, pi: &[f64]) -> Result<f64, MarkovError> {
        if pi.iter().any(|p| !p.is_finite()) {
            return Err(MarkovError::NonFiniteSolution);
        }
        if pi.iter().any(|&p| p < -1e-9) || (pi.iter().sum::<f64>() - 1.0).abs() > 1e-6 {
            return Err(MarkovError::Singular);
        }
        let residual = FallbackSolver::residual_inf_norm(ctmc, pi);
        if residual > self.residual_tolerance {
            return Err(MarkovError::ResidualTooLarge {
                residual,
                tolerance: self.residual_tolerance,
            });
        }
        Ok(residual)
    }

    fn attempt_order(&self, n_states: usize) -> Vec<SolverKind> {
        let mut order = if n_states < self.dense_preferred_below {
            vec![
                SolverKind::Dense,
                SolverKind::GaussSeidel,
                SolverKind::Power,
            ]
        } else {
            vec![
                SolverKind::GaussSeidel,
                SolverKind::Power,
                SolverKind::Dense,
            ]
        };
        if n_states > self.dense_state_limit {
            order.retain(|k| *k != SolverKind::Dense);
        }
        order
    }

    /// Runs the fallback chain, returning the accepted solution (or the
    /// last attempt's error) together with the full attempt trail.
    pub fn solve_with_diagnostics(
        &self,
        ctmc: &Ctmc,
    ) -> (Result<Vec<f64>, MarkovError>, SolveDiagnostics) {
        self.solve_warm(ctmc, None, &mut SolveScratch::new())
    }

    /// Runs the fallback chain with an optional warm-start hint and a
    /// reusable solve workspace.
    ///
    /// The hint seeds the *iterative* stages (Gauss–Seidel, power); the
    /// dense direct solve ignores it. Soundness does not depend on the
    /// hint: every produced solution still has to pass the same acceptance
    /// test (finite, non-negative, normalized, `‖πQ‖∞` under the residual
    /// tolerance), so a warm start can only change how fast an acceptable
    /// solution is found, never *whether* a solution is acceptable.
    ///
    /// Adversarial hints degrade to a cold start: a wrong-sized, non-finite
    /// or zero-mass hint is discarded (see `SolveDiagnostics::warm_hint_used`),
    /// and a non-normalized one is renormalized. `scratch` carries the
    /// iteration vectors, transposed adjacency, and dense matrix across
    /// calls so repeated solves stop reallocating them.
    pub fn solve_warm(
        &self,
        ctmc: &Ctmc,
        hint: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> (Result<Vec<f64>, MarkovError>, SolveDiagnostics) {
        self.solve_warm_budgeted(ctmc, hint, scratch, &SolveBudget::unlimited())
    }

    /// Runs the fallback chain under a cooperative [`SolveBudget`].
    ///
    /// Identical to [`Self::solve_warm`] except that every iterative stage
    /// polls the budget's deadline and cancellation token between sweeps,
    /// and the budget is re-checked before each attempt starts (so an
    /// already-exhausted budget never launches the non-preemptible dense
    /// solve). Budget exhaustion and cancellation abort the whole chain —
    /// falling back to another solver after the deadline would only burn
    /// more of the resource that just ran out.
    pub fn solve_warm_budgeted(
        &self,
        ctmc: &Ctmc,
        hint: Option<&[f64]>,
        scratch: &mut SolveScratch,
        budget: &SolveBudget,
    ) -> (Result<Vec<f64>, MarkovError>, SolveDiagnostics) {
        let warm = hint.and_then(|h| sanitize_hint(ctmc.n_states(), h));
        let mut diagnostics = SolveDiagnostics {
            warm_hint_used: warm.is_some(),
            ..SolveDiagnostics::default()
        };
        let governed = !budget.is_unlimited();
        let mut last_error = MarkovError::EmptyChain;
        for kind in self.attempt_order(ctmc.n_states()) {
            // Re-check before every attempt: the dense stage is
            // non-preemptible, so this gate is its only cancellation point.
            if governed {
                if let Err(e) = budget.checkpoint("solve", diagnostics.attempts.len() as u64) {
                    return (Err(e), diagnostics);
                }
            }
            let started = Instant::now();
            let warm_started = warm.is_some() && kind != SolverKind::Dense;
            let raw = match kind {
                SolverKind::GaussSeidel => {
                    let mut solver = self.gauss_seidel;
                    if let Some(allowance) = self.attempt_budget {
                        solver = solver.with_time_budget(allowance);
                    }
                    if self.assume_irreducible {
                        solver = solver.assuming_irreducible();
                    }
                    solver.sweep_into_budgeted(ctmc, warm.as_deref(), scratch, budget)
                }
                SolverKind::Power => {
                    let mut solver = self.power;
                    if let Some(allowance) = self.attempt_budget {
                        solver = solver.with_time_budget(allowance);
                    }
                    solver.power_into_budgeted(ctmc, warm.as_deref(), scratch, budget)
                }
                SolverKind::Dense => DenseSolver::new().solve_into(ctmc, scratch).map(|()| 0),
            };
            let (checked, residual) = match raw {
                Ok(iterations) => match self.accept(ctmc, &scratch.pi) {
                    Ok(residual) => (Ok(iterations), Some(residual)),
                    Err(e) => {
                        let residual = match e {
                            MarkovError::ResidualTooLarge { residual, .. } => Some(residual),
                            _ => None,
                        };
                        (Err((e, iterations)), residual)
                    }
                },
                Err(e) => {
                    // Failed iterative attempts still burned sweeps; the
                    // count rides in the error.
                    let iterations = match e {
                        MarkovError::NoConvergence { iterations, .. }
                        | MarkovError::TimedOut { iterations, .. } => iterations,
                        _ => 0,
                    };
                    (Err((e, iterations)), None)
                }
            };
            let wall_time = started.elapsed();
            match checked {
                Ok(iterations) => {
                    diagnostics.attempts.push(SolveAttempt {
                        solver: kind,
                        error: None,
                        residual,
                        wall_time,
                        iterations,
                        warm_started,
                    });
                    return (Ok(scratch.pi.clone()), diagnostics);
                }
                Err((e, iterations)) => {
                    // Structural failures apply to every solver: stop early
                    // rather than re-diagnosing the same chain three times.
                    // Budget exhaustion and cancellation likewise end the
                    // chain — the resource is gone for every later stage too.
                    let structural = matches!(
                        e,
                        MarkovError::Reducible { .. }
                            | MarkovError::EmptyChain
                            | MarkovError::BudgetExhausted { .. }
                            | MarkovError::Cancelled { .. }
                    );
                    diagnostics.attempts.push(SolveAttempt {
                        solver: kind,
                        error: Some(e.clone()),
                        residual,
                        wall_time,
                        iterations,
                        warm_started,
                    });
                    last_error = e;
                    if structural {
                        break;
                    }
                }
            }
        }
        (Err(last_error), diagnostics)
    }
}

impl Default for FallbackSolver {
    /// Residual tolerance `1e-9`, default Gauss–Seidel and power stages,
    /// 30 s per iterative attempt, dense preferred below 3000 states.
    fn default() -> FallbackSolver {
        FallbackSolver::new(1e-9)
    }
}

impl SteadyStateSolver for FallbackSolver {
    fn steady_state(&self, ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError> {
        self.solve_with_diagnostics(ctmc).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;
    use proptest::prelude::*;

    fn ring_chain(n: usize, rates: &[f64]) -> Ctmc {
        let mut b = CtmcBuilder::new(n);
        for i in 0..n {
            b.rate(i, (i + 1) % n, rates[i]);
            b.rate((i + 1) % n, i, rates[n + i]);
        }
        b.build().unwrap()
    }

    #[test]
    fn accepts_first_solver_on_easy_chain() {
        let ctmc = ring_chain(4, &[3.0, 1.5, 0.5, 2.0, 0.25, 1.0, 4.0, 0.75]);
        let (pi, diag) = FallbackSolver::default().solve_with_diagnostics(&ctmc);
        let pi = pi.unwrap();
        assert_eq!(diag.attempts.len(), 1);
        assert_eq!(diag.fallbacks_taken(), 0);
        assert_eq!(diag.accepted_solver(), Some(SolverKind::Dense));
        assert!(diag.accepted_residual().unwrap() <= 1e-9);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_chains_start_iterative() {
        let ctmc = ring_chain(4, &[3.0, 1.5, 0.5, 2.0, 0.25, 1.0, 4.0, 0.75]);
        let solver = FallbackSolver::default().with_dense_preferred_below(0);
        let (pi, diag) = solver.solve_with_diagnostics(&ctmc);
        assert!(pi.is_ok());
        assert_eq!(diag.accepted_solver(), Some(SolverKind::GaussSeidel));
    }

    #[test]
    fn falls_back_when_first_stage_is_starved() {
        // A Gauss-Seidel stage with a 1-sweep budget cannot converge; the
        // chain must fall back and still produce a verified answer.
        let ctmc = ring_chain(
            6,
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 2.5, 1.25, 0.8, 0.6, 0.5, 0.4],
        );
        let solver = FallbackSolver::default()
            .with_dense_preferred_below(0)
            .with_gauss_seidel(GaussSeidelSolver::new(1e-300, 1));
        let (pi, diag) = solver.solve_with_diagnostics(&ctmc);
        let pi = pi.unwrap();
        assert!(diag.fallbacks_taken() >= 1);
        assert!(matches!(
            diag.attempts[0].error,
            Some(MarkovError::NoConvergence { .. })
        ));
        assert!(diag.accepted_residual().unwrap() <= 1e-9);
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        for (d, p) in dense.iter().zip(pi.iter()) {
            assert!((d - p).abs() < 1e-9);
        }
    }

    #[test]
    fn exhausting_every_stage_reports_the_trail() {
        let ctmc = ring_chain(4, &[3.0, 1.5, 0.5, 2.0, 0.25, 1.0, 4.0, 0.75]);
        let solver = FallbackSolver::default()
            .with_dense_preferred_below(0)
            .with_dense_state_limit(0) // dense stage removed
            .with_gauss_seidel(GaussSeidelSolver::new(1e-300, 1))
            .with_power(PowerSolver::new(1e-300, 1));
        let (pi, diag) = solver.solve_with_diagnostics(&ctmc);
        assert!(pi.is_err());
        assert_eq!(diag.attempts.len(), 2);
        assert!(diag.attempts.iter().all(|a| !a.accepted()));
        assert!(diag.accepted_solver().is_none());
    }

    #[test]
    fn reducible_chains_fail_fast_without_retrying() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        let ctmc = b.build_unchecked();
        let (pi, diag) = FallbackSolver::default().solve_with_diagnostics(&ctmc);
        assert!(matches!(pi, Err(MarkovError::Reducible { .. })));
        assert_eq!(diag.attempts.len(), 1, "structural errors are not retried");
    }

    #[test]
    fn residual_check_rejects_sloppy_solutions() {
        // A solver tolerance so loose it stops on the uniform initial guess
        // must be caught by the residual acceptance test, then rescued by
        // the next stage.
        let ctmc = ring_chain(4, &[30.0, 0.15, 5.0, 0.02, 0.25, 10.0, 4.0, 0.75]);
        let solver = FallbackSolver::default()
            .with_dense_preferred_below(0)
            .with_gauss_seidel(GaussSeidelSolver::new(1e300, 100_000));
        let (pi, diag) = solver.solve_with_diagnostics(&ctmc);
        assert!(pi.is_ok());
        assert!(matches!(
            diag.attempts[0].error,
            Some(MarkovError::ResidualTooLarge { .. })
        ));
        assert!(diag.attempts[0].residual.unwrap() > 1e-9);
        assert!(diag.accepted_residual().unwrap() <= 1e-9);
    }

    #[test]
    fn exhausted_budget_aborts_the_chain_without_fallbacks() {
        use crate::CancelToken;
        let ctmc = ring_chain(4, &[3.0, 1.5, 0.5, 2.0, 0.25, 1.0, 4.0, 0.75]);
        let solver = FallbackSolver::default().with_dense_preferred_below(0);

        // A cancelled token trips the pre-attempt gate before any solver
        // runs — including the non-preemptible dense stage.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = SolveBudget::unlimited().with_cancel(token);
        let (pi, diag) =
            solver.solve_warm_budgeted(&ctmc, None, &mut SolveScratch::new(), &cancelled);
        assert!(matches!(pi, Err(MarkovError::Cancelled { .. })));
        assert!(diag.attempts.is_empty(), "no attempt should have launched");

        // A sweep cap starves Gauss-Seidel mid-chain; the budget error must
        // NOT trigger a fallback to power iteration or dense elimination.
        let capped = SolveBudget::unlimited().with_max_sweeps(2);
        let (pi, diag) = solver.solve_warm_budgeted(&ctmc, None, &mut SolveScratch::new(), &capped);
        assert!(matches!(pi, Err(MarkovError::BudgetExhausted { .. })));
        assert_eq!(diag.attempts.len(), 1, "budget errors are not retried");

        // The unlimited budget reproduces the plain path bit-for-bit.
        let (plain, _) = solver.solve_warm(&ctmc, None, &mut SolveScratch::new());
        let (governed, _) = solver.solve_warm_budgeted(
            &ctmc,
            None,
            &mut SolveScratch::new(),
            &SolveBudget::unlimited(),
        );
        let (plain, governed) = (plain.unwrap(), governed.unwrap());
        for (a, b) in plain.iter().zip(governed.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn residual_inf_norm_is_zero_for_exact_solutions() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0 / 1000.0).rate(1, 0, 1.0 / 10.0);
        let ctmc = b.build().unwrap();
        let exact = vec![1000.0 / 1010.0, 10.0 / 1010.0];
        assert!(FallbackSolver::residual_inf_norm(&ctmc, &exact) < 1e-18);
    }

    #[test]
    fn try_new_rejects_bad_tolerance() {
        for tol in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                FallbackSolver::try_new(tol),
                Err(MarkovError::InvalidSolverConfig { .. })
            ));
        }
    }

    #[test]
    fn iterative_path_accepts_early_via_the_residual_exit() {
        // The default policy's Gauss-Seidel stage stops once the balance
        // residual is three decades under the acceptance gate; a stage
        // without the exit grinds on to its per-sweep-delta tolerance.
        let mut b = CtmcBuilder::new(12);
        for i in 0..12_usize {
            b.rate(i, (i + 1) % 12, 0.2 + i as f64 / 2.0);
            b.rate((i + 1) % 12, i, 1.0 + i as f64 / 5.0);
        }
        let ctmc = b.build().unwrap();
        let fast = FallbackSolver::default().with_dense_preferred_below(0);
        let slow = fast.with_gauss_seidel(GaussSeidelSolver::default());
        let (pi_fast, diag_fast) = fast.solve_with_diagnostics(&ctmc);
        let (pi_slow, diag_slow) = slow.solve_with_diagnostics(&ctmc);
        let (pi_fast, pi_slow) = (pi_fast.unwrap(), pi_slow.unwrap());
        assert!(diag_fast.accepted_residual().unwrap() <= 1e-9);
        assert!(
            diag_fast.accepted_iterations().unwrap() < diag_slow.accepted_iterations().unwrap(),
            "residual exit saved no sweeps: {:?} vs {:?}",
            diag_fast.accepted_iterations(),
            diag_slow.accepted_iterations()
        );
        for (f, s) in pi_fast.iter().zip(pi_slow.iter()) {
            assert!((f - s).abs() < 1e-9, "early-exit drifted: {f} vs {s}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        // Satellite requirement: FallbackSolver agrees with DenseSolver on
        // random ergodic chains of up to 64 states (ring backbone keeps the
        // chain irreducible; extra chords vary the structure).
        #[test]
        fn agrees_with_dense_on_random_ergodic_chains(
            n in 2_usize..65,
            rates in proptest::collection::vec(0.05_f64..20.0, 2 * 64),
            chords in proptest::collection::vec((0_usize..64, 0_usize..64, 0.05_f64..20.0), 0..12),
        ) {
            let mut b = CtmcBuilder::new(n);
            for i in 0..n {
                b.rate(i, (i + 1) % n, rates[i]);
                b.rate((i + 1) % n, i, rates[64 + i]);
            }
            for (from, to, rate) in chords {
                let (from, to) = (from % n, to % n);
                if from != to {
                    b.rate(from, to, rate);
                }
            }
            let ctmc = b.build().unwrap();
            let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
            // Exercise the iterative-first path regardless of size.
            let solver = FallbackSolver::default().with_dense_preferred_below(0);
            let (pi, diag) = solver.solve_with_diagnostics(&ctmc);
            let pi = pi.unwrap();
            prop_assert!(diag.accepted_residual().unwrap() <= 1e-9);
            for (d, p) in dense.iter().zip(pi.iter()) {
                prop_assert!((d - p).abs() < 1e-8, "dense={} fallback={}", d, p);
            }
        }

        // Satellite requirement: a warm-started FallbackSolver agrees with
        // the cold solve to 1e-9 on random ergodic chains, including
        // adversarial warm starts (wrong-size hint rejected, non-normalized
        // hint renormalized, NaN hint ignored → cold path).
        #[test]
        fn warm_start_agrees_with_cold_on_random_ergodic_chains(
            n in 2_usize..65,
            rates in proptest::collection::vec(0.05_f64..20.0, 2 * 64),
            chords in proptest::collection::vec((0_usize..64, 0_usize..64, 0.05_f64..20.0), 0..12),
            perturb in 0.5_f64..2.0,
        ) {
            let mut b = CtmcBuilder::new(n);
            for i in 0..n {
                b.rate(i, (i + 1) % n, rates[i]);
                b.rate((i + 1) % n, i, rates[64 + i]);
            }
            for (from, to, rate) in chords {
                let (from, to) = (from % n, to % n);
                if from != to {
                    b.rate(from, to, rate);
                }
            }
            let ctmc = b.build().unwrap();
            // Iterative-first so the hint is actually consumed.
            let solver = FallbackSolver::default().with_dense_preferred_below(0);
            let (cold, _) = solver.solve_with_diagnostics(&ctmc);
            let cold = cold.unwrap();
            let mut scratch = SolveScratch::new();

            // A plausible neighbor hint: the cold solution perturbed and
            // deliberately left non-normalized (renormalizing is the
            // solver's job).
            let hint: Vec<f64> = cold
                .iter()
                .enumerate()
                .map(|(i, &p)| if i % 2 == 0 { p * perturb } else { p })
                .collect();
            let (warm, warm_diag) = solver.solve_warm(&ctmc, Some(&hint), &mut scratch);
            let warm = warm.unwrap();
            prop_assert!(warm_diag.warm_hint_used);
            prop_assert!(warm_diag.warm_start_consumed());
            prop_assert!(warm_diag.accepted_residual().unwrap() <= 1e-9);
            for (c, w) in cold.iter().zip(warm.iter()) {
                prop_assert!((c - w).abs() < 1e-9, "cold={} warm={}", c, w);
            }

            // Adversarial hints are discarded and the solve degrades to the
            // cold path — bit-identically, since a discarded hint leaves no
            // trace in the arithmetic.
            let wrong_size = vec![1.0; n + 1];
            let mut with_nan = cold.clone();
            with_nan[0] = f64::NAN;
            let no_mass = vec![0.0; n];
            for bad in [&wrong_size[..], &with_nan[..], &no_mass[..]] {
                let (pi, diag) = solver.solve_warm(&ctmc, Some(bad), &mut scratch);
                let pi = pi.unwrap();
                prop_assert!(!diag.warm_hint_used, "unusable hint must be discarded");
                for (c, p) in cold.iter().zip(pi.iter()) {
                    prop_assert_eq!(c.to_bits(), p.to_bits());
                }
            }
        }
    }
}
