//! Reusable solver workspace.
//!
//! A design search solves thousands of chains of nearly identical size
//! back to back; allocating the iteration vectors, the transposed in-edge
//! structure, and the dense elimination matrix fresh for every solve is
//! pure churn. [`SolveScratch`] owns those buffers so consecutive solves
//! recycle them — pass one to
//! [`FallbackSolver::solve_warm`](crate::FallbackSolver::solve_warm) (or the
//! individual solvers' scratch entry points) and the only per-solve
//! allocation left is the returned `π` vector itself.

/// Reusable buffers for steady-state solves.
///
/// All buffers are resized on demand, so one scratch serves chains of any
/// (varying) size; capacity only grows. A fresh scratch is equivalent to no
/// scratch — reuse changes performance, never results.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// Current iterate / final solution of the last solve.
    pub(crate) pi: Vec<f64>,
    /// Second iterate for Jacobi-style updates (power iteration).
    pub(crate) next: Vec<f64>,
    /// Transposed adjacency: `in_starts[j]..in_starts[j+1]` indexes
    /// `in_edges`, listing the incoming `(source, rate)` pairs of state `j`.
    pub(crate) in_starts: Vec<usize>,
    /// Flat in-edge storage (see `in_starts`).
    pub(crate) in_edges: Vec<(usize, f64)>,
    /// Per-state write cursor used while building the transpose.
    pub(crate) in_cursor: Vec<usize>,
    /// Row-major dense elimination workspace (`n × n`).
    pub(crate) dense: Vec<f64>,
    /// Right-hand side / solution vector of the dense solve.
    pub(crate) rhs: Vec<f64>,
}

impl SolveScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }

    /// Total `f64` capacity currently held across all buffers (a coarse
    /// footprint indicator for tests and diagnostics).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.pi.capacity()
            + self.next.capacity()
            + self.dense.capacity()
            + self.rhs.capacity()
            + 2 * self.in_edges.capacity()
            + self.in_starts.capacity()
            + self.in_cursor.capacity()
    }
}

/// Validates and normalizes a warm-start hint.
///
/// Returns `None` (caller falls back to a cold start) when the hint is the
/// wrong length, contains a non-finite entry, has a meaningfully negative
/// entry, or carries no mass. Tiny negative entries (down to `-1e-9`, the
/// solvers' own rounding allowance) are clamped to zero; any other mass
/// profile is renormalized to sum to one.
pub(crate) fn sanitize_hint(n: usize, hint: &[f64]) -> Option<Vec<f64>> {
    if hint.len() != n {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut sum = 0.0_f64;
    for &h in hint {
        if !h.is_finite() || h < -1e-9 {
            return None;
        }
        let v = h.max(0.0);
        out.push(v);
        sum += v;
    }
    if !sum.is_finite() || sum <= 0.0 {
        return None;
    }
    for v in &mut out {
        *v /= sum;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_rejects_wrong_size() {
        assert!(sanitize_hint(3, &[0.5, 0.5]).is_none());
        assert!(sanitize_hint(2, &[0.2, 0.3, 0.5]).is_none());
    }

    #[test]
    fn sanitize_rejects_non_finite_and_negative() {
        assert!(sanitize_hint(2, &[f64::NAN, 1.0]).is_none());
        assert!(sanitize_hint(2, &[f64::INFINITY, 1.0]).is_none());
        assert!(sanitize_hint(2, &[-0.5, 1.5]).is_none());
        assert!(sanitize_hint(2, &[0.0, 0.0]).is_none(), "no mass");
    }

    #[test]
    fn sanitize_renormalizes_and_clamps_rounding_noise() {
        let got = sanitize_hint(2, &[3.0, 1.0]).unwrap();
        assert_eq!(got, vec![0.75, 0.25]);
        let got = sanitize_hint(2, &[-1e-12, 2.0]).unwrap();
        assert_eq!(got, vec![0.0, 1.0]);
    }

    #[test]
    fn scratch_capacity_starts_empty() {
        assert_eq!(SolveScratch::new().capacity(), 0);
    }
}
