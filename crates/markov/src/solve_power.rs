//! Iterative steady-state solution by uniformized power iteration.

use crate::scratch::{sanitize_hint, SolveScratch};
use crate::{BudgetResource, Ctmc, MarkovError, SolveBudget, SteadyStateSolver};

/// Iterative steady-state solver for large sparse chains.
///
/// Uniformizes the CTMC into a DTMC `P = I + Q/Λ` (with `Λ` slightly above
/// the maximum exit rate so every state keeps a self-loop, which removes
/// periodicity) and runs power iteration `π ← π·P` until the change between
/// sweeps drops below the tolerance.
///
/// Slower to converge for stiff chains than [`DenseSolver`](crate::DenseSolver)
/// is to factorize, but memory-light and O(nnz) per sweep, so it scales to
/// chains far beyond dense elimination. The availability engines use it when
/// the truncated state space grows past the dense cutover.
///
/// # Examples
///
/// ```
/// use aved_markov::{CtmcBuilder, PowerSolver, SteadyStateSolver};
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 0.01).rate(1, 0, 1.0);
/// let pi = PowerSolver::new(1e-12, 1_000_000).steady_state(&b.build()?)?;
/// assert!((pi[0] - 1.0 / 1.01).abs() < 1e-8);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSolver {
    tolerance: f64,
    max_sweeps: usize,
    time_budget: Option<std::time::Duration>,
}

impl PowerSolver {
    /// Creates a solver with the given per-sweep convergence tolerance
    /// (max-norm of the change in `π`) and sweep limit, validating both.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] if `tolerance` is not a
    /// positive finite number or `max_sweeps` is zero.
    pub fn try_new(tolerance: f64, max_sweeps: usize) -> Result<PowerSolver, MarkovError> {
        if !(tolerance > 0.0 && tolerance.is_finite()) {
            return Err(MarkovError::InvalidSolverConfig {
                detail: format!("tolerance must be positive and finite, got {tolerance}"),
            });
        }
        if max_sweeps == 0 {
            return Err(MarkovError::InvalidSolverConfig {
                detail: "max_sweeps must be positive".into(),
            });
        }
        Ok(PowerSolver {
            tolerance,
            max_sweeps,
            time_budget: None,
        })
    }

    /// Creates a solver with the given per-sweep convergence tolerance
    /// (max-norm of the change in `π`) and sweep limit.
    ///
    /// Convenience for hard-coded parameters; use [`Self::try_new`] to
    /// validate user-supplied values without panicking.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite or `max_sweeps` is
    /// zero.
    #[must_use]
    pub fn new(tolerance: f64, max_sweeps: usize) -> PowerSolver {
        PowerSolver::try_new(tolerance, max_sweeps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Caps the wall-clock time one solve may take; the budget is checked
    /// every few sweeps, so overshoot is bounded by a handful of sweeps.
    #[must_use]
    pub fn with_time_budget(mut self, budget: std::time::Duration) -> PowerSolver {
        self.time_budget = Some(budget);
        self
    }

    /// The convergence tolerance.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The sweep limit.
    #[must_use]
    pub fn max_sweeps(&self) -> usize {
        self.max_sweeps
    }

    /// Like [`SteadyStateSolver::steady_state`] but starts iteration from
    /// `pi0` instead of the uniform distribution — a warm start.
    ///
    /// The per-sweep convergence criterion and downstream residual checks
    /// are independent of the starting point, so a good hint saves sweeps
    /// while a bad one merely costs them. `pi0` is renormalized to unit
    /// mass before use.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] when the hint is
    /// unusable (wrong length, non-finite or negative entries, zero mass),
    /// plus every error `steady_state` can return.
    pub fn steady_state_from(&self, ctmc: &Ctmc, pi0: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let hint = sanitize_hint(ctmc.n_states(), pi0).ok_or_else(|| {
            MarkovError::InvalidSolverConfig {
                detail: format!(
                    "warm-start hint unusable: need {} finite non-negative entries with positive mass",
                    ctmc.n_states()
                ),
            }
        })?;
        let mut scratch = SolveScratch::new();
        self.power_into(ctmc, Some(&hint), &mut scratch)?;
        Ok(std::mem::take(&mut scratch.pi))
    }

    /// The iteration loop, writing the solution into `scratch.pi` and
    /// reusing the scratch's iterate buffers. Returns the number of sweeps
    /// used. `warm`, when given, must already be sanitized.
    pub(crate) fn power_into(
        &self,
        ctmc: &Ctmc,
        warm: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<usize, MarkovError> {
        self.power_into_budgeted(ctmc, warm, scratch, &SolveBudget::unlimited())
    }

    /// [`power_into`](Self::power_into) under a cooperative
    /// [`SolveBudget`]: deadline and cancellation are polled at the same
    /// every-64-sweeps checkpoint as the solver's own time budget, and the
    /// budget's sweep cap (when tighter than `max_sweeps`) turns exhaustion
    /// into a [`MarkovError::BudgetExhausted`] naming the resource.
    pub(crate) fn power_into_budgeted(
        &self,
        ctmc: &Ctmc,
        warm: Option<&[f64]>,
        scratch: &mut SolveScratch,
        budget: &SolveBudget,
    ) -> Result<usize, MarkovError> {
        ctmc.check_irreducible()
            .map_err(|state| MarkovError::Reducible { state })?;
        let n = ctmc.n_states();
        if n == 1 {
            scratch.pi.clear();
            scratch.pi.push(1.0);
            return Ok(0);
        }

        // Uniformization constant: 1.05 * max exit rate keeps self-loop
        // probability >= ~5% in the busiest state (aperiodicity + damping).
        let lambda = ctmc.max_exit_rate() * 1.05;
        if lambda <= 0.0 {
            // No transitions at all in a >1-state chain: reducible, but the
            // check above would have caught it. Defensive.
            return Err(MarkovError::Reducible { state: 0 });
        }

        let start = self.time_budget.map(|_| std::time::Instant::now());
        let SolveScratch { pi, next, .. } = scratch;
        pi.clear();
        match warm {
            Some(hint) => pi.extend_from_slice(hint),
            None => pi.resize(n, 1.0 / n as f64),
        }
        next.clear();
        next.resize(n, 0.0);
        let mut last_delta = f64::INFINITY;
        let governed = !budget.is_unlimited();
        let sweep_cap = budget.max_sweeps();
        for sweep in 0..self.max_sweeps {
            if let (Some(allowance), Some(start)) = (self.time_budget, start) {
                if sweep % 64 == 0 && start.elapsed() > allowance {
                    return Err(MarkovError::TimedOut {
                        iterations: sweep,
                        budget_secs: allowance.as_secs_f64(),
                    });
                }
            }
            if governed {
                if sweep % 64 == 0 {
                    budget.checkpoint("power", sweep as u64)?;
                }
                if let Some(cap) = sweep_cap {
                    if sweep as u64 >= cap {
                        return Err(MarkovError::BudgetExhausted {
                            phase: "power",
                            resource: BudgetResource::Sweeps,
                            progress: sweep as u64,
                            limit: cap,
                        });
                    }
                }
            }
            // next = pi * P = pi + (pi * Q) / lambda
            next.copy_from_slice(pi);
            for t in ctmc.transitions() {
                let flow = pi[t.from] * t.rate / lambda;
                next[t.from] -= flow;
                next[t.to] += flow;
            }
            // Renormalize to fight drift.
            let sum: f64 = next.iter().sum();
            let mut delta = 0.0_f64;
            for (p, q) in pi.iter_mut().zip(next.iter()) {
                let v = q / sum;
                delta = delta.max((v - *p).abs());
                *p = v;
            }
            last_delta = delta;
            if delta < self.tolerance {
                return Ok(sweep + 1);
            }
            // Convergence accelerates: check every sweep but bail early if
            // numerically stuck.
            if !delta.is_finite() {
                return Err(MarkovError::NoConvergence {
                    iterations: sweep + 1,
                    residual: delta,
                });
            }
        }
        Err(MarkovError::NoConvergence {
            iterations: self.max_sweeps,
            residual: last_delta,
        })
    }
}

impl Default for PowerSolver {
    /// Tolerance `1e-13`, at most `5_000_000` sweeps.
    fn default() -> PowerSolver {
        PowerSolver::new(1e-13, 5_000_000)
    }
}

impl SteadyStateSolver for PowerSolver {
    fn steady_state(&self, ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError> {
        let mut scratch = SolveScratch::new();
        self.power_into(ctmc, None, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.pi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtmcBuilder, DenseSolver};
    use proptest::prelude::*;

    #[test]
    fn agrees_with_dense_on_small_chain() {
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 3.0)
            .rate(1, 2, 1.5)
            .rate(2, 3, 0.5)
            .rate(3, 0, 2.0)
            .rate(2, 0, 1.0)
            .rate(1, 0, 0.25);
        let ctmc = b.build().unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        let power = PowerSolver::default().steady_state(&ctmc).unwrap();
        for (d, p) in dense.iter().zip(power.iter()) {
            assert!((d - p).abs() < 1e-9, "dense={d} power={p}");
        }
    }

    #[test]
    fn respects_sweep_limit() {
        // Stiff chain + absurdly tight tolerance + tiny budget -> no
        // convergence.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1e-9).rate(1, 0, 1e3);
        let solver = PowerSolver::new(1e-16, 3);
        assert!(matches!(
            solver.steady_state(&b.build().unwrap()),
            Err(MarkovError::NoConvergence { iterations: 3, .. })
        ));
    }

    #[test]
    fn rejects_reducible() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        assert!(matches!(
            PowerSolver::default().steady_state(&b.build_unchecked()),
            Err(MarkovError::Reducible { .. })
        ));
    }

    #[test]
    fn single_state() {
        let ctmc = CtmcBuilder::new(1).build().unwrap();
        assert_eq!(
            PowerSolver::default().steady_state(&ctmc).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_panics() {
        let _ = PowerSolver::new(0.0, 10);
    }

    #[test]
    fn try_new_rejects_bad_parameters_without_panicking() {
        for (tol, sweeps) in [(0.0, 10), (-2.0, 10), (f64::INFINITY, 10), (1e-12, 0)] {
            assert!(matches!(
                PowerSolver::try_new(tol, sweeps),
                Err(MarkovError::InvalidSolverConfig { .. })
            ));
        }
        assert_eq!(
            PowerSolver::try_new(1e-13, 5_000_000).unwrap(),
            PowerSolver::default()
        );
    }

    #[test]
    fn zero_time_budget_times_out() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1e-9).rate(1, 0, 1e3);
        let solver = PowerSolver::new(1e-16, 1_000_000).with_time_budget(std::time::Duration::ZERO);
        assert!(matches!(
            solver.steady_state(&b.build().unwrap()),
            Err(MarkovError::TimedOut { .. })
        ));
    }

    #[test]
    fn budget_deadline_and_sweep_cap_stop_the_iteration() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1e-9).rate(1, 0, 1e3);
        let ctmc = b.build().unwrap();
        let solver = PowerSolver::new(1e-16, 1_000_000);
        let mut scratch = SolveScratch::new();
        let expired = SolveBudget::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert!(matches!(
            solver.power_into_budgeted(&ctmc, None, &mut scratch, &expired),
            Err(MarkovError::BudgetExhausted {
                phase: "power",
                resource: BudgetResource::WallClock,
                ..
            })
        ));
        let capped = SolveBudget::unlimited().with_max_sweeps(5);
        assert!(matches!(
            solver.power_into_budgeted(&ctmc, None, &mut scratch, &capped),
            Err(MarkovError::BudgetExhausted {
                phase: "power",
                resource: BudgetResource::Sweeps,
                limit: 5,
                ..
            })
        ));
    }

    #[test]
    fn warm_start_reaches_the_same_fixed_point_in_fewer_sweeps() {
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 3.0)
            .rate(1, 2, 1.5)
            .rate(2, 3, 0.5)
            .rate(3, 0, 2.0)
            .rate(2, 0, 1.0)
            .rate(1, 0, 0.25);
        let ctmc = b.build().unwrap();
        let solver = PowerSolver::default();
        let cold = solver.steady_state(&ctmc).unwrap();
        let warm = solver.steady_state_from(&ctmc, &cold).unwrap();
        for (c, w) in cold.iter().zip(warm.iter()) {
            assert!((c - w).abs() < 1e-10, "cold={c} warm={w}");
        }
        let mut scratch = crate::SolveScratch::new();
        let cold_sweeps = solver.power_into(&ctmc, None, &mut scratch).unwrap();
        let warm_sweeps = solver.power_into(&ctmc, Some(&cold), &mut scratch).unwrap();
        assert!(
            warm_sweeps < cold_sweeps,
            "warm {warm_sweeps} vs cold {cold_sweeps}"
        );
    }

    #[test]
    fn steady_state_from_rejects_unusable_hints() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).rate(1, 0, 2.0);
        let ctmc = b.build().unwrap();
        for bad in [vec![1.0], vec![f64::NAN, 1.0], vec![-0.5, 1.5]] {
            assert!(matches!(
                PowerSolver::default().steady_state_from(&ctmc, &bad),
                Err(MarkovError::InvalidSolverConfig { .. })
            ));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matches_dense_on_random_rings(
            n in 2_usize..10,
            rates in proptest::collection::vec(0.05_f64..20.0, 2 * 10),
        ) {
            let mut b = CtmcBuilder::new(n);
            for i in 0..n {
                b.rate(i, (i + 1) % n, rates[i]);
                b.rate((i + 1) % n, i, rates[n + i]);
            }
            let ctmc = b.build().unwrap();
            let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
            let power = PowerSolver::new(1e-14, 2_000_000).steady_state(&ctmc).unwrap();
            for (d, p) in dense.iter().zip(power.iter()) {
                prop_assert!((d - p).abs() < 1e-7);
            }
        }
    }
}
