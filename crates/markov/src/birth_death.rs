//! Closed-form steady state for birth–death chains.
//!
//! Many classical availability models — k-of-n clusters with a shared or
//! per-unit repair crew — are birth–death chains over the number of failed
//! units. Their stationary distribution has the well-known product form
//!
//! ```text
//! π_k ∝ Π_{i=0}^{k-1} birth_i / death_{i+1}
//! ```
//!
//! which this module evaluates directly. The general solvers in this crate
//! are cross-checked against it in tests, and the per-mode decomposition
//! availability engine uses it for its inner chains.

use crate::MarkovError;

/// Computes the stationary distribution of a birth–death chain with states
/// `0..=n` where `n = births.len()`.
///
/// `births[k]` is the rate from state `k` to `k+1` and `deaths[k]` the rate
/// from `k+1` to `k`. All birth and death rates must be positive (a zero
/// rate would make the chain reducible; truncate the chain instead).
///
/// # Errors
///
/// Returns [`MarkovError::InvalidRate`] if a rate is non-positive, NaN or
/// infinite, and [`MarkovError::EmptyChain`] if `births` is empty (a 1-state
/// chain needs no solving) — call with at least one birth rate.
/// Returns [`MarkovError::Singular`] if `births.len() != deaths.len()`.
///
/// # Examples
///
/// ```
/// use aved_markov::birth_death;
///
/// // M/M/1-like repair model: 2 machines, single repair crew.
/// // births: 2λ from state 0, λ from state 1; deaths: μ, μ.
/// let lambda = 0.01;
/// let mu = 1.0;
/// let pi = birth_death::steady_state(&[2.0 * lambda, lambda], &[mu, mu])?;
/// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(pi[0] > pi[1] && pi[1] > pi[2]);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
pub fn steady_state(births: &[f64], deaths: &[f64]) -> Result<Vec<f64>, MarkovError> {
    if births.is_empty() {
        return Err(MarkovError::EmptyChain);
    }
    if births.len() != deaths.len() {
        return Err(MarkovError::Singular);
    }
    for (k, &r) in births.iter().enumerate() {
        if r.is_nan() || r <= 0.0 || !r.is_finite() {
            return Err(MarkovError::InvalidRate {
                from: k,
                to: k + 1,
                rate: r,
            });
        }
    }
    for (k, &r) in deaths.iter().enumerate() {
        if r.is_nan() || r <= 0.0 || !r.is_finite() {
            return Err(MarkovError::InvalidRate {
                from: k + 1,
                to: k,
                rate: r,
            });
        }
    }

    let n = births.len();
    // Work in log space: products of rate ratios can overflow/underflow for
    // long chains with widely separated rates (MTBF in years, repairs in
    // seconds).
    let mut log_weights = Vec::with_capacity(n + 1);
    let mut acc = 0.0_f64;
    log_weights.push(0.0);
    for k in 0..n {
        acc += births[k].ln() - deaths[k].ln();
        log_weights.push(acc);
    }
    let max_log = log_weights.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut pi: Vec<f64> = log_weights.iter().map(|&w| (w - max_log).exp()).collect();
    let sum: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= sum;
    }
    Ok(pi)
}

/// Steady-state probability that a k-of-n system with per-unit repair is up.
///
/// Units fail independently at rate `lambda` while operational and are
/// repaired independently at rate `mu`; the system is up while at least
/// `k_required` of the `n` units are operational. Only operational units
/// fail (failed units are in repair). This is the "machine-repairman" model
/// with as many repair crews as machines.
///
/// # Errors
///
/// Propagates [`MarkovError`] from the underlying chain; additionally
/// returns [`MarkovError::Singular`] if `k_required > n` or `n == 0`.
///
/// # Examples
///
/// ```
/// use aved_markov::birth_death;
///
/// // 1-of-2 with perfect repair: unavailability ~ (λ/μ)² near λ<<μ.
/// let a = birth_death::k_of_n_availability(2, 1, 0.001, 1.0)?;
/// assert!(1.0 - a < 2e-6);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
pub fn k_of_n_availability(
    n: usize,
    k_required: usize,
    lambda: f64,
    mu: f64,
) -> Result<f64, MarkovError> {
    if n == 0 || k_required > n {
        return Err(MarkovError::Singular);
    }
    // State = number failed, 0..=n. Failure rate from state j is
    // (n - j) * lambda (operational units fail); repair rate is j * mu... as
    // seen from state j+1 the repair rate is (j+1) * mu.
    let births: Vec<f64> = (0..n).map(|j| (n - j) as f64 * lambda).collect();
    let deaths: Vec<f64> = (0..n).map(|j| (j + 1) as f64 * mu).collect();
    let pi = steady_state(&births, &deaths)?;
    // Up while failed count <= n - k_required.
    Ok(pi[..=(n - k_required)].iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtmcBuilder, DenseSolver, SteadyStateSolver};
    use proptest::prelude::*;

    #[test]
    fn two_state_closed_form() {
        let pi = steady_state(&[0.5], &[2.0]).unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(matches!(
            steady_state(&[1.0, 2.0], &[1.0]),
            Err(MarkovError::Singular)
        ));
    }

    #[test]
    fn rejects_zero_rate() {
        assert!(steady_state(&[0.0], &[1.0]).is_err());
        assert!(steady_state(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            steady_state(&[], &[]),
            Err(MarkovError::EmptyChain)
        ));
    }

    #[test]
    fn survives_extreme_rate_ratios() {
        // 20 states with ratio 1e-9 per step: naive products underflow at
        // 1e-180 scale but log-space stays exact.
        let births = vec![1e-6; 20];
        let deaths = vec![1e3; 20];
        let pi = steady_state(&births, &deaths).unwrap();
        // pi_0 = 1/(1 + 1e-9 + 1e-18 + ...): within ~1e-9 of 1.
        assert!((pi[0] - 1.0).abs() < 2e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
        // Deep states underflow to zero rather than NaN.
        assert!(pi.iter().all(|&p| p.is_finite()));
    }

    #[test]
    fn k_of_n_matches_binomial_availability() {
        // With per-unit repair the units are independent; the availability
        // is the binomial tail with per-unit availability mu/(lambda+mu).
        let (n, k) = (5, 3);
        let (lambda, mu) = (0.2, 1.0);
        let a_unit = mu / (lambda + mu);
        let got = k_of_n_availability(n, k, lambda, mu).unwrap();
        let mut expect = 0.0;
        for up in k..=n {
            expect +=
                binomial(n, up) * a_unit.powi(up as i32) * (1.0 - a_unit).powi((n - up) as i32);
        }
        assert!((got - expect).abs() < 1e-12, "got {got} expect {expect}");
    }

    fn binomial(n: usize, k: usize) -> f64 {
        let mut r = 1.0;
        for i in 0..k {
            r *= (n - i) as f64 / (i + 1) as f64;
        }
        r
    }

    #[test]
    fn k_of_n_rejects_bad_arguments() {
        assert!(k_of_n_availability(0, 0, 1.0, 1.0).is_err());
        assert!(k_of_n_availability(2, 3, 1.0, 1.0).is_err());
    }

    proptest! {
        /// The closed form must agree with the dense solver on the explicit
        /// chain.
        #[test]
        fn agrees_with_dense_solver(
            n in 1_usize..12,
            rates in proptest::collection::vec(0.01_f64..100.0, 2 * 12),
        ) {
            let births = &rates[..n];
            let deaths = &rates[12..12 + n];
            let closed = steady_state(births, deaths).unwrap();

            let mut b = CtmcBuilder::new(n + 1);
            for k in 0..n {
                b.rate(k, k + 1, births[k]);
                b.rate(k + 1, k, deaths[k]);
            }
            let dense = DenseSolver::new().steady_state(&b.build().unwrap()).unwrap();
            for (c, d) in closed.iter().zip(dense.iter()) {
                prop_assert!((c - d).abs() < 1e-9, "closed={} dense={}", c, d);
            }
        }

        #[test]
        fn distribution_is_normalized(
            n in 1_usize..30,
            rates in proptest::collection::vec(1e-6_f64..1e6, 2 * 30),
        ) {
            let pi = steady_state(&rates[..n], &rates[30..30 + n]).unwrap();
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(pi.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
