//! Transient analysis by uniformization (Jensen's method).
//!
//! The paper's evaluation only needs steady-state downtime, but its future
//! work calls for richer lifetime management; transient measures (interval
//! availability over a mission time, probability of surviving the first
//! month, mean time to first failure) are the natural extension. This module
//! provides them:
//!
//! * [`distribution_at`] — state distribution at time *t*,
//! * [`accumulated_reward`] — expected time-integral of a reward over
//!   `[0, t]` (e.g. expected downtime during a mission window),
//! * [`mean_time_to_absorption`] — MTTF-style measures on absorbing chains.

use crate::{Ctmc, MarkovError};

/// Maximum number of uniformization terms before giving up.
const MAX_TERMS: usize = 1_000_000;

/// Computes the state distribution at time `t`, starting from `initial`.
///
/// Uses uniformization: `π(t) = Σ_k Poisson(Λt; k) · π₀ Pᵏ` with
/// `P = I + Q/Λ`, truncating the Poisson sum once the accumulated
/// probability mass exceeds `1 − tol`.
///
/// # Errors
///
/// Returns [`MarkovError::NoConvergence`] if the Poisson sum needs more than
/// a million terms (Λt too large — consider steady-state analysis instead),
/// or [`MarkovError::StateOutOfRange`] for a bad initial distribution
/// length.
///
/// # Examples
///
/// ```
/// use aved_markov::{CtmcBuilder, transient};
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1.0).rate(1, 0, 1.0);
/// let ctmc = b.build()?;
/// let p = transient::distribution_at(&ctmc, &[1.0, 0.0], 1000.0, 1e-12)?;
/// // Long horizon: converged to the 50/50 steady state.
/// assert!((p[0] - 0.5).abs() < 1e-9);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
pub fn distribution_at(
    ctmc: &Ctmc,
    initial: &[f64],
    t: f64,
    tol: f64,
) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if initial.len() != n {
        return Err(MarkovError::StateOutOfRange {
            state: initial.len(),
            n_states: n,
        });
    }
    assert!(t >= 0.0, "time must be non-negative");
    assert!(tol > 0.0, "tolerance must be positive");

    if t == 0.0 {
        return Ok(initial.to_vec());
    }
    let lambda = ctmc.max_exit_rate().max(1e-300);
    let lt = lambda * t;

    // Poisson(lt) weights computed incrementally in a numerically safe way:
    // start from log weight of term 0 and multiply.
    let mut term: Vec<f64> = initial.to_vec(); // pi0 * P^k
    let mut next = vec![0.0_f64; n];
    let mut result = vec![0.0_f64; n];

    // log Poisson pmf at k=0 is -lt; accumulate in linear space with
    // rescaling via logs when lt is large.
    let mut log_weight = -lt; // ln of Poisson(lt; 0)
    let mut covered = 0.0_f64;
    for k in 0..MAX_TERMS {
        let w = log_weight.exp();
        if w > 0.0 {
            for (r, &v) in result.iter_mut().zip(term.iter()) {
                *r += w * v;
            }
            covered += w;
        }
        // Two stopping rules. The direct one compares accumulated mass to
        // 1 - tol; but for large Λt the sum of ~Λt weights carries O(Λt·ε)
        // rounding error, so the coverage test alone can stall. Past the
        // Poisson mode the weights decay geometrically with ratio
        // r = Λt/(k+1) < 1, giving the provable tail bound w·r/(1−r).
        let kf = (k + 1) as f64;
        let tail_bounded = kf > lt && {
            let r = lt / kf;
            w * r / (1.0 - r) < tol
        };
        if covered >= 1.0 - tol || tail_bounded {
            // Renormalize the truncation loss (and accumulated rounding).
            let total: f64 = result.iter().sum();
            if total > 0.0 {
                for r in &mut result {
                    *r /= total;
                }
            }
            return Ok(result);
        }
        // term <- term * P = term + (term * Q) / lambda
        next.copy_from_slice(&term);
        for tr in ctmc.transitions() {
            let flow = term[tr.from] * tr.rate / lambda;
            next[tr.from] -= flow;
            next[tr.to] += flow;
        }
        std::mem::swap(&mut term, &mut next);
        log_weight += lt.ln() - kf.ln();
    }
    Err(MarkovError::NoConvergence {
        iterations: MAX_TERMS,
        residual: 1.0 - covered,
    })
}

/// Expected accumulated reward `E[∫₀ᵗ reward(X_s) ds]`.
///
/// With reward 1 on down states this is the expected downtime during the
/// interval `[0, t]` — the transient analogue of annual downtime.
/// Evaluated by numerically integrating [`distribution_at`] with Simpson's
/// rule over `steps` panels (use a few hundred for smooth models).
///
/// # Errors
///
/// Propagates errors from [`distribution_at`].
///
/// # Panics
///
/// Panics if `steps` is zero or `reward.len() != n_states`.
pub fn accumulated_reward(
    ctmc: &Ctmc,
    initial: &[f64],
    reward: &[f64],
    t: f64,
    steps: usize,
    tol: f64,
) -> Result<f64, MarkovError> {
    assert!(steps > 0, "steps must be positive");
    assert_eq!(reward.len(), ctmc.n_states(), "reward length mismatch");
    let h = t / steps as f64;
    let eval = |time: f64| -> Result<f64, MarkovError> {
        let p = distribution_at(ctmc, initial, time, tol)?;
        Ok(p.iter().zip(reward.iter()).map(|(a, b)| a * b).sum())
    };
    // Composite Simpson over 2*steps sub-intervals.
    let mut total = eval(0.0)? + eval(t)?;
    for i in 1..(2 * steps) {
        let time = t * i as f64 / (2.0 * steps as f64);
        let coeff = if i % 2 == 1 { 4.0 } else { 2.0 };
        total += coeff * eval(time)?;
    }
    Ok(total * (h / 2.0) / 3.0)
}

/// Mean time to absorption starting from `start`, for a chain whose
/// `absorbing` states have no outgoing transitions.
///
/// Solves the standard first-passage linear system
/// `τ_s = (1 + Σ_j q_{sj} τ_j) / exit_s` for transient states via
/// Gauss–Seidel iteration (the availability models' MTTF chains are small
/// and diagonally dominant, so this converges fast).
///
/// # Errors
///
/// Returns [`MarkovError::Reducible`] if some transient state cannot reach
/// an absorbing state (infinite expected time), or
/// [`MarkovError::NoConvergence`] on iteration failure.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn mean_time_to_absorption(
    ctmc: &Ctmc,
    start: usize,
    absorbing: &[bool],
) -> Result<f64, MarkovError> {
    let n = ctmc.n_states();
    assert!(start < n, "start state out of range");
    assert_eq!(absorbing.len(), n, "absorbing mask length mismatch");
    if absorbing[start] {
        return Ok(0.0);
    }
    // Check every transient state can reach absorption (otherwise infinite).
    // Backward reachability from absorbing set.
    let mut reach = absorbing.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for s in 0..n {
            if reach[s] {
                continue;
            }
            if ctmc.outgoing(s).iter().any(|&(to, r)| r > 0.0 && reach[to]) {
                reach[s] = true;
                changed = true;
            }
        }
    }
    if !reach[start] {
        return Err(MarkovError::Reducible { state: start });
    }

    let mut tau = vec![0.0_f64; n];
    let max_iter = 2_000_000;
    for _ in 0..max_iter {
        let mut delta = 0.0_f64;
        for s in 0..n {
            if absorbing[s] || !reach[s] {
                continue;
            }
            let exit = ctmc.exit_rate(s);
            if exit <= 0.0 {
                return Err(MarkovError::Reducible { state: s });
            }
            let mut acc = 1.0;
            for &(to, r) in ctmc.outgoing(s) {
                if !absorbing[to] {
                    acc += r * tau[to];
                }
            }
            let v = acc / exit;
            delta = delta.max((v - tau[s]).abs() / v.max(1e-300));
            tau[s] = v;
        }
        if delta < 1e-13 {
            return Ok(tau[start]);
        }
    }
    Err(MarkovError::NoConvergence {
        iterations: max_iter,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    #[test]
    fn distribution_at_zero_is_initial() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).rate(1, 0, 1.0);
        let c = b.build().unwrap();
        let p = distribution_at(&c, &[0.3, 0.7], 0.0, 1e-12).unwrap();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn two_state_matches_closed_form() {
        // p0(t) for 0->1 rate a, 1->0 rate b starting in 0:
        // p0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}
        let (a, b_) = (0.7, 0.3);
        let mut bld = CtmcBuilder::new(2);
        bld.rate(0, 1, a).rate(1, 0, b_);
        let c = bld.build().unwrap();
        for t in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let p = distribution_at(&c, &[1.0, 0.0], t, 1e-13).unwrap();
            let expect = b_ / (a + b_) + a / (a + b_) * (-(a + b_) * t).exp();
            assert!((p[0] - expect).abs() < 1e-9, "t={t}: {} vs {expect}", p[0]);
        }
    }

    #[test]
    fn long_horizon_converges_to_steady_state() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0)
            .rate(1, 2, 0.5)
            .rate(2, 0, 0.25)
            .rate(1, 0, 0.5);
        let c = b.build().unwrap();
        let pt = distribution_at(&c, &[1.0, 0.0, 0.0], 500.0, 1e-13).unwrap();
        let pi = crate::DenseSolver::new().steady_state(&c).unwrap();
        use crate::SteadyStateSolver;
        for (a, b) in pt.iter().zip(pi.iter()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn accumulated_reward_integrates_downtime() {
        // Machine starting up: expected downtime over [0,t] approaches
        // unavailability * t for large t.
        let (lambda, mu) = (0.1, 1.0);
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, lambda).rate(1, 0, mu);
        let c = b.build().unwrap();
        let t = 200.0;
        let downtime = accumulated_reward(&c, &[1.0, 0.0], &[0.0, 1.0], t, 200, 1e-10).unwrap();
        let unavail = lambda / (lambda + mu);
        // Starting in the up state, accumulated downtime lags the steady
        // value by roughly the relaxation time; accept 1% on this horizon.
        assert!(
            (downtime - unavail * t).abs() < 0.01 * unavail * t + 1.0,
            "downtime={downtime}, expect ~{}",
            unavail * t
        );
    }

    #[test]
    fn mtta_of_pure_death_chain() {
        // 2 -> 1 -> 0(absorbing) with rate mu each: MTTA = 1/mu + 1/mu.
        let mut b = CtmcBuilder::new(3);
        b.rate(2, 1, 0.5).rate(1, 0, 0.5);
        let c = b.build_lenient().unwrap();
        let mtta = mean_time_to_absorption(&c, 2, &[true, false, false]).unwrap();
        assert!((mtta - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mtta_machine_with_repair() {
        // States: 0 = both up, 1 = one down, 2 = both down (absorbing).
        // MTTF of a duplexed pair with repair: known closed form
        // (3λ + μ) / (2λ²) for failure rate λ each and repair μ.
        let (lambda, mu) = (0.01, 1.0);
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 2.0 * lambda).rate(1, 0, mu).rate(1, 2, lambda);
        let c = b.build_lenient().unwrap();
        let mtta = mean_time_to_absorption(&c, 0, &[false, false, true]).unwrap();
        let expect = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
        assert!(
            (mtta - expect).abs() / expect < 1e-9,
            "mtta={mtta} expect={expect}"
        );
    }

    #[test]
    fn mtta_from_absorbing_state_is_zero() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        let c = b.build_lenient().unwrap();
        assert_eq!(mean_time_to_absorption(&c, 1, &[false, true]).unwrap(), 0.0);
    }

    #[test]
    fn mtta_unreachable_absorption_is_error() {
        // State 0 <-> 1, absorbing state 2 unreachable from them.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).rate(1, 0, 1.0);
        let c = b.build_lenient().unwrap();
        assert!(mean_time_to_absorption(&c, 0, &[false, false, true]).is_err());
    }
}
