//! Iterative steady-state solution by Gauss–Seidel sweeps.

use crate::{Ctmc, MarkovError, SteadyStateSolver};

/// Gauss–Seidel steady-state solver.
///
/// Rearranges the balance equations `πQ = 0` into the fixed point
/// `π_j = (Σ_{i≠j} π_i q_ij) / |q_jj|` and sweeps states in order, using
/// freshly-updated values within a sweep. For the stiff chains produced by
/// availability models (rates spanning many orders of magnitude),
/// Gauss–Seidel typically converges in far fewer sweeps than power
/// iteration, whose step size is limited by the fastest transition.
///
/// The implementation stores the incoming-transition structure once
/// (transposed CSR), so each sweep is O(nnz).
///
/// # Examples
///
/// ```
/// use aved_markov::{CtmcBuilder, GaussSeidelSolver, SteadyStateSolver};
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1e-6).rate(1, 0, 10.0); // very stiff
/// let pi = GaussSeidelSolver::default().steady_state(&b.build()?)?;
/// assert!((pi[1] - 1e-7 / (1.0 + 1e-7)).abs() < 1e-18);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussSeidelSolver {
    tolerance: f64,
    max_sweeps: usize,
    relaxation: f64,
    time_budget: Option<std::time::Duration>,
}

impl GaussSeidelSolver {
    /// Creates a solver with the given relative per-sweep tolerance and
    /// sweep limit, validating both.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] if `tolerance` is not a
    /// positive finite number or `max_sweeps` is zero.
    pub fn try_new(tolerance: f64, max_sweeps: usize) -> Result<GaussSeidelSolver, MarkovError> {
        if !(tolerance > 0.0 && tolerance.is_finite()) {
            return Err(MarkovError::InvalidSolverConfig {
                detail: format!("tolerance must be positive and finite, got {tolerance}"),
            });
        }
        if max_sweeps == 0 {
            return Err(MarkovError::InvalidSolverConfig {
                detail: "max_sweeps must be positive".into(),
            });
        }
        Ok(GaussSeidelSolver {
            tolerance,
            max_sweeps,
            relaxation: 0.9,
            time_budget: None,
        })
    }

    /// Creates a solver with the given relative per-sweep tolerance and
    /// sweep limit.
    ///
    /// Convenience for hard-coded parameters; use [`Self::try_new`] to
    /// validate user-supplied values without panicking.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite or `max_sweeps` is
    /// zero.
    #[must_use]
    pub fn new(tolerance: f64, max_sweeps: usize) -> GaussSeidelSolver {
        GaussSeidelSolver::try_new(tolerance, max_sweeps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the relaxation factor `ω ∈ (0, 1]` applied to each update
    /// (`π_j ← (1−ω)·π_j + ω·v`), validating it.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] if `relaxation` is
    /// outside `(0, 1]`.
    pub fn try_with_relaxation(
        mut self,
        relaxation: f64,
    ) -> Result<GaussSeidelSolver, MarkovError> {
        if !(relaxation > 0.0 && relaxation <= 1.0) {
            return Err(MarkovError::InvalidSolverConfig {
                detail: format!("relaxation must be in (0, 1], got {relaxation}"),
            });
        }
        self.relaxation = relaxation;
        Ok(self)
    }

    /// Sets the relaxation factor `ω ∈ (0, 1]` applied to each update
    /// (`π_j ← (1−ω)·π_j + ω·v`).
    ///
    /// Pure Gauss–Seidel (`ω = 1`) can enter period-2 limit cycles on some
    /// chain structures (the update operator can carry an eigenvalue at
    /// −1); any `ω < 1` maps that mode inside the unit circle. The default
    /// 0.9 damps oscillations at a ~10 % cost in per-mode convergence
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics if `relaxation` is outside `(0, 1]`.
    #[must_use]
    pub fn with_relaxation(self, relaxation: f64) -> GaussSeidelSolver {
        self.try_with_relaxation(relaxation)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Caps the wall-clock time one solve may take; the budget is checked
    /// every few sweeps, so overshoot is bounded by a handful of sweeps.
    ///
    /// Used by fallback policies to keep a stuck attempt from starving the
    /// rest of the chain.
    #[must_use]
    pub fn with_time_budget(mut self, budget: std::time::Duration) -> GaussSeidelSolver {
        self.time_budget = Some(budget);
        self
    }
}

impl Default for GaussSeidelSolver {
    /// Relative tolerance `1e-13`, at most `100_000` sweeps.
    fn default() -> GaussSeidelSolver {
        GaussSeidelSolver::new(1e-13, 100_000)
    }
}

impl SteadyStateSolver for GaussSeidelSolver {
    fn steady_state(&self, ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError> {
        ctmc.check_irreducible()
            .map_err(|state| MarkovError::Reducible { state })?;
        let n = ctmc.n_states();
        if n == 1 {
            return Ok(vec![1.0]);
        }

        // Incoming transitions per state: in_edges[j] = [(i, q_ij)].
        let mut in_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for t in ctmc.transitions() {
            in_edges[t.to].push((t.from, t.rate));
        }

        let start = self.time_budget.map(|_| std::time::Instant::now());
        let mut pi = vec![1.0 / n as f64; n];
        for sweep in 0..self.max_sweeps {
            if let (Some(budget), Some(start)) = (self.time_budget, start) {
                // Check every 64 sweeps: cheap, bounded overshoot.
                if sweep % 64 == 0 && start.elapsed() > budget {
                    return Err(MarkovError::TimedOut {
                        iterations: sweep,
                        budget_secs: budget.as_secs_f64(),
                    });
                }
            }
            let mut delta = 0.0_f64;
            for j in 0..n {
                let exit = ctmc.exit_rate(j);
                if exit <= 0.0 {
                    // Irreducibility guarantees every state (in a >1-state
                    // chain) has an exit; defensive.
                    return Err(MarkovError::Reducible { state: j });
                }
                let inflow: f64 = in_edges[j].iter().map(|&(i, q)| pi[i] * q).sum();
                let old = pi[j];
                let v = (1.0 - self.relaxation) * old + self.relaxation * (inflow / exit);
                pi[j] = v;
                // States with negligible stationary mass are exempt from
                // the relative criterion: a slowly decaying tiny state
                // would otherwise hold a constant relative delta for
                // millions of sweeps while every state that matters has
                // long converged.
                if v.abs().max(old.abs()) > 1e-250 {
                    let scale = v.abs().max(old.abs());
                    delta = delta.max((v - old).abs() / scale);
                }
            }
            // Normalize each sweep (the fixed point is scale-free).
            let sum: f64 = pi.iter().sum();
            if sum.is_nan() || sum <= 0.0 || !sum.is_finite() {
                return Err(MarkovError::Singular);
            }
            for p in &mut pi {
                *p /= sum;
            }
            if delta < self.tolerance {
                return Ok(pi);
            }
            if sweep == self.max_sweeps - 1 {
                return Err(MarkovError::NoConvergence {
                    iterations: self.max_sweeps,
                    residual: delta,
                });
            }
        }
        unreachable!("loop always returns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtmcBuilder, DenseSolver};
    use proptest::prelude::*;

    #[test]
    fn agrees_with_dense_on_small_chain() {
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 3.0)
            .rate(1, 2, 1.5)
            .rate(2, 3, 0.5)
            .rate(3, 0, 2.0)
            .rate(2, 0, 1.0)
            .rate(1, 0, 0.25);
        let ctmc = b.build().unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        let gs = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
        for (d, g) in dense.iter().zip(gs.iter()) {
            assert!((d - g).abs() < 1e-10, "dense={d} gs={g}");
        }
    }

    #[test]
    fn handles_stiff_chains_quickly() {
        // Rates spanning 9 orders of magnitude; power iteration would need
        // ~1e9 sweeps, Gauss-Seidel a handful.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1e-6)
            .rate(1, 2, 1e-3)
            .rate(1, 0, 100.0)
            .rate(2, 0, 1e3);
        let ctmc = b.build().unwrap();
        let solver = GaussSeidelSolver::new(1e-14, 1000);
        let gs = solver.steady_state(&ctmc).unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        for (d, g) in dense.iter().zip(gs.iter()) {
            let scale = d.abs().max(1e-300);
            assert!((d - g).abs() / scale < 1e-8, "dense={d} gs={g}");
        }
    }

    #[test]
    fn single_state_chain() {
        let ctmc = CtmcBuilder::new(1).build().unwrap();
        assert_eq!(
            GaussSeidelSolver::default().steady_state(&ctmc).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    fn rejects_reducible() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        assert!(matches!(
            GaussSeidelSolver::default().steady_state(&b.build_unchecked()),
            Err(MarkovError::Reducible { .. })
        ));
    }

    #[test]
    fn respects_sweep_limit() {
        // A 6-state asymmetric ring takes more than two sweeps to settle.
        let mut b = CtmcBuilder::new(6);
        for i in 0..6 {
            b.rate(i, (i + 1) % 6, 1.0 + i as f64);
            b.rate((i + 1) % 6, i, 2.5 / (1.0 + i as f64));
        }
        let solver = GaussSeidelSolver::new(1e-300, 2);
        assert!(matches!(
            solver.steady_state(&b.build().unwrap()),
            Err(MarkovError::NoConvergence { iterations: 2, .. })
        ));
    }

    #[test]
    fn damping_breaks_period_two_limit_cycles() {
        // Regression: this tandem-queue chain sends undamped Gauss-Seidel
        // into a period-2 oscillation (delta pinned at 1/17).
        let c = 3usize;
        let (arrive, s1, s2) = (0.5, 1.0, 0.9);
        let idx = |i: usize, j: usize| i * (c + 1) + j;
        let mut b = CtmcBuilder::new((c + 1) * (c + 1));
        for i in 0..=c {
            for j in 0..=c {
                if i < c {
                    b.rate(idx(i, j), idx(i + 1, j), arrive);
                }
                if i > 0 && j < c {
                    b.rate(idx(i, j), idx(i - 1, j + 1), s1);
                }
                if j > 0 {
                    b.rate(idx(i, j), idx(i, j - 1), s2);
                }
            }
        }
        let ctmc = b.build().unwrap();
        let gs = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        for (d, g) in dense.iter().zip(gs.iter()) {
            assert!((d - g).abs() < 1e-9, "dense={d} gs={g}");
        }
    }

    #[test]
    #[should_panic(expected = "relaxation")]
    fn bad_relaxation_panics() {
        let _ = GaussSeidelSolver::default().with_relaxation(1.5);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_panics() {
        let _ = GaussSeidelSolver::new(0.0, 1);
    }

    #[test]
    fn try_new_rejects_bad_parameters_without_panicking() {
        for (tol, sweeps) in [(0.0, 10), (-1.0, 10), (f64::NAN, 10), (1e-12, 0)] {
            assert!(matches!(
                GaussSeidelSolver::try_new(tol, sweeps),
                Err(MarkovError::InvalidSolverConfig { .. })
            ));
        }
        let solver = GaussSeidelSolver::try_new(1e-12, 10).unwrap();
        assert!(matches!(
            solver.try_with_relaxation(1.5),
            Err(MarkovError::InvalidSolverConfig { .. })
        ));
        assert!(solver.try_with_relaxation(1.0).is_ok());
    }

    #[test]
    fn zero_time_budget_times_out() {
        let mut b = CtmcBuilder::new(6);
        for i in 0..6 {
            b.rate(i, (i + 1) % 6, 1.0 + i as f64);
            b.rate((i + 1) % 6, i, 2.5 / (1.0 + i as f64));
        }
        let solver =
            GaussSeidelSolver::new(1e-300, 100_000).with_time_budget(std::time::Duration::ZERO);
        assert!(matches!(
            solver.steady_state(&b.build().unwrap()),
            Err(MarkovError::TimedOut { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matches_dense_on_random_rings(
            n in 2_usize..10,
            rates in proptest::collection::vec(0.05_f64..20.0, 2 * 10),
        ) {
            let mut b = CtmcBuilder::new(n);
            for i in 0..n {
                b.rate(i, (i + 1) % n, rates[i]);
                b.rate((i + 1) % n, i, rates[n + i]);
            }
            let ctmc = b.build().unwrap();
            let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
            let gs = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
            for (d, g) in dense.iter().zip(gs.iter()) {
                prop_assert!((d - g).abs() < 1e-9);
            }
        }
    }
}
