//! Iterative steady-state solution by Gauss–Seidel sweeps.

use crate::scratch::{sanitize_hint, SolveScratch};
use crate::{BudgetResource, Ctmc, MarkovError, SolveBudget, SteadyStateSolver};

/// Gauss–Seidel steady-state solver.
///
/// Rearranges the balance equations `πQ = 0` into the fixed point
/// `π_j = (Σ_{i≠j} π_i q_ij) / |q_jj|` and sweeps states in order, using
/// freshly-updated values within a sweep. For the stiff chains produced by
/// availability models (rates spanning many orders of magnitude),
/// Gauss–Seidel typically converges in far fewer sweeps than power
/// iteration, whose step size is limited by the fastest transition.
///
/// The implementation stores the incoming-transition structure once
/// (transposed CSR), so each sweep is O(nnz).
///
/// # Examples
///
/// ```
/// use aved_markov::{CtmcBuilder, GaussSeidelSolver, SteadyStateSolver};
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1e-6).rate(1, 0, 10.0); // very stiff
/// let pi = GaussSeidelSolver::default().steady_state(&b.build()?)?;
/// assert!((pi[1] - 1e-7 / (1.0 + 1e-7)).abs() < 1e-18);
/// # Ok::<(), aved_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussSeidelSolver {
    tolerance: f64,
    max_sweeps: usize,
    relaxation: f64,
    time_budget: Option<std::time::Duration>,
    residual_exit: Option<f64>,
    assume_irreducible: bool,
}

impl GaussSeidelSolver {
    /// Creates a solver with the given relative per-sweep tolerance and
    /// sweep limit, validating both.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] if `tolerance` is not a
    /// positive finite number or `max_sweeps` is zero.
    pub fn try_new(tolerance: f64, max_sweeps: usize) -> Result<GaussSeidelSolver, MarkovError> {
        if !(tolerance > 0.0 && tolerance.is_finite()) {
            return Err(MarkovError::InvalidSolverConfig {
                detail: format!("tolerance must be positive and finite, got {tolerance}"),
            });
        }
        if max_sweeps == 0 {
            return Err(MarkovError::InvalidSolverConfig {
                detail: "max_sweeps must be positive".into(),
            });
        }
        Ok(GaussSeidelSolver {
            tolerance,
            max_sweeps,
            relaxation: 0.9,
            time_budget: None,
            residual_exit: None,
            assume_irreducible: false,
        })
    }

    /// Creates a solver with the given relative per-sweep tolerance and
    /// sweep limit.
    ///
    /// Convenience for hard-coded parameters; use [`Self::try_new`] to
    /// validate user-supplied values without panicking.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite or `max_sweeps` is
    /// zero.
    #[must_use]
    pub fn new(tolerance: f64, max_sweeps: usize) -> GaussSeidelSolver {
        GaussSeidelSolver::try_new(tolerance, max_sweeps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the relaxation factor `ω ∈ (0, 1]` applied to each update
    /// (`π_j ← (1−ω)·π_j + ω·v`), validating it.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] if `relaxation` is
    /// outside `(0, 1]`.
    pub fn try_with_relaxation(
        mut self,
        relaxation: f64,
    ) -> Result<GaussSeidelSolver, MarkovError> {
        if !(relaxation > 0.0 && relaxation <= 1.0) {
            return Err(MarkovError::InvalidSolverConfig {
                detail: format!("relaxation must be in (0, 1], got {relaxation}"),
            });
        }
        self.relaxation = relaxation;
        Ok(self)
    }

    /// Sets the relaxation factor `ω ∈ (0, 1]` applied to each update
    /// (`π_j ← (1−ω)·π_j + ω·v`).
    ///
    /// Pure Gauss–Seidel (`ω = 1`) can enter period-2 limit cycles on some
    /// chain structures (the update operator can carry an eigenvalue at
    /// −1); any `ω < 1` maps that mode inside the unit circle. The default
    /// 0.9 damps oscillations at a ~10 % cost in per-mode convergence
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics if `relaxation` is outside `(0, 1]`.
    #[must_use]
    pub fn with_relaxation(self, relaxation: f64) -> GaussSeidelSolver {
        self.try_with_relaxation(relaxation)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Caps the wall-clock time one solve may take; the budget is checked
    /// every few sweeps, so overshoot is bounded by a handful of sweeps.
    ///
    /// Used by fallback policies to keep a stuck attempt from starving the
    /// rest of the chain.
    #[must_use]
    pub fn with_time_budget(mut self, budget: std::time::Duration) -> GaussSeidelSolver {
        self.time_budget = Some(budget);
        self
    }

    /// Lets the sweep loop stop as soon as the measured balance residual
    /// `‖πQ‖∞` drops to `threshold`, even though the per-sweep delta has
    /// not reached the solver's own tolerance yet.
    ///
    /// The per-sweep relative-change criterion is a *proxy* for solution
    /// quality; callers that judge solutions by their balance residual (the
    /// [`FallbackSolver`](crate::FallbackSolver) acceptance gate) would
    /// otherwise pay for sweeps long past the point where the solution is
    /// already acceptable. The residual is checked every few sweeps (it
    /// costs about as much as a sweep), so overshoot is bounded; callers
    /// that need the exit to *guarantee* acceptance should leave a margin
    /// below their acceptance tolerance to absorb summation-order
    /// differences between this check and their own.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not a positive finite number.
    #[must_use]
    pub fn with_residual_exit(mut self, threshold: f64) -> GaussSeidelSolver {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "residual-exit threshold must be positive and finite, got {threshold}"
        );
        self.residual_exit = Some(threshold);
        self
    }

    /// Skips the up-front strong-connectivity check.
    ///
    /// Irreducibility is purely structural (rates are always positive), so
    /// a caller re-solving a chain whose structure already passed a solve —
    /// e.g. a rate-only in-place rebuild of a cached chain — pays two full
    /// graph traversals per solve for a property that cannot have changed.
    /// The in-sweep guard against zero exit rates stays active, and callers
    /// must only set this when the same structure was previously solved
    /// successfully.
    #[must_use]
    pub fn assuming_irreducible(mut self) -> GaussSeidelSolver {
        self.assume_irreducible = true;
        self
    }

    /// Like [`SteadyStateSolver::steady_state`] but starts the sweeps from
    /// `pi0` instead of the uniform distribution — a warm start.
    ///
    /// Acceptance is unaffected: the convergence criterion is relative
    /// per-sweep change, and the downstream
    /// [`FallbackSolver`](crate::FallbackSolver) re-verifies any solution
    /// against the balance residual `‖πQ‖∞`, so a good hint saves sweeps
    /// while a bad one merely costs them. `pi0` is renormalized to unit
    /// mass before use.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidSolverConfig`] when the hint is
    /// unusable (wrong length, non-finite or negative entries, zero mass),
    /// plus every error `steady_state` can return.
    pub fn steady_state_from(&self, ctmc: &Ctmc, pi0: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let hint = sanitize_hint(ctmc.n_states(), pi0).ok_or_else(|| {
            MarkovError::InvalidSolverConfig {
                detail: format!(
                    "warm-start hint unusable: need {} finite non-negative entries with positive mass",
                    ctmc.n_states()
                ),
            }
        })?;
        let mut scratch = SolveScratch::new();
        self.sweep_into(ctmc, Some(&hint), &mut scratch)?;
        Ok(std::mem::take(&mut scratch.pi))
    }

    /// The sweep loop, writing the solution into `scratch.pi` and reusing
    /// the scratch's transposed-adjacency buffers. Returns the number of
    /// sweeps used. `warm`, when given, must already be sanitized
    /// (normalized, non-negative, correct length).
    pub(crate) fn sweep_into(
        &self,
        ctmc: &Ctmc,
        warm: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<usize, MarkovError> {
        self.sweep_into_budgeted(ctmc, warm, scratch, &SolveBudget::unlimited())
    }

    /// [`sweep_into`](Self::sweep_into) under a cooperative
    /// [`SolveBudget`]: the deadline and cancellation token are polled at
    /// the same every-64-sweeps checkpoint as the solver's own time budget,
    /// and the budget's sweep cap (when tighter than `max_sweeps`) turns
    /// exhaustion into a [`MarkovError::BudgetExhausted`] naming the
    /// resource.
    pub(crate) fn sweep_into_budgeted(
        &self,
        ctmc: &Ctmc,
        warm: Option<&[f64]>,
        scratch: &mut SolveScratch,
        budget: &SolveBudget,
    ) -> Result<usize, MarkovError> {
        if !self.assume_irreducible {
            ctmc.check_irreducible()
                .map_err(|state| MarkovError::Reducible { state })?;
        }
        let n = ctmc.n_states();
        if n == 1 {
            scratch.pi.clear();
            scratch.pi.push(1.0);
            return Ok(0);
        }

        // Incoming transitions per state, in flat transposed-CSR form:
        // in_edges[in_starts[j]..in_starts[j+1]] = [(i, q_ij)]. Entries per
        // state arrive in the same (source-ascending) order the old
        // Vec<Vec<_>> build produced, so sweep arithmetic is bit-identical.
        let SolveScratch {
            pi,
            in_starts,
            in_edges,
            in_cursor,
            ..
        } = scratch;
        in_starts.clear();
        in_starts.resize(n + 1, 0);
        for t in ctmc.transitions() {
            in_starts[t.to + 1] += 1;
        }
        for j in 0..n {
            in_starts[j + 1] += in_starts[j];
        }
        in_cursor.clear();
        in_cursor.extend_from_slice(&in_starts[..n]);
        in_edges.clear();
        in_edges.resize(in_starts[n], (0, 0.0));
        for t in ctmc.transitions() {
            in_edges[in_cursor[t.to]] = (t.from, t.rate);
            in_cursor[t.to] += 1;
        }

        let start = self.time_budget.map(|_| std::time::Instant::now());
        pi.clear();
        match warm {
            Some(hint) => pi.extend_from_slice(hint),
            None => pi.resize(n, 1.0 / n as f64),
        }
        let governed = !budget.is_unlimited();
        let sweep_cap = budget.max_sweeps();
        for sweep in 0..self.max_sweeps {
            if let (Some(allowance), Some(start)) = (self.time_budget, start) {
                // Check every 64 sweeps: cheap, bounded overshoot.
                if sweep % 64 == 0 && start.elapsed() > allowance {
                    return Err(MarkovError::TimedOut {
                        iterations: sweep,
                        budget_secs: allowance.as_secs_f64(),
                    });
                }
            }
            if governed {
                if sweep % 64 == 0 {
                    budget.checkpoint("gauss-seidel", sweep as u64)?;
                }
                if let Some(cap) = sweep_cap {
                    if sweep as u64 >= cap {
                        return Err(MarkovError::BudgetExhausted {
                            phase: "gauss-seidel",
                            resource: BudgetResource::Sweeps,
                            progress: sweep as u64,
                            limit: cap,
                        });
                    }
                }
            }
            let mut delta = 0.0_f64;
            for j in 0..n {
                let exit = ctmc.exit_rate(j);
                if exit <= 0.0 {
                    // Irreducibility guarantees every state (in a >1-state
                    // chain) has an exit; defensive.
                    return Err(MarkovError::Reducible { state: j });
                }
                let inflow: f64 = in_edges[in_starts[j]..in_starts[j + 1]]
                    .iter()
                    .map(|&(i, q)| pi[i] * q)
                    .sum();
                let old = pi[j];
                let v = (1.0 - self.relaxation) * old + self.relaxation * (inflow / exit);
                pi[j] = v;
                // States with negligible stationary mass are exempt from
                // the relative criterion: a slowly decaying tiny state
                // would otherwise hold a constant relative delta for
                // millions of sweeps while every state that matters has
                // long converged.
                if v.abs().max(old.abs()) > 1e-250 {
                    let scale = v.abs().max(old.abs());
                    delta = delta.max((v - old).abs() / scale);
                }
            }
            // Normalize each sweep (the fixed point is scale-free).
            let sum: f64 = pi.iter().sum();
            if sum.is_nan() || sum <= 0.0 || !sum.is_finite() {
                return Err(MarkovError::Singular);
            }
            for p in pi.iter_mut() {
                *p /= sum;
            }
            if delta < self.tolerance {
                return Ok(sweep + 1);
            }
            // Residual early exit: every 4th sweep, measure the actual
            // balance residual and stop once it clears the caller's
            // threshold — the per-sweep delta criterion is only a proxy and
            // typically keeps sweeping long after the solution is already
            // acceptable. The check reuses the transposed adjacency, so it
            // costs about as much as one sweep.
            if let Some(gate) = self.residual_exit {
                if (sweep + 1) % 4 == 0 {
                    let mut worst = 0.0_f64;
                    for j in 0..n {
                        let inflow: f64 = in_edges[in_starts[j]..in_starts[j + 1]]
                            .iter()
                            .map(|&(i, q)| pi[i] * q)
                            .sum();
                        worst = worst.max((inflow - pi[j] * ctmc.exit_rate(j)).abs());
                    }
                    if worst <= gate {
                        return Ok(sweep + 1);
                    }
                }
            }
            if sweep == self.max_sweeps - 1 {
                return Err(MarkovError::NoConvergence {
                    iterations: self.max_sweeps,
                    residual: delta,
                });
            }
        }
        unreachable!("loop always returns")
    }
}

impl Default for GaussSeidelSolver {
    /// Relative tolerance `1e-13`, at most `100_000` sweeps.
    fn default() -> GaussSeidelSolver {
        GaussSeidelSolver::new(1e-13, 100_000)
    }
}

impl SteadyStateSolver for GaussSeidelSolver {
    fn steady_state(&self, ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError> {
        let mut scratch = SolveScratch::new();
        self.sweep_into(ctmc, None, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.pi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CtmcBuilder, DenseSolver};
    use proptest::prelude::*;

    #[test]
    fn agrees_with_dense_on_small_chain() {
        let mut b = CtmcBuilder::new(4);
        b.rate(0, 1, 3.0)
            .rate(1, 2, 1.5)
            .rate(2, 3, 0.5)
            .rate(3, 0, 2.0)
            .rate(2, 0, 1.0)
            .rate(1, 0, 0.25);
        let ctmc = b.build().unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        let gs = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
        for (d, g) in dense.iter().zip(gs.iter()) {
            assert!((d - g).abs() < 1e-10, "dense={d} gs={g}");
        }
    }

    #[test]
    fn handles_stiff_chains_quickly() {
        // Rates spanning 9 orders of magnitude; power iteration would need
        // ~1e9 sweeps, Gauss-Seidel a handful.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1e-6)
            .rate(1, 2, 1e-3)
            .rate(1, 0, 100.0)
            .rate(2, 0, 1e3);
        let ctmc = b.build().unwrap();
        let solver = GaussSeidelSolver::new(1e-14, 1000);
        let gs = solver.steady_state(&ctmc).unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        for (d, g) in dense.iter().zip(gs.iter()) {
            let scale = d.abs().max(1e-300);
            assert!((d - g).abs() / scale < 1e-8, "dense={d} gs={g}");
        }
    }

    #[test]
    fn single_state_chain() {
        let ctmc = CtmcBuilder::new(1).build().unwrap();
        assert_eq!(
            GaussSeidelSolver::default().steady_state(&ctmc).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    fn rejects_reducible() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0);
        assert!(matches!(
            GaussSeidelSolver::default().steady_state(&b.build_unchecked()),
            Err(MarkovError::Reducible { .. })
        ));
    }

    #[test]
    fn respects_sweep_limit() {
        // A 6-state asymmetric ring takes more than two sweeps to settle.
        let mut b = CtmcBuilder::new(6);
        for i in 0..6 {
            b.rate(i, (i + 1) % 6, 1.0 + i as f64);
            b.rate((i + 1) % 6, i, 2.5 / (1.0 + i as f64));
        }
        let solver = GaussSeidelSolver::new(1e-300, 2);
        assert!(matches!(
            solver.steady_state(&b.build().unwrap()),
            Err(MarkovError::NoConvergence { iterations: 2, .. })
        ));
    }

    #[test]
    fn damping_breaks_period_two_limit_cycles() {
        // Regression: this tandem-queue chain sends undamped Gauss-Seidel
        // into a period-2 oscillation (delta pinned at 1/17).
        let c = 3usize;
        let (arrive, s1, s2) = (0.5, 1.0, 0.9);
        let idx = |i: usize, j: usize| i * (c + 1) + j;
        let mut b = CtmcBuilder::new((c + 1) * (c + 1));
        for i in 0..=c {
            for j in 0..=c {
                if i < c {
                    b.rate(idx(i, j), idx(i + 1, j), arrive);
                }
                if i > 0 && j < c {
                    b.rate(idx(i, j), idx(i - 1, j + 1), s1);
                }
                if j > 0 {
                    b.rate(idx(i, j), idx(i, j - 1), s2);
                }
            }
        }
        let ctmc = b.build().unwrap();
        let gs = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
        let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
        for (d, g) in dense.iter().zip(gs.iter()) {
            assert!((d - g).abs() < 1e-9, "dense={d} gs={g}");
        }
    }

    #[test]
    #[should_panic(expected = "relaxation")]
    fn bad_relaxation_panics() {
        let _ = GaussSeidelSolver::default().with_relaxation(1.5);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_panics() {
        let _ = GaussSeidelSolver::new(0.0, 1);
    }

    #[test]
    fn try_new_rejects_bad_parameters_without_panicking() {
        for (tol, sweeps) in [(0.0, 10), (-1.0, 10), (f64::NAN, 10), (1e-12, 0)] {
            assert!(matches!(
                GaussSeidelSolver::try_new(tol, sweeps),
                Err(MarkovError::InvalidSolverConfig { .. })
            ));
        }
        let solver = GaussSeidelSolver::try_new(1e-12, 10).unwrap();
        assert!(matches!(
            solver.try_with_relaxation(1.5),
            Err(MarkovError::InvalidSolverConfig { .. })
        ));
        assert!(solver.try_with_relaxation(1.0).is_ok());
    }

    #[test]
    fn zero_time_budget_times_out() {
        let mut b = CtmcBuilder::new(6);
        for i in 0..6 {
            b.rate(i, (i + 1) % 6, 1.0 + i as f64);
            b.rate((i + 1) % 6, i, 2.5 / (1.0 + i as f64));
        }
        let solver =
            GaussSeidelSolver::new(1e-300, 100_000).with_time_budget(std::time::Duration::ZERO);
        assert!(matches!(
            solver.steady_state(&b.build().unwrap()),
            Err(MarkovError::TimedOut { .. })
        ));
    }

    #[test]
    fn budget_sweep_cap_and_cancellation_stop_the_sweeps() {
        let mut b = CtmcBuilder::new(6);
        for i in 0..6 {
            b.rate(i, (i + 1) % 6, 1.0 + i as f64);
            b.rate((i + 1) % 6, i, 2.5 / (1.0 + i as f64));
        }
        let ctmc = b.build().unwrap();
        let solver = GaussSeidelSolver::new(1e-300, 100_000);
        let mut scratch = SolveScratch::new();
        let capped = SolveBudget::unlimited().with_max_sweeps(3);
        assert!(matches!(
            solver.sweep_into_budgeted(&ctmc, None, &mut scratch, &capped),
            Err(MarkovError::BudgetExhausted {
                phase: "gauss-seidel",
                resource: BudgetResource::Sweeps,
                limit: 3,
                ..
            })
        ));
        let token = crate::CancelToken::new();
        token.cancel();
        let cancelled = SolveBudget::unlimited().with_cancel(token);
        assert!(matches!(
            solver.sweep_into_budgeted(&ctmc, None, &mut scratch, &cancelled),
            Err(MarkovError::Cancelled {
                phase: "gauss-seidel"
            })
        ));
        // An unlimited budget is bit-identical to the plain path.
        let plain = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
        GaussSeidelSolver::default()
            .sweep_into_budgeted(&ctmc, None, &mut scratch, &SolveBudget::unlimited())
            .unwrap();
        assert_eq!(plain, scratch.pi);
    }

    #[test]
    fn warm_start_reaches_the_same_fixed_point_in_fewer_sweeps() {
        let mut b = CtmcBuilder::new(6);
        for i in 0..6 {
            b.rate(i, (i + 1) % 6, 1.0 + i as f64);
            b.rate((i + 1) % 6, i, 2.5 / (1.0 + i as f64));
        }
        let ctmc = b.build().unwrap();
        let solver = GaussSeidelSolver::default();
        let cold = solver.steady_state(&ctmc).unwrap();
        let warm = solver.steady_state_from(&ctmc, &cold).unwrap();
        for (c, w) in cold.iter().zip(warm.iter()) {
            assert!((c - w).abs() < 1e-12, "cold={c} warm={w}");
        }
        // A converged hint needs strictly fewer sweeps than the cold run.
        let mut scratch = crate::SolveScratch::new();
        let cold_sweeps = solver.sweep_into(&ctmc, None, &mut scratch).unwrap();
        let warm_sweeps = solver.sweep_into(&ctmc, Some(&cold), &mut scratch).unwrap();
        assert!(
            warm_sweeps < cold_sweeps,
            "warm {warm_sweeps} vs cold {cold_sweeps}"
        );
    }

    #[test]
    fn steady_state_from_rejects_unusable_hints() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).rate(1, 0, 2.0);
        let ctmc = b.build().unwrap();
        let solver = GaussSeidelSolver::default();
        for bad in [vec![1.0], vec![f64::NAN, 1.0], vec![0.0, 0.0]] {
            assert!(matches!(
                solver.steady_state_from(&ctmc, &bad),
                Err(MarkovError::InvalidSolverConfig { .. })
            ));
        }
        // Non-normalized hints are renormalized, not rejected.
        assert!(solver.steady_state_from(&ctmc, &[5.0, 5.0]).is_ok());
    }

    #[test]
    fn residual_exit_stops_early_and_stays_under_its_gate() {
        let mut b = CtmcBuilder::new(8);
        for i in 0..8_usize {
            b.rate(i, (i + 1) % 8, 0.3 + i as f64);
            b.rate((i + 1) % 8, i, 2.0 + i as f64 / 3.0);
        }
        let ctmc = b.build().unwrap();
        let mut scratch = SolveScratch::new();
        let full = GaussSeidelSolver::default()
            .sweep_into(&ctmc, None, &mut scratch)
            .unwrap();
        let gated = GaussSeidelSolver::default().with_residual_exit(1e-6);
        let sweeps = gated.sweep_into(&ctmc, None, &mut scratch).unwrap();
        assert!(
            sweeps < full,
            "residual exit must beat the per-sweep-delta criterion ({sweeps} vs {full})"
        );
        let residual = crate::FallbackSolver::residual_inf_norm(&ctmc, &scratch.pi);
        assert!(residual <= 1e-6, "exit left residual {residual}");
    }

    #[test]
    fn assuming_irreducible_does_not_change_the_solution() {
        let mut b = CtmcBuilder::new(5);
        for i in 0..5_usize {
            b.rate(i, (i + 1) % 5, 1.0 + i as f64);
            b.rate((i + 1) % 5, i, 0.5);
        }
        let ctmc = b.build().unwrap();
        let plain = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
        let mut scratch = SolveScratch::new();
        GaussSeidelSolver::default()
            .assuming_irreducible()
            .sweep_into(&ctmc, None, &mut scratch)
            .unwrap();
        assert_eq!(plain, scratch.pi, "the skip is a pure fast path");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn matches_dense_on_random_rings(
            n in 2_usize..10,
            rates in proptest::collection::vec(0.05_f64..20.0, 2 * 10),
        ) {
            let mut b = CtmcBuilder::new(n);
            for i in 0..n {
                b.rate(i, (i + 1) % n, rates[i]);
                b.rate((i + 1) % n, i, rates[n + i]);
            }
            let ctmc = b.build().unwrap();
            let dense = DenseSolver::new().steady_state(&ctmc).unwrap();
            let gs = GaussSeidelSolver::default().steady_state(&ctmc).unwrap();
            for (d, g) in dense.iter().zip(gs.iter()) {
                prop_assert!((d - g).abs() < 1e-9);
            }
        }
    }
}
