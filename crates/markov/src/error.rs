//! Error type shared by the CTMC builders and solvers.

use std::error::Error;
use std::fmt;

/// Error produced by CTMC construction or solution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A transition referenced a state index `>= n_states`.
    StateOutOfRange {
        /// The offending state index.
        state: usize,
        /// The number of states in the chain.
        n_states: usize,
    },
    /// A transition rate was negative, NaN or infinite.
    InvalidRate {
        /// Source state of the transition.
        from: usize,
        /// Destination state of the transition.
        to: usize,
        /// The offending rate value.
        rate: f64,
    },
    /// A self-loop transition was supplied (`from == to`); diagonal entries
    /// of the generator are derived, never specified.
    SelfLoop {
        /// The state with the self-loop.
        state: usize,
    },
    /// The chain was empty (zero states).
    EmptyChain,
    /// The chain is reducible: some state cannot reach, or be reached from,
    /// the rest, so no unique stationary distribution exists.
    Reducible {
        /// A representative unreachable/absorbing-component state.
        state: usize,
    },
    /// The linear system was numerically singular.
    Singular,
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual at the point of giving up.
        residual: f64,
    },
    /// An iterative solver exceeded its wall-clock budget.
    TimedOut {
        /// Number of iterations performed before the deadline hit.
        iterations: usize,
        /// The configured budget, in seconds.
        budget_secs: f64,
    },
    /// A solver produced a solution whose balance residual `‖πQ‖∞`
    /// exceeded the acceptance tolerance — a silently-wrong answer that a
    /// per-sweep convergence criterion alone would have accepted.
    ResidualTooLarge {
        /// The measured residual `‖πQ‖∞`.
        residual: f64,
        /// The acceptance tolerance it had to meet.
        tolerance: f64,
    },
    /// A solution contained NaN or infinite probabilities.
    NonFiniteSolution,
    /// A solver was configured with an invalid parameter (non-positive
    /// tolerance, zero iteration budget, relaxation outside `(0, 1]`, ...).
    InvalidSolverConfig {
        /// Human-readable description of the rejected parameter.
        detail: String,
    },
    /// A cooperative resource budget was exhausted mid-computation. Unlike
    /// [`TimedOut`](MarkovError::TimedOut) (a solver's own per-attempt
    /// allowance) this names the externally-imposed
    /// [`SolveBudget`](crate::SolveBudget) limit that tripped.
    BudgetExhausted {
        /// The phase that hit the limit (`"explore"`, `"gauss-seidel"`,
        /// `"power"`, `"search"`, ...).
        phase: &'static str,
        /// Which resource ran out.
        resource: crate::BudgetResource,
        /// Progress made at the cutoff, in the phase's own unit (states
        /// explored, sweeps performed, bytes consumed, elapsed work).
        progress: u64,
        /// The configured limit, in the same unit (`0` when the limit is a
        /// point in time rather than a count).
        limit: u64,
    },
    /// The computation was cancelled via a
    /// [`CancelToken`](crate::CancelToken) before it finished.
    Cancelled {
        /// The phase that observed the cancellation.
        phase: &'static str,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::StateOutOfRange { state, n_states } => {
                write!(f, "state {state} out of range (chain has {n_states} states)")
            }
            MarkovError::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            MarkovError::SelfLoop { state } => {
                write!(f, "self-loop on state {state} (diagonal entries are derived)")
            }
            MarkovError::EmptyChain => write!(f, "chain has no states"),
            MarkovError::Reducible { state } => {
                write!(f, "chain is reducible (state {state} not strongly connected)")
            }
            MarkovError::Singular => write!(f, "generator matrix is numerically singular"),
            MarkovError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:e})"
            ),
            MarkovError::TimedOut {
                iterations,
                budget_secs,
            } => write!(
                f,
                "solver exceeded its {budget_secs} s budget after {iterations} iterations"
            ),
            MarkovError::ResidualTooLarge {
                residual,
                tolerance,
            } => write!(
                f,
                "solution rejected: balance residual {residual:e} exceeds tolerance {tolerance:e}"
            ),
            MarkovError::NonFiniteSolution => {
                write!(f, "solution contains NaN or infinite probabilities")
            }
            MarkovError::InvalidSolverConfig { detail } => {
                write!(f, "invalid solver configuration: {detail}")
            }
            MarkovError::BudgetExhausted {
                phase,
                resource,
                progress,
                limit,
            } => {
                write!(f, "{phase} exhausted its {resource} budget")?;
                if *limit > 0 {
                    write!(f, " ({progress} of {limit})")
                } else {
                    write!(f, " after {progress} unit(s) of progress")
                }
            }
            MarkovError::Cancelled { phase } => {
                write!(f, "{phase} cancelled before completion")
            }
        }
    }
}

impl Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(MarkovError, &str)> = vec![
            (
                MarkovError::StateOutOfRange {
                    state: 5,
                    n_states: 3,
                },
                "state 5",
            ),
            (
                MarkovError::InvalidRate {
                    from: 0,
                    to: 1,
                    rate: -1.0,
                },
                "-1",
            ),
            (MarkovError::SelfLoop { state: 2 }, "self-loop"),
            (MarkovError::EmptyChain, "no states"),
            (MarkovError::Reducible { state: 7 }, "reducible"),
            (MarkovError::Singular, "singular"),
            (
                MarkovError::NoConvergence {
                    iterations: 10,
                    residual: 0.5,
                },
                "converge",
            ),
            (
                MarkovError::TimedOut {
                    iterations: 12,
                    budget_secs: 1.5,
                },
                "budget",
            ),
            (
                MarkovError::ResidualTooLarge {
                    residual: 1e-3,
                    tolerance: 1e-9,
                },
                "residual",
            ),
            (MarkovError::NonFiniteSolution, "NaN"),
            (
                MarkovError::InvalidSolverConfig {
                    detail: "tolerance must be positive".into(),
                },
                "configuration",
            ),
            (
                MarkovError::BudgetExhausted {
                    phase: "explore",
                    resource: crate::BudgetResource::States,
                    progress: 5000,
                    limit: 5000,
                },
                "explored-states budget",
            ),
            (MarkovError::Cancelled { phase: "power" }, "cancelled"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }
}
