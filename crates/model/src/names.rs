//! Interned-string identifier newtypes.
//!
//! Components, mechanisms, resource types, tiers and mechanism parameters
//! are all referenced by name in the Aved specification language. Distinct
//! newtypes keep the reference graph type-safe: a [`ComponentName`] can
//! never be used where a [`MechanismName`] is required, even though both
//! wrap a string.

use std::borrow::Borrow;
use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_name {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        #[serde(transparent)]
        pub struct $name(String);

        impl $name {
            /// Creates a name from any string-like value.
            pub fn new<S: Into<String>>(s: S) -> $name {
                $name(s.into())
            }

            /// The name as a string slice.
            #[must_use]
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> $name {
                $name(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> $name {
                $name(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }
    };
}

define_name! {
    /// The name of a component type (e.g. `machineA`, `linux`, `webserver`).
    ComponentName
}

define_name! {
    /// The name of an availability mechanism (e.g. `maintenanceA`,
    /// `checkpoint`).
    MechanismName
}

define_name! {
    /// The name of a resource type (e.g. `rA` … `rI`).
    ResourceTypeName
}

define_name! {
    /// The name of a service tier (e.g. `web`, `application`, `database`).
    TierName
}

define_name! {
    /// The name of a mechanism configuration parameter (e.g. `level`,
    /// `checkpoint_interval`, `storage_location`).
    ParamName
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn construction_and_display() {
        let c = ComponentName::new("machineA");
        assert_eq!(c.as_str(), "machineA");
        assert_eq!(c.to_string(), "machineA");
        assert_eq!(ComponentName::from("machineA"), c);
        assert_eq!(ComponentName::from(String::from("machineA")), c);
    }

    #[test]
    fn usable_as_hashmap_key_with_str_lookup() {
        let mut m: HashMap<ComponentName, i32> = HashMap::new();
        m.insert(ComponentName::new("linux"), 1);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(m.get("linux"), Some(&1));
        assert_eq!(m.get("unix"), None);
    }

    #[test]
    fn names_are_ordered() {
        let mut v = [TierName::new("web"), TierName::new("application")];
        v.sort();
        assert_eq!(v[0].as_str(), "application");
    }

    #[test]
    fn distinct_newtypes() {
        // Compile-time property really, but verify the types exist and are
        // independently constructible.
        let _: MechanismName = "checkpoint".into();
        let _: ResourceTypeName = "rA".into();
        let _: ParamName = "level".into();
    }
}
