//! Resolved designs (paper §4: the output of the design-space search).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{
    Infrastructure, MechanismName, ModelError, OperationalMode, ParamName, ParamValue,
    ResourceTypeName, Service, Settings, TierName,
};

/// The operational modes of the components of spare resources.
///
/// The paper treats "the operational mode of each component in the spare
/// resources" as a design dimension; its application-tier example restricts
/// spares to be fully inactive. The common whole-resource cases get direct
/// variants; arbitrary per-component assignments remain expressible.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpareMode {
    /// Every component of every spare is powered off / unlicensed.
    AllInactive,
    /// Every component of every spare is running (hot standby).
    AllActive,
    /// An explicit mode per component slot of the resource type.
    PerComponent(Vec<OperationalMode>),
}

impl SpareMode {
    /// Expands to one mode per component slot.
    ///
    /// # Panics
    ///
    /// Panics if a `PerComponent` assignment has the wrong length.
    #[must_use]
    pub fn modes(&self, n_slots: usize) -> Vec<OperationalMode> {
        match self {
            SpareMode::AllInactive => vec![OperationalMode::Inactive; n_slots],
            SpareMode::AllActive => vec![OperationalMode::Active; n_slots],
            SpareMode::PerComponent(modes) => {
                assert_eq!(
                    modes.len(),
                    n_slots,
                    "per-component spare modes must cover every slot"
                );
                modes.clone()
            }
        }
    }
}

/// The resolved design of one tier.
///
/// Fixes every choice the search makes for a tier: the resource type, the
/// number of active resources, the number of spares, the spare components'
/// operational modes, and a value for every availability-mechanism
/// parameter in play.
///
/// # Examples
///
/// ```
/// use aved_model::{TierDesign, SpareMode, ParamValue};
///
/// let td = TierDesign::new("application", "rC", 6, 1)
///     .with_spare_mode(SpareMode::AllInactive)
///     .with_setting("maintenanceA", "level", ParamValue::Level("gold".into()));
/// assert_eq!(td.n_active(), 6);
/// assert_eq!(td.n_total(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierDesign {
    tier: TierName,
    resource: ResourceTypeName,
    n_active: u32,
    n_spare: u32,
    spare_mode: SpareMode,
    // Serialized as a list of (mechanism, param, value) triples: tuple map
    // keys have no JSON representation.
    #[serde(with = "settings_serde")]
    settings: BTreeMap<(MechanismName, ParamName), ParamValue>,
}

// Referenced via `#[serde(with = ...)]`, which the offline serde stub's
// derive ignores — hence the allow; remove it with the registry serde.
#[allow(dead_code)]
mod settings_serde {
    use super::{BTreeMap, MechanismName, ParamName, ParamValue};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(MechanismName, ParamName), ParamValue>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&MechanismName, &ParamName, &ParamValue)> =
            map.iter().map(|((m, p), v)| (m, p, v)).collect();
        entries.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(MechanismName, ParamName), ParamValue>, D::Error> {
        let entries: Vec<(MechanismName, ParamName, ParamValue)> = Vec::deserialize(deserializer)?;
        Ok(entries.into_iter().map(|(m, p, v)| ((m, p), v)).collect())
    }
}

impl TierDesign {
    /// Creates a tier design with fully-inactive spares and no mechanism
    /// settings.
    ///
    /// # Panics
    ///
    /// Panics if `n_active` is zero.
    pub fn new<T, R>(tier: T, resource: R, n_active: u32, n_spare: u32) -> TierDesign
    where
        T: Into<TierName>,
        R: Into<ResourceTypeName>,
    {
        assert!(n_active > 0, "a tier needs at least one active resource");
        TierDesign {
            tier: tier.into(),
            resource: resource.into(),
            n_active,
            n_spare,
            spare_mode: SpareMode::AllInactive,
            settings: BTreeMap::new(),
        }
    }

    /// Sets the spare-component operational modes.
    #[must_use]
    pub fn with_spare_mode(mut self, mode: SpareMode) -> TierDesign {
        self.spare_mode = mode;
        self
    }

    /// Sets one mechanism parameter.
    #[must_use]
    pub fn with_setting<M, P>(mut self, mechanism: M, param: P, value: ParamValue) -> TierDesign
    where
        M: Into<MechanismName>,
        P: Into<ParamName>,
    {
        self.settings
            .insert((mechanism.into(), param.into()), value);
        self
    }

    /// The tier this design is for.
    #[must_use]
    pub fn tier(&self) -> &TierName {
        &self.tier
    }

    /// The selected resource type.
    #[must_use]
    pub fn resource(&self) -> &ResourceTypeName {
        &self.resource
    }

    /// Number of active resources.
    #[must_use]
    pub fn n_active(&self) -> u32 {
        self.n_active
    }

    /// Number of spare resources.
    #[must_use]
    pub fn n_spare(&self) -> u32 {
        self.n_spare
    }

    /// Total resources (active + spare).
    #[must_use]
    pub fn n_total(&self) -> u32 {
        self.n_active + self.n_spare
    }

    /// Spare component modes.
    #[must_use]
    pub fn spare_mode(&self) -> &SpareMode {
        &self.spare_mode
    }

    /// All mechanism settings.
    #[must_use]
    pub fn settings(&self) -> &BTreeMap<(MechanismName, ParamName), ParamValue> {
        &self.settings
    }

    /// Reads one setting.
    #[must_use]
    pub fn setting(&self, mechanism: &str, param: &str) -> Option<&ParamValue> {
        self.settings
            .iter()
            .find(|((m, p), _)| m.as_str() == mechanism && p.as_str() == param)
            .map(|(_, v)| v)
    }
}

impl Settings for TierDesign {
    fn get(&self, mechanism: &MechanismName, param: &ParamName) -> Option<ParamValue> {
        self.settings
            .get(&(mechanism.clone(), param.clone()))
            .cloned()
    }
}

impl std::fmt::Display for TierDesign {
    /// A one-line human-readable summary:
    /// `application: rC x5 (+1 inactive spare) [maintenanceA.level=gold]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} x{}", self.tier, self.resource, self.n_active)?;
        if self.n_spare > 0 {
            let mode = match &self.spare_mode {
                SpareMode::AllInactive => "inactive",
                SpareMode::AllActive => "hot",
                SpareMode::PerComponent(_) => "mixed-mode",
            };
            write!(
                f,
                " (+{} {} spare{})",
                self.n_spare,
                mode,
                if self.n_spare == 1 { "" } else { "s" }
            )?;
        }
        if !self.settings.is_empty() {
            let settings: Vec<String> = self
                .settings
                .iter()
                .map(|((m, p), v)| format!("{m}.{p}={v}"))
                .collect();
            write!(f, " [{}]", settings.join(", "))?;
        }
        Ok(())
    }
}

/// A complete design: one [`TierDesign`] per service tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    tiers: Vec<TierDesign>,
}

impl Design {
    /// Creates a design from per-tier designs.
    #[must_use]
    pub fn new(tiers: Vec<TierDesign>) -> Design {
        Design { tiers }
    }

    /// The per-tier designs.
    #[must_use]
    pub fn tiers(&self) -> &[TierDesign] {
        &self.tiers
    }

    /// Looks up the design of a named tier.
    #[must_use]
    pub fn tier(&self, name: &str) -> Option<&TierDesign> {
        self.tiers.iter().find(|t| t.tier().as_str() == name)
    }

    /// Validates the design against an infrastructure and service model:
    ///
    /// * every tier of the service has exactly one design and vice versa;
    /// * each selected resource type exists and is an option of its tier;
    /// * `n_active` is allowed by the option's `nActive` specification;
    /// * mechanism settings lie within declared parameter ranges;
    /// * component `max_instances` bounds hold across the whole design.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ModelError`].
    pub fn validate(
        &self,
        infrastructure: &Infrastructure,
        service: &Service,
    ) -> Result<(), ModelError> {
        if self.tiers.len() != service.tiers().len() {
            return Err(ModelError::TierMismatch {
                detail: format!(
                    "design has {} tiers, service has {}",
                    self.tiers.len(),
                    service.tiers().len()
                ),
            });
        }
        let mut instance_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for td in &self.tiers {
            let tier =
                service
                    .tier(td.tier().as_str())
                    .ok_or_else(|| ModelError::TierMismatch {
                        detail: format!("service has no tier named {}", td.tier()),
                    })?;
            let option = tier.option_for(td.resource().as_str()).ok_or_else(|| {
                ModelError::UnknownResource {
                    tier: td.tier().to_string(),
                    resource: td.resource().to_string(),
                }
            })?;
            if !option.n_active().contains(td.n_active()) {
                return Err(ModelError::Invalid {
                    detail: format!(
                        "tier {}: nActive={} is not allowed by the resource option",
                        td.tier(),
                        td.n_active()
                    ),
                });
            }
            let resource = infrastructure
                .resource(td.resource().as_str())
                .ok_or_else(|| ModelError::UnknownResource {
                    tier: td.tier().to_string(),
                    resource: td.resource().to_string(),
                })?;
            if let SpareMode::PerComponent(modes) = td.spare_mode() {
                if modes.len() != resource.components().len() {
                    return Err(ModelError::Invalid {
                        detail: format!(
                            "tier {}: spare mode lists {} components, resource {} has {}",
                            td.tier(),
                            modes.len(),
                            td.resource(),
                            resource.components().len()
                        ),
                    });
                }
            }
            // Mechanism settings within range.
            for ((mech, param), value) in td.settings() {
                let mechanism = infrastructure.mechanism(mech.as_str()).ok_or_else(|| {
                    ModelError::UnknownMechanism {
                        context: format!("design for tier {}", td.tier()),
                        mechanism: mech.to_string(),
                    }
                })?;
                let p = mechanism.param(param.as_str()).ok_or_else(|| {
                    ModelError::UnknownParameter {
                        mechanism: mech.to_string(),
                        param: param.to_string(),
                    }
                })?;
                if !p.range().contains(value) {
                    return Err(ModelError::ValueOutOfRange {
                        mechanism: mech.to_string(),
                        param: param.to_string(),
                        value: value.to_string(),
                    });
                }
            }
            // Count component instances across the design.
            for slot in resource.components() {
                *instance_counts
                    .entry(slot.component().as_str())
                    .or_insert(0) += td.n_total() as usize;
            }
        }
        for (component, count) in instance_counts {
            if let Some(ct) = infrastructure.component(component) {
                if let Some(max) = ct.max_instances() {
                    if count > max {
                        return Err(ModelError::TooManyInstances {
                            component: component.to_owned(),
                            requested: count,
                            allowed: max,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Design {
    /// One [`TierDesign`] line per tier.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, tier) in self.tiers.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{tier}")?;
        }
        Ok(())
    }
}

/// One difference between two designs, as reported by [`Design::diff`].
///
/// In a utility-computing deployment (paper §1), each change is a
/// reconfiguration action the utility controller must execute when moving
/// from the current design to the re-designed one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DesignChange {
    /// A tier present only in the new design.
    TierAdded {
        /// The added tier.
        tier: TierName,
    },
    /// A tier present only in the old design.
    TierRemoved {
        /// The removed tier.
        tier: TierName,
    },
    /// The tier switched resource types (redeploy everything).
    ResourceChanged {
        /// The affected tier.
        tier: TierName,
        /// Resource type in the old design.
        from: ResourceTypeName,
        /// Resource type in the new design.
        to: ResourceTypeName,
    },
    /// The number of active resources changed (scale out/in).
    ActiveCountChanged {
        /// The affected tier.
        tier: TierName,
        /// Active count in the old design.
        from: u32,
        /// Active count in the new design.
        to: u32,
    },
    /// The number of spares changed.
    SpareCountChanged {
        /// The affected tier.
        tier: TierName,
        /// Spare count in the old design.
        from: u32,
        /// Spare count in the new design.
        to: u32,
    },
    /// A mechanism parameter setting changed (or appeared/disappeared).
    SettingChanged {
        /// The affected tier.
        tier: TierName,
        /// The mechanism whose parameter changed.
        mechanism: MechanismName,
        /// The parameter.
        param: ParamName,
        /// The old value, if any.
        from: Option<ParamValue>,
        /// The new value, if any.
        to: Option<ParamValue>,
    },
}

impl std::fmt::Display for DesignChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignChange::TierAdded { tier } => write!(f, "{tier}: tier added"),
            DesignChange::TierRemoved { tier } => write!(f, "{tier}: tier removed"),
            DesignChange::ResourceChanged { tier, from, to } => {
                write!(f, "{tier}: resource {from} -> {to}")
            }
            DesignChange::ActiveCountChanged { tier, from, to } => {
                write!(f, "{tier}: actives {from} -> {to}")
            }
            DesignChange::SpareCountChanged { tier, from, to } => {
                write!(f, "{tier}: spares {from} -> {to}")
            }
            DesignChange::SettingChanged {
                tier,
                mechanism,
                param,
                from,
                to,
            } => {
                let show = |v: &Option<ParamValue>| {
                    v.as_ref()
                        .map_or_else(|| "-".to_owned(), ToString::to_string)
                };
                write!(
                    f,
                    "{tier}: {mechanism}.{param} {} -> {}",
                    show(from),
                    show(to)
                )
            }
        }
    }
}

impl Design {
    /// The reconfiguration actions separating `self` from `other` (changes
    /// are phrased as going *from `self` to `other`*), in tier order.
    ///
    /// An empty result means the designs are operationally identical.
    /// Spare-mode changes are reported as a setting-level change only when
    /// both designs keep spares; a resource or count change subsumes them.
    #[must_use]
    pub fn diff(&self, other: &Design) -> Vec<DesignChange> {
        let mut out = Vec::new();
        for old in &self.tiers {
            let Some(new) = other.tier(old.tier().as_str()) else {
                out.push(DesignChange::TierRemoved {
                    tier: old.tier().clone(),
                });
                continue;
            };
            if old.resource() != new.resource() {
                out.push(DesignChange::ResourceChanged {
                    tier: old.tier().clone(),
                    from: old.resource().clone(),
                    to: new.resource().clone(),
                });
            }
            if old.n_active() != new.n_active() {
                out.push(DesignChange::ActiveCountChanged {
                    tier: old.tier().clone(),
                    from: old.n_active(),
                    to: new.n_active(),
                });
            }
            if old.n_spare() != new.n_spare() {
                out.push(DesignChange::SpareCountChanged {
                    tier: old.tier().clone(),
                    from: old.n_spare(),
                    to: new.n_spare(),
                });
            }
            let keys: std::collections::BTreeSet<_> = old
                .settings()
                .keys()
                .chain(new.settings().keys())
                .cloned()
                .collect();
            for (mech, param) in keys {
                let from = old.settings().get(&(mech.clone(), param.clone())).cloned();
                let to = new.settings().get(&(mech.clone(), param.clone())).cloned();
                if from != to {
                    out.push(DesignChange::SettingChanged {
                        tier: old.tier().clone(),
                        mechanism: mech,
                        param,
                        from,
                        to,
                    });
                }
            }
        }
        for new in other.tiers() {
            if self.tier(new.tier().as_str()).is_none() {
                out.push(DesignChange::TierAdded {
                    tier: new.tier().clone(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes_designs() {
        let td = TierDesign::new("application", "rC", 5, 1).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("gold".into()),
        );
        let shown = td.to_string();
        assert!(shown.contains("application: rC x5"));
        assert!(shown.contains("+1 inactive spare"));
        assert!(shown.contains("maintenanceA.level=gold"));

        let bare = TierDesign::new("web", "rA", 2, 0);
        assert_eq!(bare.to_string(), "web: rA x2");

        let hot = TierDesign::new("web", "rA", 2, 2).with_spare_mode(SpareMode::AllActive);
        assert!(hot.to_string().contains("+2 hot spares"));

        let design = Design::new(vec![bare.clone(), hot]);
        let text = design.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("web: rA x2"));
    }

    #[test]
    fn diff_reports_every_change_kind() {
        let old = Design::new(vec![
            TierDesign::new("web", "rA", 5, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("bronze".into()),
            ),
            TierDesign::new("db", "rG", 1, 1),
        ]);
        let new = Design::new(vec![
            TierDesign::new("web", "rB", 2, 1).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("gold".into()),
            ),
            TierDesign::new("cache", "rA", 2, 0),
        ]);
        let changes = old.diff(&new);
        let rendered: Vec<String> = changes.iter().map(ToString::to_string).collect();
        assert!(
            rendered.contains(&"web: resource rA -> rB".to_owned()),
            "{rendered:?}"
        );
        assert!(rendered.contains(&"web: actives 5 -> 2".to_owned()));
        assert!(rendered.contains(&"web: spares 0 -> 1".to_owned()));
        assert!(rendered.contains(&"web: maintenanceA.level bronze -> gold".to_owned()));
        assert!(rendered.contains(&"db: tier removed".to_owned()));
        assert!(rendered.contains(&"cache: tier added".to_owned()));
        assert_eq!(changes.len(), 6);
    }

    #[test]
    fn diff_of_identical_designs_is_empty() {
        let d = Design::new(vec![TierDesign::new("web", "rA", 3, 1).with_setting(
            "m",
            "p",
            ParamValue::Level("x".into()),
        )]);
        assert!(d.diff(&d.clone()).is_empty());
    }

    #[test]
    fn diff_reports_new_and_dropped_settings() {
        let old = Design::new(vec![TierDesign::new("t", "r", 1, 0).with_setting(
            "m",
            "a",
            ParamValue::Level("x".into()),
        )]);
        let new = Design::new(vec![TierDesign::new("t", "r", 1, 0).with_setting(
            "m",
            "b",
            ParamValue::Level("y".into()),
        )]);
        let changes = old.diff(&new);
        assert_eq!(changes.len(), 2);
        let rendered: Vec<String> = changes.iter().map(ToString::to_string).collect();
        assert!(
            rendered.contains(&"t: m.a x -> -".to_owned()),
            "{rendered:?}"
        );
        assert!(rendered.contains(&"t: m.b - -> y".to_owned()));
    }

    #[test]
    fn spare_mode_expansion() {
        assert_eq!(
            SpareMode::AllInactive.modes(2),
            vec![OperationalMode::Inactive; 2]
        );
        assert_eq!(
            SpareMode::AllActive.modes(3),
            vec![OperationalMode::Active; 3]
        );
        let custom =
            SpareMode::PerComponent(vec![OperationalMode::Active, OperationalMode::Inactive]);
        assert_eq!(
            custom.modes(2),
            vec![OperationalMode::Active, OperationalMode::Inactive]
        );
    }

    #[test]
    #[should_panic(expected = "cover every slot")]
    fn wrong_length_per_component_panics() {
        let _ = SpareMode::PerComponent(vec![OperationalMode::Active]).modes(2);
    }

    #[test]
    fn tier_design_accessors() {
        let td = TierDesign::new("web", "rA", 5, 2).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("silver".into()),
        );
        assert_eq!(td.tier().as_str(), "web");
        assert_eq!(td.resource().as_str(), "rA");
        assert_eq!(td.n_total(), 7);
        assert_eq!(
            td.setting("maintenanceA", "level"),
            Some(&ParamValue::Level("silver".into()))
        );
        assert_eq!(td.setting("maintenanceA", "other"), None);
        // Settings trait
        let got = Settings::get(
            &td,
            &MechanismName::new("maintenanceA"),
            &ParamName::new("level"),
        );
        assert_eq!(got, Some(ParamValue::Level("silver".into())));
    }

    #[test]
    #[should_panic(expected = "at least one active")]
    fn zero_active_panics() {
        let _ = TierDesign::new("web", "rA", 0, 1);
    }

    #[test]
    fn design_tier_lookup() {
        let d = Design::new(vec![
            TierDesign::new("web", "rA", 2, 0),
            TierDesign::new("application", "rC", 3, 1),
        ]);
        assert_eq!(d.tiers().len(), 2);
        assert_eq!(d.tier("application").unwrap().n_active(), 3);
        assert!(d.tier("database").is_none());
    }
}
