//! The infrastructure model: the repository of building blocks (paper §3.1).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{
    ComponentName, ComponentType, DurationSpec, EffectValue, Mechanism, MechanismCost,
    MechanismName, ModelError, ResourceType, ResourceTypeName,
};

/// The full infrastructure model: component types, availability mechanisms
/// and resource types.
///
/// The paper envisions the infrastructure model "maintained in a repository
/// and used for all services and applications"; this type is that
/// repository. Entries are keyed by name; [`validate`](Self::validate)
/// checks all cross-references.
///
/// # Examples
///
/// ```
/// use aved_model::{Infrastructure, ComponentType, ResourceType, ResourceComponent, FailureMode};
/// use aved_units::{Duration, Money};
///
/// let infra = Infrastructure::new()
///     .with_component(
///         ComponentType::new("machineA")
///             .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
///             .with_failure_mode(FailureMode::new(
///                 "soft",
///                 Duration::from_days(75.0),
///                 Duration::ZERO,
///                 Duration::ZERO,
///             )),
///     )
///     .with_resource(
///         ResourceType::new("rA", Duration::ZERO)
///             .with_component(ResourceComponent::new("machineA", None, Duration::from_secs(30.0))),
///     );
/// infra.validate()?;
/// # Ok::<(), aved_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Infrastructure {
    components: BTreeMap<ComponentName, ComponentType>,
    mechanisms: BTreeMap<MechanismName, Mechanism>,
    resources: BTreeMap<ResourceTypeName, ResourceType>,
}

impl Infrastructure {
    /// Creates an empty infrastructure model.
    #[must_use]
    pub fn new() -> Infrastructure {
        Infrastructure::default()
    }

    /// Adds (or replaces) a component type.
    #[must_use]
    pub fn with_component(mut self, c: ComponentType) -> Infrastructure {
        self.components.insert(c.name().clone(), c);
        self
    }

    /// Adds (or replaces) a mechanism.
    #[must_use]
    pub fn with_mechanism(mut self, m: Mechanism) -> Infrastructure {
        self.mechanisms.insert(m.name().clone(), m);
        self
    }

    /// Adds (or replaces) a resource type.
    #[must_use]
    pub fn with_resource(mut self, r: ResourceType) -> Infrastructure {
        self.resources.insert(r.name().clone(), r);
        self
    }

    /// Looks up a component type by name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&ComponentType> {
        self.components.get(name)
    }

    /// Looks up a mechanism by name.
    #[must_use]
    pub fn mechanism(&self, name: &str) -> Option<&Mechanism> {
        self.mechanisms.get(name)
    }

    /// Looks up a resource type by name.
    #[must_use]
    pub fn resource(&self, name: &str) -> Option<&ResourceType> {
        self.resources.get(name)
    }

    /// All component types, ordered by name.
    pub fn components(&self) -> impl Iterator<Item = &ComponentType> {
        self.components.values()
    }

    /// All mechanisms, ordered by name.
    pub fn mechanisms(&self) -> impl Iterator<Item = &Mechanism> {
        self.mechanisms.values()
    }

    /// All resource types, ordered by name.
    pub fn resources(&self) -> impl Iterator<Item = &ResourceType> {
        self.resources.values()
    }

    /// The mechanisms referenced by a component's attributes (repair specs
    /// and loss window), deduplicated.
    #[must_use]
    pub fn mechanisms_of_component<'c>(
        &self,
        component: &'c ComponentType,
    ) -> Vec<&'c MechanismName> {
        let mut acc: Vec<&MechanismName> = Vec::new();
        for fm in component.failure_modes() {
            if let Some(m) = fm.mtbf_spec().mechanism() {
                if !acc.contains(&m) {
                    acc.push(m);
                }
            }
            if let Some(m) = fm.repair().mechanism() {
                if !acc.contains(&m) {
                    acc.push(m);
                }
            }
        }
        if let Some(DurationSpec::FromMechanism(m)) = component.loss_window() {
            if !acc.contains(&m) {
                acc.push(m);
            }
        }
        acc
    }

    /// Validates all cross-references:
    ///
    /// * each resource's components exist and its dependency graph is a
    ///   well-ordered forest;
    /// * every `mttr=<mech>` reference names a mechanism that declares an
    ///   MTTR effect, and every `loss_window=<mech>` one that declares a
    ///   loss-window effect;
    /// * every mechanism's cost table and effect tables are driven by a
    ///   declared parameter and match its range length.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`ModelError`].
    pub fn validate(&self) -> Result<(), ModelError> {
        for resource in self.resources.values() {
            resource.validate()?;
            for slot in resource.components() {
                if self.component(slot.component().as_str()).is_none() {
                    return Err(ModelError::UnknownComponent {
                        resource: resource.name().to_string(),
                        component: slot.component().to_string(),
                    });
                }
            }
        }
        for component in self.components.values() {
            for fm in component.failure_modes() {
                if let Some(mech_name) = fm.mtbf_spec().mechanism() {
                    let mech = self.mechanism(mech_name.as_str()).ok_or_else(|| {
                        ModelError::UnknownMechanism {
                            context: format!(
                                "component {} failure mode {}",
                                component.name(),
                                fm.name()
                            ),
                            mechanism: mech_name.to_string(),
                        }
                    })?;
                    if mech.mtbf_effect().is_none() {
                        return Err(ModelError::Invalid {
                            detail: format!(
                                "component {} delegates mtbf to mechanism {} which declares no mtbf effect",
                                component.name(),
                                mech_name
                            ),
                        });
                    }
                }
                if let Some(mech_name) = fm.repair().mechanism() {
                    let mech = self.mechanism(mech_name.as_str()).ok_or_else(|| {
                        ModelError::UnknownMechanism {
                            context: format!(
                                "component {} failure mode {}",
                                component.name(),
                                fm.name()
                            ),
                            mechanism: mech_name.to_string(),
                        }
                    })?;
                    if mech.mttr_effect().is_none() {
                        return Err(ModelError::Invalid {
                            detail: format!(
                                "component {} delegates mttr to mechanism {} which declares no mttr effect",
                                component.name(),
                                mech_name
                            ),
                        });
                    }
                }
            }
            if let Some(DurationSpec::FromMechanism(mech_name)) = component.loss_window() {
                let mech = self.mechanism(mech_name.as_str()).ok_or_else(|| {
                    ModelError::UnknownMechanism {
                        context: format!("component {} loss window", component.name()),
                        mechanism: mech_name.to_string(),
                    }
                })?;
                if mech.loss_window_effect().is_none() {
                    return Err(ModelError::Invalid {
                        detail: format!(
                            "component {} delegates loss_window to mechanism {} which declares no loss_window effect",
                            component.name(),
                            mech_name
                        ),
                    });
                }
            }
        }
        for mech in self.mechanisms.values() {
            if let MechanismCost::Table { param, values } = mech.cost_spec() {
                Self::check_table(mech, param.as_str(), values.len())?;
            }
            for effect in [
                mech.mtbf_effect(),
                mech.mttr_effect(),
                mech.loss_window_effect(),
            ]
            .into_iter()
            .flatten()
            {
                match effect {
                    EffectValue::Table { param, values } => {
                        Self::check_table(mech, param.as_str(), values.len())?;
                    }
                    EffectValue::Param(param) => {
                        if mech.param(param.as_str()).is_none() {
                            return Err(ModelError::UnknownParameter {
                                mechanism: mech.name().to_string(),
                                param: param.to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_table(mech: &Mechanism, param: &str, table_len: usize) -> Result<(), ModelError> {
        let p = mech
            .param(param)
            .ok_or_else(|| ModelError::UnknownParameter {
                mechanism: mech.name().to_string(),
                param: param.to_owned(),
            })?;
        let range_len = p.range().len();
        if range_len != table_len {
            return Err(ModelError::EffectTableMismatch {
                mechanism: mech.name().to_string(),
                param: param.to_owned(),
                range_len,
                table_len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureMode, ParamRange, Parameter, ResourceComponent};
    use aved_units::{Duration, Money};

    fn base() -> Infrastructure {
        Infrastructure::new()
            .with_component(
                ComponentType::new("machineA")
                    .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
                    .with_failure_mode(FailureMode::new(
                        "hard",
                        Duration::from_days(650.0),
                        DurationSpec::FromMechanism("maintenanceA".into()),
                        Duration::from_mins(2.0),
                    )),
            )
            .with_mechanism(
                Mechanism::new("maintenanceA")
                    .with_param(Parameter::new(
                        "level",
                        ParamRange::Levels(vec!["bronze".into(), "gold".into()]),
                    ))
                    .with_cost_table(
                        "level",
                        vec![Money::from_dollars(380.0), Money::from_dollars(760.0)],
                    )
                    .with_mttr_effect(EffectValue::Table {
                        param: "level".into(),
                        values: vec![Duration::from_hours(38.0), Duration::from_hours(8.0)],
                    }),
            )
            .with_resource(ResourceType::new("rA", Duration::ZERO).with_component(
                ResourceComponent::new("machineA", None, Duration::from_secs(30.0)),
            ))
    }

    #[test]
    fn valid_model_passes() {
        base().validate().unwrap();
    }

    #[test]
    fn lookup_by_name() {
        let i = base();
        assert!(i.component("machineA").is_some());
        assert!(i.component("machineZ").is_none());
        assert!(i.mechanism("maintenanceA").is_some());
        assert!(i.resource("rA").is_some());
        assert_eq!(i.components().count(), 1);
        assert_eq!(i.mechanisms().count(), 1);
        assert_eq!(i.resources().count(), 1);
    }

    #[test]
    fn detects_unknown_component_in_resource() {
        let i = base().with_resource(
            ResourceType::new("rBad", Duration::ZERO).with_component(ResourceComponent::new(
                "ghost",
                None,
                Duration::ZERO,
            )),
        );
        assert!(matches!(
            i.validate(),
            Err(ModelError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn detects_unknown_mechanism_in_mttr() {
        let i = base().with_component(ComponentType::new("machineB").with_failure_mode(
            FailureMode::new(
                "hard",
                Duration::from_days(1300.0),
                DurationSpec::FromMechanism("maintenanceZ".into()),
                Duration::from_mins(2.0),
            ),
        ));
        assert!(matches!(
            i.validate(),
            Err(ModelError::UnknownMechanism { .. })
        ));
    }

    #[test]
    fn detects_mechanism_without_required_effect() {
        // maintenance mechanism with no mttr effect referenced from mttr=<>.
        let i = Infrastructure::new()
            .with_component(ComponentType::new("hw").with_failure_mode(FailureMode::new(
                "hard",
                Duration::from_days(1.0),
                DurationSpec::FromMechanism("m".into()),
                Duration::ZERO,
            )))
            .with_mechanism(Mechanism::new("m"));
        assert!(matches!(i.validate(), Err(ModelError::Invalid { .. })));
    }

    #[test]
    fn detects_table_length_mismatch() {
        let i = Infrastructure::new().with_mechanism(
            Mechanism::new("m")
                .with_param(Parameter::new(
                    "level",
                    ParamRange::Levels(vec!["a".into(), "b".into(), "c".into()]),
                ))
                .with_cost_table("level", vec![Money::ZERO]),
        );
        assert!(matches!(
            i.validate(),
            Err(ModelError::EffectTableMismatch {
                range_len: 3,
                table_len: 1,
                ..
            })
        ));
    }

    #[test]
    fn detects_effect_over_unknown_param() {
        let i = Infrastructure::new().with_mechanism(Mechanism::new("m").with_mttr_effect(
            EffectValue::Table {
                param: "ghost".into(),
                values: vec![],
            },
        ));
        assert!(matches!(
            i.validate(),
            Err(ModelError::UnknownParameter { .. })
        ));
    }

    #[test]
    fn mechanisms_of_component_deduplicates() {
        let c = ComponentType::new("x")
            .with_failure_mode(FailureMode::new(
                "hard",
                Duration::from_days(1.0),
                DurationSpec::FromMechanism("m".into()),
                Duration::ZERO,
            ))
            .with_failure_mode(FailureMode::new(
                "glitch",
                Duration::from_days(2.0),
                DurationSpec::FromMechanism("m".into()),
                Duration::ZERO,
            ))
            .with_loss_window(DurationSpec::FromMechanism("checkpoint".into()));
        let i = Infrastructure::new();
        let mechs = i.mechanisms_of_component(&c);
        let names: Vec<&str> = mechs.iter().map(|m| m.as_str()).collect();
        assert_eq!(names, vec!["m", "checkpoint"]);
    }
}
