//! Resource types: component compositions with dependencies (paper §3.1.3).

use aved_units::Duration;
use serde::{Deserialize, Serialize};

use crate::{ComponentName, ModelError, ResourceTypeName};

/// The operational mode of a component instance in a design.
///
/// Active components do work (and incur their active cost and failure
/// exposure); inactive components are powered off or unlicensed (cheaper,
/// assumed not to fail, but must be started during failover).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationalMode {
    /// Powered off / unlicensed.
    Inactive,
    /// Running.
    Active,
}

impl std::fmt::Display for OperationalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OperationalMode::Inactive => "inactive",
            OperationalMode::Active => "active",
        })
    }
}

/// One component slot within a resource type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceComponent {
    component: ComponentName,
    depends_on: Option<ComponentName>,
    startup: Duration,
}

impl ResourceComponent {
    /// Creates a component slot.
    ///
    /// `depends_on` is the name of another component *in the same resource*
    /// that must be started first and whose failure brings this component
    /// down too (`None` for root components such as the hardware).
    pub fn new<C: Into<ComponentName>>(
        component: C,
        depends_on: Option<ComponentName>,
        startup: Duration,
    ) -> ResourceComponent {
        ResourceComponent {
            component: component.into(),
            depends_on,
            startup,
        }
    }

    /// The component type occupying this slot.
    #[must_use]
    pub fn component(&self) -> &ComponentName {
        &self.component
    }

    /// The component this slot depends on, if any.
    #[must_use]
    pub fn depends_on(&self) -> Option<&ComponentName> {
        self.depends_on.as_ref()
    }

    /// The startup latency of this component.
    #[must_use]
    pub fn startup(&self) -> Duration {
        self.startup
    }
}

/// A resource type: the basic unit of allocation to a service.
///
/// A resource is a combination of components (e.g. `machineA` + `linux` +
/// `webserver`) with startup latencies and dependencies. Dependencies
/// define the start order and the failure blast radius: a component's
/// failure also brings down every component that transitively depends on
/// it (paper: "a hardware failure causes the operating system to fail as
/// well").
///
/// # Examples
///
/// ```
/// use aved_model::{ResourceType, ResourceComponent};
/// use aved_units::Duration;
///
/// let r_a = ResourceType::new("rA", Duration::ZERO)
///     .with_component(ResourceComponent::new("machineA", None, Duration::from_secs(30.0)))
///     .with_component(ResourceComponent::new(
///         "linux",
///         Some("machineA".into()),
///         Duration::from_mins(2.0),
///     ))
///     .with_component(ResourceComponent::new(
///         "webserver",
///         Some("linux".into()),
///         Duration::from_secs(30.0),
///     ));
/// // A machineA failure takes down all three components; restarting them
/// // sequentially costs 30s + 2m + 30s.
/// assert_eq!(r_a.restart_time_after(0).minutes(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceType {
    name: ResourceTypeName,
    reconfig_time: Duration,
    components: Vec<ResourceComponent>,
}

impl ResourceType {
    /// Creates a resource type with the given failover reconfiguration time
    /// (load-balancer updates, data transfer to the spare).
    pub fn new<N: Into<ResourceTypeName>>(name: N, reconfig_time: Duration) -> ResourceType {
        ResourceType {
            name: name.into(),
            reconfig_time,
            components: Vec::new(),
        }
    }

    /// Appends a component slot. Slots must be listed in an order where
    /// dependencies precede dependents (as the paper's specifications do);
    /// [`validate`](Self::validate) checks this.
    #[must_use]
    pub fn with_component(mut self, c: ResourceComponent) -> ResourceType {
        self.components.push(c);
        self
    }

    /// The resource type's name.
    #[must_use]
    pub fn name(&self) -> &ResourceTypeName {
        &self.name
    }

    /// Failover reconfiguration time.
    #[must_use]
    pub fn reconfig_time(&self) -> Duration {
        self.reconfig_time
    }

    /// The component slots, in declaration (startup) order.
    #[must_use]
    pub fn components(&self) -> &[ResourceComponent] {
        &self.components
    }

    /// Index of the slot holding `component`, if present.
    #[must_use]
    pub fn component_index(&self, component: &str) -> Option<usize> {
        self.components
            .iter()
            .position(|c| c.component().as_str() == component)
    }

    /// Validates the dependency structure: every dependency must name an
    /// *earlier* slot in the list (which also rules out cycles and
    /// self-dependencies).
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownDependency`] for a dangling reference,
    /// [`ModelError::DependencyCycle`] if a dependency names a later slot
    /// (a forward reference would allow cycles), and
    /// [`ModelError::Invalid`] for an empty resource.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.components.is_empty() {
            return Err(ModelError::Invalid {
                detail: format!("resource {} has no components", self.name),
            });
        }
        for (i, slot) in self.components.iter().enumerate() {
            if let Some(dep) = slot.depends_on() {
                match self.component_index(dep.as_str()) {
                    None => {
                        return Err(ModelError::UnknownDependency {
                            resource: self.name.to_string(),
                            component: slot.component().to_string(),
                            dependency: dep.to_string(),
                        })
                    }
                    Some(j) if j >= i => {
                        return Err(ModelError::DependencyCycle {
                            resource: self.name.to_string(),
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// The slots affected by a failure of slot `failed`: the slot itself
    /// plus every transitive dependent, in startup order.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is out of range.
    #[must_use]
    pub fn affected_by(&self, failed: usize) -> Vec<usize> {
        assert!(failed < self.components.len(), "slot index out of range");
        let mut affected = vec![false; self.components.len()];
        affected[failed] = true;
        // Single forward pass suffices because dependencies point backward.
        for (i, slot) in self.components.iter().enumerate() {
            if affected[i] {
                continue;
            }
            if let Some(dep) = slot.depends_on() {
                if let Some(j) = self.component_index(dep.as_str()) {
                    if affected[j] {
                        affected[i] = true;
                    }
                }
            }
        }
        affected
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// Total sequential restart time after a failure of slot `failed`: the
    /// sum of the startup latencies of the failed component and all its
    /// transitive dependents (paper §4.2, MTTR definition).
    ///
    /// # Panics
    ///
    /// Panics if `failed` is out of range.
    #[must_use]
    pub fn restart_time_after(&self, failed: usize) -> Duration {
        self.affected_by(failed)
            .into_iter()
            .map(|i| self.components[i].startup())
            .sum()
    }

    /// Total sequential startup time of the whole resource (all components
    /// from cold), used for failover from fully-inactive spares.
    #[must_use]
    pub fn full_startup_time(&self) -> Duration {
        self.components.iter().map(ResourceComponent::startup).sum()
    }

    /// Startup time of only those slots marked inactive in `modes`, used
    /// for failover time with partially-active spares (paper §4.2:
    /// "startup latencies of components that are in inactive operational
    /// mode in the spare resource").
    ///
    /// # Panics
    ///
    /// Panics if `modes.len()` differs from the number of slots.
    #[must_use]
    pub fn inactive_startup_time(&self, modes: &[OperationalMode]) -> Duration {
        assert_eq!(
            modes.len(),
            self.components.len(),
            "one mode per component slot required"
        );
        self.components
            .iter()
            .zip(modes.iter())
            .filter(|(_, &m)| m == OperationalMode::Inactive)
            .map(|(c, _)| c.startup())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r_a() -> ResourceType {
        ResourceType::new("rA", Duration::ZERO)
            .with_component(ResourceComponent::new(
                "machineA",
                None,
                Duration::from_secs(30.0),
            ))
            .with_component(ResourceComponent::new(
                "linux",
                Some("machineA".into()),
                Duration::from_mins(2.0),
            ))
            .with_component(ResourceComponent::new(
                "webserver",
                Some("linux".into()),
                Duration::from_secs(30.0),
            ))
    }

    #[test]
    fn validates_paper_resource() {
        assert!(r_a().validate().is_ok());
    }

    #[test]
    fn rejects_dangling_dependency() {
        let r = ResourceType::new("bad", Duration::ZERO).with_component(ResourceComponent::new(
            "linux",
            Some("machineZ".into()),
            Duration::ZERO,
        ));
        assert!(matches!(
            r.validate(),
            Err(ModelError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn rejects_forward_dependency() {
        let r = ResourceType::new("bad", Duration::ZERO)
            .with_component(ResourceComponent::new(
                "linux",
                Some("machineA".into()),
                Duration::ZERO,
            ))
            .with_component(ResourceComponent::new("machineA", None, Duration::ZERO));
        assert!(matches!(
            r.validate(),
            Err(ModelError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn rejects_self_dependency() {
        let r = ResourceType::new("bad", Duration::ZERO).with_component(ResourceComponent::new(
            "linux",
            Some("linux".into()),
            Duration::ZERO,
        ));
        assert!(matches!(
            r.validate(),
            Err(ModelError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn rejects_empty_resource() {
        let r = ResourceType::new("empty", Duration::ZERO);
        assert!(matches!(r.validate(), Err(ModelError::Invalid { .. })));
    }

    #[test]
    fn hardware_failure_affects_everything() {
        assert_eq!(r_a().affected_by(0), vec![0, 1, 2]);
    }

    #[test]
    fn os_failure_spares_hardware() {
        assert_eq!(r_a().affected_by(1), vec![1, 2]);
        // restart linux (2m) + webserver (30s)
        assert_eq!(r_a().restart_time_after(1), Duration::from_secs(150.0));
    }

    #[test]
    fn leaf_failure_affects_only_itself() {
        assert_eq!(r_a().affected_by(2), vec![2]);
        assert_eq!(r_a().restart_time_after(2), Duration::from_secs(30.0));
    }

    #[test]
    fn diamond_free_branches_are_independent() {
        // machineA <- linux, machineA <- monitoring: linux failure does not
        // restart monitoring.
        let r = ResourceType::new("branchy", Duration::ZERO)
            .with_component(ResourceComponent::new(
                "machineA",
                None,
                Duration::from_secs(30.0),
            ))
            .with_component(ResourceComponent::new(
                "linux",
                Some("machineA".into()),
                Duration::from_mins(2.0),
            ))
            .with_component(ResourceComponent::new(
                "monitoring",
                Some("machineA".into()),
                Duration::from_secs(10.0),
            ));
        assert_eq!(r.affected_by(1), vec![1]);
        assert_eq!(r.affected_by(0), vec![0, 1, 2]);
        assert_eq!(
            r.restart_time_after(0),
            Duration::from_secs(30.0 + 120.0 + 10.0)
        );
    }

    #[test]
    fn full_and_inactive_startup_times() {
        let r = r_a();
        assert_eq!(r.full_startup_time(), Duration::from_mins(3.0));
        use OperationalMode::{Active, Inactive};
        assert_eq!(
            r.inactive_startup_time(&[Active, Inactive, Inactive]),
            Duration::from_secs(150.0)
        );
        assert_eq!(
            r.inactive_startup_time(&[Active, Active, Active]),
            Duration::ZERO
        );
    }

    #[test]
    fn operational_mode_display() {
        assert_eq!(OperationalMode::Active.to_string(), "active");
        assert_eq!(OperationalMode::Inactive.to_string(), "inactive");
    }
}
