//! Domain model of the Aved design space (paper §3).
//!
//! The model follows the paper's constructs one-to-one:
//!
//! * an [`Infrastructure`] describes the **building blocks**: component
//!   types with failure modes ([`ComponentType`], [`FailureMode`]),
//!   configurable availability mechanisms ([`Mechanism`]) and resource
//!   types composing components with dependencies ([`ResourceType`]);
//! * a [`Service`] describes tiers, the candidate resource options per tier
//!   and their parallelism/performance attributes ([`Tier`],
//!   [`ResourceOption`]);
//! * a [`ServiceRequirement`] states what the user wants: minimum
//!   throughput plus maximum annual downtime for enterprise services, or a
//!   maximum expected completion time for finite jobs;
//! * a [`Design`] resolves every design choice: per tier, the resource
//!   type, number of active resources, number of spares, the operational
//!   mode of spare components and a setting for every mechanism parameter.
//!
//! The crate also implements the derived quantities the availability model
//! needs (per-mode effective MTTR including dependent-component restarts,
//! failover time from inactive-component startups — paper §4.2) and the
//! design cost model (paper §3.1.1: annualized component costs by
//! operational mode plus mechanism costs).

mod component;
mod cost;
mod design;
mod error;
mod infrastructure;
mod mechanism;
mod names;
mod requirements;
mod resource;
mod service;

pub use component::{ComponentType, DurationSpec, FailureMode};
pub use cost::{design_cost, tier_design_cost, CostBreakdown};
pub use design::{Design, DesignChange, SpareMode, TierDesign};
pub use error::ModelError;
pub use infrastructure::Infrastructure;
pub use mechanism::{
    EffectValue, Mechanism, MechanismCost, ParamRange, ParamValue, Parameter, Settings,
};
pub use names::{ComponentName, MechanismName, ParamName, ResourceTypeName, TierName};
pub use requirements::ServiceRequirement;
pub use resource::{OperationalMode, ResourceComponent, ResourceType};
pub use service::{
    FailureScope, MechanismUse, NActiveSpec, PerfRef, ResourceOption, Service, Sizing, Tier,
};
