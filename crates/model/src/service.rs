//! Service models: tiers and resource options (paper §3.2).

use serde::{Deserialize, Serialize};

use crate::{MechanismName, ResourceTypeName, TierName};

/// Whether a tier's size can change during the service's lifetime.
///
/// With `Static` sizing (e.g. a scientific application that partitions data
/// at initialization), the tier needs *all* `n` active resources: the
/// minimum for the tier to be up is `m = n`. With `Dynamic` sizing (a web
/// tier), `m` is derived from the performance requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sizing {
    /// Resource count fixed at deployment.
    Static,
    /// Resource count can be adjusted at runtime.
    Dynamic,
}

/// The blast radius of a single resource failure within a tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureScope {
    /// Only the failed resource instance is lost.
    Resource,
    /// A single resource failure takes the whole tier down (e.g. a tightly
    /// coupled MPI job).
    Tier,
}

/// The allowed values for a tier's number of active resources.
///
/// The specification syntax is `nActive=[1-1000,+1]` (arithmetic
/// progression), `nActive=[1-1024,*2]` (geometric, e.g. power-of-two
/// parallel decompositions) or `nActive=[1]` (an explicit list).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NActiveSpec {
    /// `min, min+step, …` up to `max` inclusive.
    Arithmetic {
        /// Smallest allowed count.
        min: u32,
        /// Largest allowed count.
        max: u32,
        /// Additive step (>= 1).
        step: u32,
    },
    /// `min, min·factor, …` up to `max` inclusive.
    Geometric {
        /// Smallest allowed count.
        min: u32,
        /// Largest allowed count.
        max: u32,
        /// Multiplicative factor (>= 2).
        factor: u32,
    },
    /// An explicit list of allowed counts.
    List(Vec<u32>),
}

impl NActiveSpec {
    /// Iterates over the allowed counts in increasing order.
    pub fn values(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            NActiveSpec::Arithmetic { min, max, step } => {
                let (min, max, step) = (*min, *max, (*step).max(1));
                Box::new((min..=max).step_by(step as usize))
            }
            NActiveSpec::Geometric { min, max, factor } => {
                let (min, max, factor) = (*min, *max, (*factor).max(2));
                Box::new(std::iter::successors(Some(min), move |&v| {
                    v.checked_mul(factor).filter(|&n| n <= max)
                }))
            }
            NActiveSpec::List(v) => Box::new(v.iter().copied()),
        }
    }

    /// Whether `n` is an allowed count.
    #[must_use]
    pub fn contains(&self, n: u32) -> bool {
        match self {
            NActiveSpec::Arithmetic { min, max, step } => {
                n >= *min && n <= *max && (n - min).is_multiple_of(*step.max(&1))
            }
            NActiveSpec::Geometric { .. } => self.values().any(|v| v == n),
            NActiveSpec::List(v) => v.contains(&n),
        }
    }

    /// The smallest allowed count `>= n`, if any — the paper's search
    /// starts from "the minimum number of resources required to meet the
    /// performance requirement" and this rounds that minimum up into the
    /// allowed set.
    #[must_use]
    pub fn next_at_or_above(&self, n: u32) -> Option<u32> {
        self.values().find(|&v| v >= n)
    }

    /// The largest allowed count.
    #[must_use]
    pub fn max_value(&self) -> Option<u32> {
        self.values().last()
    }
}

/// Reference to a performance function, resolved against a catalog at
/// evaluation time.
///
/// The specification writes either a constant (`performance=10000`) or a
/// named table/function (`performance(nActive)=perfA.dat`). This model
/// keeps the reference symbolic; the `aved-perf` crate supplies catalogs
/// that resolve names to functions (including the closed forms of the
/// paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PerfRef {
    /// A constant throughput, independent of `nActive`.
    Const(f64),
    /// A named function of `nActive`.
    Named(String),
}

/// The use of an availability mechanism by a tier's resource option,
/// optionally with a service-specific performance-impact function
/// (`mperformance(storage_location, checkpoint_interval, nActive)=...`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismUse {
    mechanism: MechanismName,
    mperformance: Option<String>,
}

impl MechanismUse {
    /// Declares that the option uses `mechanism`, with an optional named
    /// performance-impact function.
    pub fn new<M: Into<MechanismName>>(mechanism: M, mperformance: Option<String>) -> MechanismUse {
        MechanismUse {
            mechanism: mechanism.into(),
            mperformance,
        }
    }

    /// The mechanism being applied.
    #[must_use]
    pub fn mechanism(&self) -> &MechanismName {
        &self.mechanism
    }

    /// The named mperformance function, if declared.
    #[must_use]
    pub fn mperformance(&self) -> Option<&str> {
        self.mperformance.as_deref()
    }
}

/// One candidate resource type for a tier, with its parallelism model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceOption {
    resource: ResourceTypeName,
    sizing: Sizing,
    failure_scope: FailureScope,
    n_active: NActiveSpec,
    performance: PerfRef,
    mechanisms: Vec<MechanismUse>,
}

impl ResourceOption {
    /// Creates a resource option.
    pub fn new<R: Into<ResourceTypeName>>(
        resource: R,
        sizing: Sizing,
        failure_scope: FailureScope,
        n_active: NActiveSpec,
        performance: PerfRef,
    ) -> ResourceOption {
        ResourceOption {
            resource: resource.into(),
            sizing,
            failure_scope,
            n_active,
            performance,
            mechanisms: Vec::new(),
        }
    }

    /// Declares an availability-mechanism use.
    #[must_use]
    pub fn with_mechanism(mut self, m: MechanismUse) -> ResourceOption {
        self.mechanisms.push(m);
        self
    }

    /// The candidate resource type.
    #[must_use]
    pub fn resource(&self) -> &ResourceTypeName {
        &self.resource
    }

    /// The sizing discipline.
    #[must_use]
    pub fn sizing(&self) -> Sizing {
        self.sizing
    }

    /// The failure scope.
    #[must_use]
    pub fn failure_scope(&self) -> FailureScope {
        self.failure_scope
    }

    /// Allowed active-resource counts.
    #[must_use]
    pub fn n_active(&self) -> &NActiveSpec {
        &self.n_active
    }

    /// The performance reference.
    #[must_use]
    pub fn performance(&self) -> &PerfRef {
        &self.performance
    }

    /// Mechanism uses declared on this option.
    #[must_use]
    pub fn mechanisms(&self) -> &[MechanismUse] {
        &self.mechanisms
    }
}

/// A service tier: a cluster of identical resources chosen among options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    name: TierName,
    options: Vec<ResourceOption>,
}

impl Tier {
    /// Creates a tier.
    pub fn new<N: Into<TierName>>(name: N) -> Tier {
        Tier {
            name: name.into(),
            options: Vec::new(),
        }
    }

    /// Adds a candidate resource option.
    #[must_use]
    pub fn with_option(mut self, o: ResourceOption) -> Tier {
        self.options.push(o);
        self
    }

    /// The tier's name.
    #[must_use]
    pub fn name(&self) -> &TierName {
        &self.name
    }

    /// The candidate resource options.
    #[must_use]
    pub fn options(&self) -> &[ResourceOption] {
        &self.options
    }

    /// Looks up the option using resource type `resource`.
    #[must_use]
    pub fn option_for(&self, resource: &str) -> Option<&ResourceOption> {
        self.options
            .iter()
            .find(|o| o.resource().as_str() == resource)
    }
}

/// A service or application: a series of tiers, up iff all tiers are up.
///
/// Finite jobs (scientific applications) additionally carry a job size in
/// application-specific units; their requirement is expected completion
/// time rather than throughput + downtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Service {
    name: String,
    job_size: Option<f64>,
    tiers: Vec<Tier>,
}

impl Service {
    /// Creates an (enterprise) service with no job size.
    pub fn new<N: Into<String>>(name: N) -> Service {
        Service {
            name: name.into(),
            job_size: None,
            tiers: Vec::new(),
        }
    }

    /// Declares a finite job size (application-specific units).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not positive.
    #[must_use]
    pub fn with_job_size(mut self, size: f64) -> Service {
        assert!(size > 0.0, "job size must be positive");
        self.job_size = Some(size);
        self
    }

    /// Adds a tier.
    #[must_use]
    pub fn with_tier(mut self, t: Tier) -> Service {
        self.tiers.push(t);
        self
    }

    /// The service name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job size, for finite applications.
    #[must_use]
    pub fn job_size(&self) -> Option<f64> {
        self.job_size
    }

    /// The tiers, in series.
    #[must_use]
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Looks up a tier by name.
    #[must_use]
    pub fn tier(&self, name: &str) -> Option<&Tier> {
        self.tiers.iter().find(|t| t.name().as_str() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_spec_enumerates() {
        let s = NActiveSpec::Arithmetic {
            min: 1,
            max: 7,
            step: 2,
        };
        assert_eq!(s.values().collect::<Vec<_>>(), vec![1, 3, 5, 7]);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(!s.contains(9));
        assert_eq!(s.next_at_or_above(4), Some(5));
        assert_eq!(s.next_at_or_above(8), None);
        assert_eq!(s.max_value(), Some(7));
    }

    #[test]
    fn geometric_spec_enumerates_powers() {
        let s = NActiveSpec::Geometric {
            min: 1,
            max: 20,
            factor: 2,
        };
        assert_eq!(s.values().collect::<Vec<_>>(), vec![1, 2, 4, 8, 16]);
        assert!(s.contains(8));
        assert!(!s.contains(6));
        assert_eq!(s.next_at_or_above(5), Some(8));
    }

    #[test]
    fn geometric_spec_no_overflow() {
        let s = NActiveSpec::Geometric {
            min: 1 << 30,
            max: u32::MAX,
            factor: 4,
        };
        // 2^30, then 2^32 overflows u32 -> stop cleanly.
        assert_eq!(s.values().count(), 1);
    }

    #[test]
    fn list_spec() {
        let s = NActiveSpec::List(vec![1]);
        assert_eq!(s.values().collect::<Vec<_>>(), vec![1]);
        assert!(s.contains(1));
        assert!(!s.contains(2));
        assert_eq!(s.max_value(), Some(1));
    }

    #[test]
    fn paper_database_tier() {
        // Fig. 4: database tier, static sizing, nActive=[1], perf 10000.
        let tier = Tier::new("database").with_option(ResourceOption::new(
            "rG",
            Sizing::Static,
            FailureScope::Resource,
            NActiveSpec::List(vec![1]),
            PerfRef::Const(10_000.0),
        ));
        let opt = tier.option_for("rG").unwrap();
        assert_eq!(opt.sizing(), Sizing::Static);
        assert_eq!(opt.performance(), &PerfRef::Const(10_000.0));
        assert!(tier.option_for("rZ").is_none());
    }

    #[test]
    fn scientific_service_shape() {
        // Fig. 5: jobsize 10000, one tier, two options with checkpoint.
        let svc = Service::new("scientific")
            .with_job_size(10_000.0)
            .with_tier(
                Tier::new("computation")
                    .with_option(
                        ResourceOption::new(
                            "rH",
                            Sizing::Static,
                            FailureScope::Tier,
                            NActiveSpec::Arithmetic {
                                min: 1,
                                max: 1000,
                                step: 1,
                            },
                            PerfRef::Named("perfH.dat".into()),
                        )
                        .with_mechanism(MechanismUse::new("checkpoint", Some("mperfH.dat".into()))),
                    )
                    .with_option(ResourceOption::new(
                        "rI",
                        Sizing::Static,
                        FailureScope::Tier,
                        NActiveSpec::Arithmetic {
                            min: 1,
                            max: 1000,
                            step: 1,
                        },
                        PerfRef::Named("perfI.dat".into()),
                    )),
            );
        assert_eq!(svc.job_size(), Some(10_000.0));
        let tier = svc.tier("computation").unwrap();
        assert_eq!(tier.options().len(), 2);
        let m = &tier.options()[0].mechanisms()[0];
        assert_eq!(m.mechanism().as_str(), "checkpoint");
        assert_eq!(m.mperformance(), Some("mperfH.dat"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_job_size_panics() {
        let _ = Service::new("bad").with_job_size(0.0);
    }
}
